#!/usr/bin/env python
"""Controlled non-termination: the genealogy example of Section 2.2.

The mapping ``Person(x) -> exists y . Father(x, y), Person(y)`` is cyclic and
is rejected by classical update-exchange systems because the standard chase
never terminates on it.  In Youtopia the chase stops at a frontier after each
firing, so the "non-termination" becomes a feature: users can keep adding
ancestors for as long as they have information, or close the chain by unifying.

Run with::

    python examples/genealogy.py
"""

from repro import ChaseEngine, InsertOperation, make_tuple, satisfies_all
from repro.core import AlwaysUnifyOracle, ChaseConfig, ScriptedOracle
from repro.core.frontier import ExpandOperation, PositiveFrontierRequest, UnifyOperation
from repro.core.tgd import is_weakly_acyclic
from repro.fixtures import genealogy_repository


def expand_everything(request, view):
    """A user who keeps supplying new (unnamed) ancestors."""
    assert isinstance(request, PositiveFrontierRequest)
    return ExpandOperation(request.frontier_tuples[0])


def close_the_loop(request, view):
    """A user who decides the unknown ancestor is someone already recorded."""
    assert isinstance(request, PositiveFrontierRequest)
    for frontier_tuple in request.frontier_tuples:
        if frontier_tuple.candidates:
            return UnifyOperation(frontier_tuple, frontier_tuple.candidates[0])
    return ExpandOperation(request.frontier_tuples[0])


def main() -> None:
    database, mappings = genealogy_repository()
    print("Mapping:", list(mappings)[0].to_string())
    print("Weakly acyclic (classical chase would terminate):", is_weakly_acyclic(list(mappings)))
    print()

    # --- A user who keeps expanding: four generations of ancestors ------
    script = [expand_everything] * 8 + [close_the_loop]
    engine = ChaseEngine(
        database,
        mappings,
        oracle=ScriptedOracle(script),
        config=ChaseConfig(max_frontier_operations=9),
    )
    record = engine.run(InsertOperation(make_tuple("Person", "John")))
    print("After inserting Person(John) with an expanding user:")
    print("  ", record.summary())
    for row in sorted(database.tuples("Father"), key=repr):
        print("   ", row)
    print("  persons recorded:", database.count("Person"))
    print("  satisfied:", satisfies_all(mappings, database))
    print()

    # --- A conservative user: the chase terminates immediately ----------
    database2, mappings2 = genealogy_repository()
    engine2 = ChaseEngine(database2, mappings2, oracle=AlwaysUnifyOracle())
    record2 = engine2.run(InsertOperation(make_tuple("Person", "Ada")))
    print("Same insertion with a user who always unifies:")
    print("  ", record2.summary())
    for row in sorted(database2.tuples("Father"), key=repr):
        print("   ", row)
    print("  satisfied:", satisfies_all(mappings2, database2))


if __name__ == "__main__":
    main()
