#!/usr/bin/env python
"""Quickstart: the paper's Example 1.1 on the Figure 2 travel repository.

Company "ABC Tours" starts running tours to Niagara Falls.  Inserting the
tuple ``T(Niagara Falls, ABC Tours, Toronto)`` violates mapping σ3 ("whenever
a company offers tours of an attraction, the tour is reviewed"); the forward
chase repairs the violation by inserting ``R(ABC Tours, Niagara Falls, x3)``
with a fresh labeled null standing for the not-yet-written review, which a
user later fills in with a null-replacement.

Run with::

    python examples/quickstart.py
"""

from repro import (
    ChaseEngine,
    InsertOperation,
    NullReplacementOperation,
    RandomOracle,
    make_tuple,
    satisfies_all,
)
from repro.core.terms import LabeledNull
from repro.storage.interface import dump_sorted
from repro.fixtures import travel_repository


def main() -> None:
    database, mappings = travel_repository()
    print("Initial repository satisfies all mappings:", satisfies_all(mappings, database))
    print()

    engine = ChaseEngine(database, mappings, oracle=RandomOracle(seed=0))

    # --- Example 1.1: a new tour appears --------------------------------
    new_tour = make_tuple("T", "Niagara Falls", "ABC Tours", "Toronto")
    record = engine.run(InsertOperation(new_tour))
    print("Update:", record.summary())
    print("Chase provenance:")
    print(engine.last_provenance.to_text())
    print()
    print("Tour reviews after the chase:")
    for row in sorted(database.tuples("R"), key=repr):
        print("  ", row)
    print()

    # --- A user later supplies the missing review -----------------------
    review_null = next(
        null
        for row in database.tuples("R")
        for null in row.null_set()
        if row.values[0] == make_tuple("R", "ABC Tours", "x", "y").values[0]
    )
    record = engine.run(NullReplacementOperation(review_null, "Breathtaking falls!"))
    print("Update:", record.summary())
    print()
    print("Tour reviews after the null-replacement:")
    for row in sorted(database.tuples("R"), key=repr):
        print("  ", row)
    print()

    print("Repository still satisfies all mappings:", satisfies_all(mappings, database))
    print()
    print("Full repository contents:")
    for line in dump_sorted(database):
        print("  ", line)


if __name__ == "__main__":
    main()
