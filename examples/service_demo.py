"""The update-exchange service: eight collaborating clients, one repository.

Eight clients connect to a :class:`~repro.service.RepositoryService` over the
genealogy repository (whose cyclic mapping parks every ``Person`` insert on a
frontier question: "is the generated father the same person as someone we
already know?").  Each client submits an insert; every update parks; clients
then answer *each other's* questions with a delay.  While an update is parked
it takes no chase steps at all — verified below with step counters — which is
exactly what lets the service wait on humans without burning the scheduler.
"""

from repro.core import InsertOperation, make_tuple
from repro.core.frontier import UnifyOperation
from repro.fixtures import genealogy_repository
from repro.service import AdmissionConfig, RepositoryService, TicketStatus


def main() -> None:
    database, mappings = genealogy_repository()
    service = RepositoryService(
        database.snapshot(),
        mappings,
        tracker="PRECISE",
        admission=AdmissionConfig(max_in_flight=8, batch_size=8),
    )

    names = ["alice", "bo", "chen", "dana", "eli", "fatima", "george", "hana"]
    sessions = [service.open_session(name) for name in names]
    print("opened {} client sessions".format(len(sessions)))

    tickets = [
        service.submit(
            session.session_id,
            InsertOperation(make_tuple("Person", session.name.capitalize())),
        )
        for session in sessions
    ]

    # One pump: every insert chases to its frontier and parks. No answers yet.
    report = service.pump()
    parked = [ticket for ticket in tickets if ticket.is_parked]
    print(
        "after one pump: {} steps taken, {} updates parked on frontier questions".format(
            report.steps, len(parked)
        )
    )
    assert len(parked) >= 1

    # Pin alice's update and freeze its counters while everyone else proceeds.
    watched = tickets[0]
    watched_execution = service.scheduler.execution(watched.priority)
    assert watched_execution is not None and watched_execution.is_parked
    steps_before = watched_execution.steps_taken
    scheduler_steps_before = service.statistics.steps

    # The *other* seven questions get answered by the next client over;
    # alice's question stays open, so her update must not move.
    for question in list(service.inbox()):
        if question.ticket is watched:
            continue
        asker_index = names.index(
            service.session(question.ticket.session_id).name
        )
        answerer = sessions[(asker_index + 1) % len(sessions)]
        unify = [
            alternative
            for alternative in question.alternatives()
            if isinstance(alternative, UnifyOperation)
        ][0]
        service.answer(answerer.session_id, question.decision_id, unify)
        service.pump()

    # The other updates terminated, but none may commit yet: alice holds the
    # lowest priority, and commits advance strictly from the bottom up.
    terminated_others = [
        ticket
        for ticket in tickets[1:]
        if service.scheduler.execution(ticket.priority).is_terminated
    ]
    print(
        "{} other updates finished their chases while alice stayed parked "
        "(all queued behind her for commit)".format(len(terminated_others))
    )
    print(
        "alice's update steps while parked unchanged: {}".format(
            watched_execution.steps_taken == steps_before
        )
    )
    print(
        "scheduler stepped {} times meanwhile (none for alice)".format(
            service.statistics.steps - scheduler_steps_before
        )
    )
    assert watched_execution.steps_taken == steps_before
    assert watched.is_parked

    # Now a later client (bo) answers alice's question; her update resumes.
    question = service.inbox()[0]
    assert question.ticket is watched
    unify = [
        alternative
        for alternative in question.alternatives()
        if isinstance(alternative, UnifyOperation)
    ][0]
    service.answer(sessions[1].session_id, question.decision_id, unify)
    service.pump()
    print(
        "alice's update resumed by {} and is now: {}".format(
            sessions[1].name, watched.status.value
        )
    )
    assert watched.status is TicketStatus.COMMITTED

    snapshot = service.snapshot()
    print(
        "committed snapshot: {} Person, {} Father tuples".format(
            snapshot.count("Person"), snapshot.count("Father")
        )
    )
    metrics = service.metrics_snapshot()
    print(
        "committed updates: {:.0f}, parks: {:.0f}, resumes: {:.0f}, "
        "p50 frontier wait: {:.4f}s".format(
            metrics["committed"],
            metrics["parks"],
            metrics["resumes"],
            metrics["frontier_wait_p50_seconds"],
        )
    )
    assert service.is_quiescent


if __name__ == "__main__":
    main()
