#!/usr/bin/env python
"""Example 3.1: interference between concurrent updates, and how it is prevented.

Two real-world events hit the travel repository at the same time:

* ``u1`` — company XYZ discontinues its Geneva Winery tours; the review tuple
  is deleted, setting off a backward chase that needs a human decision;
* ``u2`` — a new conference ("Math Conf") is scheduled in Syracuse; the insert
  sets off a forward chase that recommends excursions based on the tours
  starting there.

If ``u2`` reads the tours table while ``u1`` is still waiting for its frontier
operation, it recommends an excursion to a tour that is about to disappear —
a final state no serial execution could produce.  The optimistic scheduler
detects exactly this: when ``u1``'s deletion of the tour retroactively changes
the answer to ``u2``'s logged violation query, ``u2`` is aborted and restarted,
and the final state matches the serial order u1 → u2.

Run with::

    python examples/interference.py
"""

from repro import DeleteOperation, InsertOperation, make_tuple
from repro.concurrency import (
    SerialExecutor,
    databases_isomorphic,
    make_tracker,
    run_concurrent_updates,
)
from repro.core import ScriptedOracle
from repro.core.frontier import DeleteSubsetOperation, NegativeFrontierRequest
from repro.fixtures import travel_repository


def delete_the_tour(request, view):
    """u1's owner decides the tour tuple itself must go (step 4 of Example 3.1)."""
    assert isinstance(request, NegativeFrontierRequest)
    for candidate in request.candidates:
        if candidate.relation == "T":
            return DeleteSubsetOperation((candidate,))
    return DeleteSubsetOperation((request.candidates[0],))


def main() -> None:
    database, mappings = travel_repository()
    initial = database.snapshot()

    u1 = DeleteOperation(make_tuple("R", "XYZ", "Geneva Winery", "Great!"))
    u2 = InsertOperation(make_tuple("V", "Syracuse", "Math Conf"))

    # --- What the unsafe interleaving would produce ----------------------
    # Serial references for both orders, using the same frontier decision.
    serial = SerialExecutor(initial, mappings, oracle_factory=lambda: ScriptedOracle([delete_the_tour]))
    after_u1_then_u2 = serial.run([u1, u2])
    print("Serial u1 -> u2 leaves excursion ideas:")
    for row in sorted(after_u1_then_u2.tuples("E"), key=repr):
        print("  ", row)
    print()

    # --- The optimistic scheduler on the same two updates ----------------
    for algorithm in ("NAIVE", "COARSE", "PRECISE"):
        scheduler = run_concurrent_updates(
            initial,
            mappings,
            [u1, u2],
            tracker=make_tracker(algorithm),
            oracle=ScriptedOracle([delete_the_tour, delete_the_tour, delete_the_tour]),
        )
        statistics = scheduler.statistics
        final = scheduler.final_database()
        print(
            "{:<7}: aborts={} cascading-requests={} updates-executed={}".format(
                algorithm,
                statistics.aborts,
                statistics.cascading_abort_requests,
                statistics.updates_executed,
            )
        )
        print("  excursion ideas after the run:")
        for row in sorted(final.tuples("E"), key=repr):
            print("    ", row)
        print(
            "  final state matches the serial order u1 -> u2:",
            databases_isomorphic(final, after_u1_then_u2),
        )
        print()


if __name__ == "__main__":
    main()
