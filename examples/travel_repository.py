#!/usr/bin/env python
"""The travel repository end to end: forward chase, cycles, backward chase.

Walks through the scenarios of Sections 2.2 and 2.3 on the Figure 2
repository:

* adding JFK as a suggested airport for Ithaca triggers the σ1/σ2 mapping
  cycle; the chase stops at a positive frontier instead of looping forever,
  and a scripted "user" unifies the ambiguous city tuple;
* deleting the Geneva Winery review (Example 2.3) triggers a backward chase
  with a negative frontier: the user chooses which witness tuple to delete.

Run with::

    python examples/travel_repository.py
"""

from repro import ChaseEngine, DeleteOperation, InsertOperation, make_tuple, satisfies_all
from repro.core import ScriptedOracle
from repro.core.frontier import (
    DeleteSubsetOperation,
    NegativeFrontierRequest,
    PositiveFrontierRequest,
    UnifyOperation,
)
from repro.fixtures import travel_repository


def unify_with_nyc(request, view):
    """The knowledgeable user of Section 2.2: the new airport's city *is* NYC."""
    assert isinstance(request, PositiveFrontierRequest)
    for frontier_tuple in request.frontier_tuples:
        for candidate in frontier_tuple.candidates:
            if candidate == make_tuple("C", "NYC"):
                return UnifyOperation(frontier_tuple, candidate)
    # Fall back to unifying with the first candidate of the first ambiguous tuple.
    for frontier_tuple in request.frontier_tuples:
        if frontier_tuple.candidates:
            return UnifyOperation(frontier_tuple, frontier_tuple.candidates[0])
    raise AssertionError("expected a unification candidate")


def delete_the_tour(request, view):
    """Example 2.3: the user decides the tour itself should disappear."""
    assert isinstance(request, NegativeFrontierRequest)
    for candidate in request.candidates:
        if candidate.relation == "T":
            return DeleteSubsetOperation((candidate,))
    return DeleteSubsetOperation((request.candidates[0],))


def scripted_user(request, view):
    """One user persona for the whole walk-through.

    Positive frontiers are answered by unifying the ambiguous city with NYC
    (the Section 2.2 narrative); negative frontiers by deleting the tour
    (the Example 2.3 decision).
    """
    if isinstance(request, PositiveFrontierRequest):
        return unify_with_nyc(request, view)
    return delete_the_tour(request, view)


def show(database, relation):
    print("  {}:".format(relation))
    for row in sorted(database.tuples(relation), key=repr):
        print("    ", row)


def main() -> None:
    database, mappings = travel_repository()
    print("Mapping graph has a cycle:", mappings.has_cycle())
    print("Mapping set is weakly acyclic:", mappings.is_weakly_acyclic())
    print()

    # --- Cyclic mappings: the JFK example of Section 2.2 ----------------
    oracle = ScriptedOracle([scripted_user] * 6)
    engine = ChaseEngine(database, mappings, oracle=oracle)
    record = engine.run(InsertOperation(make_tuple("S", "JFK", "NYC", "Ithaca")))
    print("After inserting S(JFK, NYC, Ithaca):", record.summary())
    show(database, "C")
    show(database, "S")
    print("  satisfied:", satisfies_all(mappings, database))
    print()

    # --- Example 2.3: backward chase with a negative frontier -----------
    record = engine.run(
        DeleteOperation(make_tuple("R", "XYZ", "Geneva Winery", "Great!"))
    )
    print("After deleting the Geneva Winery review:", record.summary())
    show(database, "A")
    show(database, "T")
    show(database, "R")
    print("  satisfied:", satisfies_all(mappings, database))
    print()
    print("Frontier operations performed by the scripted user:")
    for operation in record.frontier_operations:
        print("  ", operation.describe())


if __name__ == "__main__":
    main()
