"""Three peers, one collaboration: the federation layer end to end.

A travel agency (peer ``agency``), an aggregator (peer ``portal``) and an
archive (peer ``archive``) each run their own repository; tgd mappings link
them: offers the agency publishes must appear as portal listings (cross-peer),
every listing needs a review by some critic (local to the portal, with an
existential reviewer — nondeterministic once critics exist), and listings are
mirrored into the archive (cross-peer again).  The demo walks through:

1. an update committed at the agency cascading over the transport (with a
   delivery delay) through the portal into the archive;
2. a user operation submitted at the *wrong* peer being routed to the
   owner's admission queue — and parking there on a frontier question that
   is routed back to the submitting peer, where a human answers it;
3. a partition: the archive drops off, envelopes queue up (nothing is
   lost), the partition heals, and the federation drains;
4. the convergence check: the drained peers' union equals the
   single-repository chase over the union of all mappings.
"""

from repro.core.frontier import UnifyOperation
from repro.core.oracle import AlwaysUnifyOracle
from repro.core.schema import DatabaseSchema
from repro.core.tgd import parse_tgds
from repro.core.tuples import make_tuple
from repro.core.update import InsertOperation
from repro.federation import (
    FederatedNetwork,
    Transport,
    check_convergence,
    reference_chase,
)
from repro.storage.memory import FrozenDatabase
from repro.workload.federated_loop import conservative_answer


def main() -> None:
    schema = DatabaseSchema.from_dict(
        {
            "Offer": ["agency", "destination"],
            "Listing": ["destination"],
            "Review": ["destination", "critic"],
            "Critic": ["name"],
            "Archived": ["destination"],
        }
    )
    mappings = parse_tgds(
        [
            "Offer(a, d) -> Listing(d)",                         # cross: agency -> portal
            "Listing(d) -> exists r . Review(d, r), Critic(r)",  # local at the portal
            "Listing(d) -> Archived(d)",                         # cross: portal -> archive
        ]
    )
    ownership = {
        "agency": ["Offer"],
        "portal": ["Listing", "Review", "Critic"],
        "archive": ["Archived"],
    }
    initial = FrozenDatabase(
        schema, {name: frozenset() for name in schema.relation_names()}
    )
    network = FederatedNetwork(
        schema, initial, mappings, ownership, transport=Transport(delay=1)
    )
    print(
        "federation of {} peers, {} local + {} cross-peer mappings".format(
            len(network.peers()),
            sum(len(network.rules.local_mappings(p)) for p in network.peer_names()),
            len(network.rules.cross),
        )
    )

    # ------------------------------------------------------------------
    # 1. A committed update cascades across two transport hops.
    # ------------------------------------------------------------------
    operations = [InsertOperation(make_tuple("Offer", "ABC Tours", "Niagara Falls"))]
    network.submit("agency", operations[0])
    rounds = network.run_until_quiescent()
    snapshot = network.global_snapshot()
    print(
        "offer cascaded in {} rounds: {} listing(s), {} review(s) by {} critic(s), "
        "{} archived".format(
            rounds,
            snapshot.count("Listing"),
            snapshot.count("Review"),
            snapshot.count("Critic"),
            snapshot.count("Archived"),
        )
    )
    assert snapshot.count("Archived") == 1

    # ------------------------------------------------------------------
    # 2. Submitted at the wrong peer: routed to the owner — and the frontier
    #    question its chase raises routes back to the submitter.
    # ------------------------------------------------------------------
    routed = InsertOperation(make_tuple("Listing", "Ithaca"))
    operations.append(routed)
    ticket = network.submit("archive", routed)
    print(
        "listing submitted at the archive routes to {} ({})".format(
            ticket.target, ticket.describe()
        )
    )
    question = None
    for _ in range(30):
        network.pump()
        inbox = network.inbox("archive")
        if inbox:
            question = inbox[0]
            break
    assert question is not None
    # The portal generated Review(Ithaca, r2), Critic(r2) — but a critic
    # already exists, so a human must say whether r2 is that same critic.
    print(
        "frontier question raised at {} routed back to the archive "
        "({} alternatives)".format(
            question.executing_peer, len(question.alternatives())
        )
    )
    unify = [
        alternative
        for alternative in question.alternatives()
        if isinstance(alternative, UnifyOperation)
    ][0]
    network.answer("archive", question, unify)
    network.run_until_quiescent(answer_strategy=conservative_answer)
    print(
        "answered ({}); routed ticket is now: {}".format(
            unify.describe(), ticket.status.value
        )
    )
    assert ticket.is_done

    # ------------------------------------------------------------------
    # 3. Partition and heal: envelopes queue, nothing is lost.
    # ------------------------------------------------------------------
    network.partition("portal", "archive")
    offline = InsertOperation(make_tuple("Offer", "ABC Tours", "Cayuga Lake"))
    operations.append(offline)
    network.submit("agency", offline)
    for _ in range(10):
        network.pump()
        for peer_name in network.peer_names():
            for open_question in network.inbox(peer_name):
                network.answer(
                    peer_name, open_question, conservative_answer(open_question)
                )
    held = network.transport.in_flight
    print(
        "archive partitioned: {} envelope(s) held, archive still at {} row(s)".format(
            held, network.peer("archive").service.count("Archived")
        )
    )
    assert held > 0 and not network.quiescent()
    network.heal("portal", "archive")
    network.run_until_quiescent(answer_strategy=conservative_answer)
    print(
        "healed: archive caught up to {} rows, federation quiescent: {}".format(
            network.peer("archive").service.count("Archived"), network.quiescent()
        )
    )

    # ------------------------------------------------------------------
    # 4. The drained federation equals the single-repository chase.
    # ------------------------------------------------------------------
    reference = reference_chase(
        schema, initial, mappings, operations, oracle=AlwaysUnifyOracle()
    )
    report = check_convergence(network, reference)
    print(report.summary())
    assert report.equivalent
    metrics = network.metrics()
    print(
        "exchange traffic: {} firings, {} routed updates, {} routed questions, "
        "{} routed answers".format(
            metrics["firings_delivered"],
            metrics["updates_routed"],
            metrics["questions_routed"],
            metrics["answers_routed"],
        )
    )


if __name__ == "__main__":
    main()
