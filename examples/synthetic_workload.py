#!/usr/bin/env python
"""A miniature version of the Section 6 experiment, printed as a table.

Generates a small synthetic repository (random schema, random cyclic
mappings, an initial database produced by update exchange itself), runs a
concurrent insert workload under the NAIVE, COARSE and PRECISE cascading-abort
algorithms, and prints the three quantities the paper plots: total aborts,
cascading abort requests, and the slowdown of PRECISE relative to COARSE.

This is the "I want to see the experiment without waiting" entry point; the
full harness lives in ``repro.workload.experiment`` and the benchmark suite.

Run with::

    python examples/synthetic_workload.py
"""

from repro.workload import (
    ExperimentConfig,
    build_environment,
    run_workload_experiment,
    INSERT_WORKLOAD,
)


def main() -> None:
    config = ExperimentConfig.small_scale().scaled(
        mapping_counts=(10, 20, 25),
        runs_per_cell=1,
        num_updates=30,
    )
    print("Building the synthetic environment (schema, mappings, initial database)...")
    environment = build_environment(config)
    print(
        "  {} relations, {} mappings generated, {} initial tuples".format(
            config.num_relations,
            config.max_mappings,
            environment.initial.total_count(),
        )
    )
    print("  mapping family contains cycles:", environment.mappings.has_cycle())
    print()

    def progress(workload, mapping_count, algorithm, run_index, statistics):
        print(
            "  ran mappings={:>3} {:<7} -> aborts={:<4} cascading-requests={:<4}".format(
                mapping_count, algorithm, statistics.aborts, statistics.cascading_abort_requests
            )
        )

    result = run_workload_experiment(INSERT_WORKLOAD, config, environment, progress)
    print()
    print(result.format_table())


if __name__ == "__main__":
    main()
