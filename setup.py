"""Package metadata for the Youtopia update-exchange reproduction."""

import os
import re

from setuptools import find_packages, setup

_HERE = os.path.dirname(os.path.abspath(__file__))


def _version():
    # Single source of truth: repro.__version__.
    with open(os.path.join(_HERE, "src", "repro", "__init__.py"), encoding="utf-8") as handle:
        return re.search(r'^__version__ = "([^"]+)"', handle.read(), re.M).group(1)


def _long_description():
    readme = os.path.join(_HERE, "README.md")
    if os.path.exists(readme):
        with open(readme, encoding="utf-8") as handle:
            return handle.read()
    return ""


setup(
    name="repro-youtopia",
    version=_version(),
    description=(
        "Reproduction of 'Cooperative Update Exchange in the Youtopia System' "
        "(Kot & Koch, PVLDB 2009) with a multi-client update-exchange service"
    ),
    long_description=_long_description(),
    long_description_content_type="text/markdown",
    author="repro contributors",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    # Pure standard library at runtime; the test/benchmark suite needs extras.
    install_requires=[],
    extras_require={
        "test": ["pytest", "pytest-benchmark", "hypothesis"],
    },
    entry_points={
        "console_scripts": [
            "repro-serve=repro.service.cli:main",
            "repro-experiment=repro.workload.experiment:main",
            "repro-trace=repro.obs.cli:main",
            "repro-top=repro.obs.top:main",
            "repro-peer=repro.federation.proc:main",
        ]
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "License :: OSI Approved :: MIT License",
        "Programming Language :: Python :: 3",
        "Programming Language :: Python :: 3.9",
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "Topic :: Database",
        "Topic :: Scientific/Engineering",
    ],
)
