"""The always-on flight recorder: the last N observations, crash-safe on disk.

A :class:`FlightRecorder` is the black box of one peer process.  It captures
a bounded window of *observations* — span records copied from the process's
tracer, peer events (control messages, ticket terminals, question
open/close, heartbeats), and delivery decisions — and keeps them crash-safe
by appending to a pair of rotating JSONL segment files.  The two segments
form a ring on disk: the recorder appends to the current segment and, when
it reaches ``segment_records`` lines, truncates the other segment and
switches to it, so the directory never holds more than ``2 ×
segment_records`` records per recorder and the *most recent* window always
survives.

Crash-safety model: records are buffered in memory and appended to disk on
:meth:`flush` (the peer host flushes on every telemetry heartbeat, and the
recorder self-flushes when the buffer reaches a segment's worth).  A flushed
record survives ``SIGKILL`` — the write has reached the kernel; losing it
would take the whole OS down, not just the process.  Graceful failure paths
(unhandled exception, orphan-exit, ``SIGTERM``) go through :meth:`dump`,
which flushes everything *including* the not-yet-flushed tail and appends a
terminal ``dump`` marker naming the reason.

Record shapes (one JSON object per line)::

    {"rec": "event", "seq": 17, "wall": ..., "kind": "delivery", ...}
    {"rec": "span",  "seq": 18, "span": {<Span.to_record() document>}}
    {"rec": "event", "seq": 19, "kind": "dump", "reason": "sigterm", ...}

The cost discipline matches the tracer's: recording is a dict build plus a
deque append (no I/O), disabled recorders (``directory=None``) return after
one attribute read, and nothing here ever touches the chase hot path — the
recorder only sees host-level events, whose rate is per-delivery and
per-commit, not per-chase-step.
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from typing import Deque, Dict, Iterable, List, Optional, Union

from .trace import Span

#: Default bounded window: observations kept per recorder (ring + disk).
DEFAULT_CAPACITY = 1024


class FlightRecorder:
    """A bounded, crash-safe ring of observations for one process."""

    def __init__(
        self,
        directory: Optional[str],
        name: str,
        capacity: int = DEFAULT_CAPACITY,
        segment_records: Optional[int] = None,
        clock=time.time,
    ):
        #: ``False`` when *directory* is None: every method no-ops cheaply.
        self.enabled = directory is not None
        self.directory = directory
        self.name = name
        self.capacity = capacity
        self.segment_records = segment_records or capacity
        self.clock = clock
        #: The in-memory window (introspection and the dump tail).
        self.ring: Deque[Dict[str, object]] = deque(maxlen=capacity)
        self._pending: List[Dict[str, object]] = []
        self._seq = 0
        self._dumped = False
        self._segment = 0
        self._segment_count = 0
        self._paths: List[str] = []
        if self.enabled:
            os.makedirs(directory, exist_ok=True)
            # The pid keeps reborn peers and parallel federations sharing one
            # postmortem directory from clobbering each other's dumps.
            stem = "flight-{}-{}".format(name, os.getpid())
            self._paths = [
                os.path.join(directory, "{}.{}.jsonl".format(stem, index))
                for index in (0, 1)
            ]
            for path in self._paths:
                with open(path, "w"):
                    pass

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(self, kind: str, **fields: object) -> None:
        """Capture one peer event or delivery decision (no I/O)."""
        if not self.enabled:
            return
        self._seq += 1
        entry: Dict[str, object] = {
            "rec": "event",
            "seq": self._seq,
            "wall": self.clock(),
            "kind": kind,
        }
        entry.update(fields)
        self._append(entry)

    def record_span(self, span_record: Dict[str, object]) -> None:
        """Capture one span's JSONL record (open spans carry no ``end``)."""
        if not self.enabled:
            return
        self._seq += 1
        self._append({"rec": "span", "seq": self._seq, "span": span_record})

    def _append(self, entry: Dict[str, object]) -> None:
        self.ring.append(entry)
        self._pending.append(entry)
        if len(self._pending) >= self.segment_records:
            # Self-flush on pressure: the unflushed window a crash can lose
            # stays bounded even if the host never reaches a heartbeat.
            self.flush()

    def records(self) -> List[Dict[str, object]]:
        """The in-memory window, oldest first."""
        return list(self.ring)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def flush(self) -> int:
        """Append buffered records to the current segment; returns the count.

        Rotation happens *between* flushes: once the current segment holds
        ``segment_records`` lines, the other segment is truncated and
        becomes current — the on-disk pair always covers at least the last
        ``segment_records`` and at most twice that.
        """
        if not self.enabled or not self._pending:
            return 0
        pending, self._pending = self._pending, []
        written = 0
        try:
            with open(self._paths[self._segment], "a") as handle:
                for entry in pending:
                    handle.write(json.dumps(entry, sort_keys=True) + "\n")
                    written += 1
                    self._segment_count += 1
                    if self._segment_count >= self.segment_records:
                        break
                handle.flush()
            if written < len(pending):
                # Rotate and keep writing the remainder into the fresh one.
                self._rotate()
                with open(self._paths[self._segment], "a") as handle:
                    for entry in pending[written:]:
                        handle.write(json.dumps(entry, sort_keys=True) + "\n")
                        written += 1
                        self._segment_count += 1
                    handle.flush()
            elif self._segment_count >= self.segment_records:
                self._rotate()
        except OSError:  # pragma: no cover - the disk died; keep flying
            pass
        return written

    def _rotate(self) -> None:
        self._segment = 1 - self._segment
        self._segment_count = 0
        try:
            with open(self._paths[self._segment], "w"):
                pass
        except OSError:  # pragma: no cover - best effort
            pass

    def dump(self, reason: str, **fields: object) -> List[str]:
        """Flush everything and append a terminal marker; returns the paths.

        Idempotent on the marker: only the *first* reason is recorded (a
        SIGTERM dump followed by the shutdown path's dump keeps ``sigterm``),
        but the flush always runs, so late records still reach disk.
        """
        if not self.enabled:
            return []
        if not self._dumped:
            self._dumped = True
            self.record("dump", reason=reason, **fields)
        self.flush()
        return list(self._paths)

    @property
    def dumped(self) -> bool:
        return self._dumped


# ----------------------------------------------------------------------
# Loading dumps back
# ----------------------------------------------------------------------
def flight_paths(directory: str) -> List[str]:
    """Every flight segment file under *directory*, sorted by name."""
    try:
        names = os.listdir(directory)
    except OSError:
        return []
    return sorted(
        os.path.join(directory, name)
        for name in names
        if name.startswith("flight-") and name.endswith(".jsonl")
    )


def _group_key(path: str) -> str:
    # "flight-<name>-<pid>.<segment>.jsonl" -> "flight-<name>-<pid>"
    base = os.path.basename(path)
    return base.rsplit(".", 2)[0]


def load_flight_records(
    target: Union[str, Iterable[str]]
) -> List[Dict[str, object]]:
    """Load flight records from a postmortem directory or explicit files.

    Records are grouped per recorder (the two rotating segments of one
    process re-interleave by their ``seq`` counter) and groups concatenate
    in name order, so one peer's observations always read oldest→newest.
    """
    if isinstance(target, str):
        paths = flight_paths(target) if os.path.isdir(target) else [target]
    else:
        paths = list(target)
    groups: Dict[str, List[Dict[str, object]]] = {}
    for path in paths:
        try:
            with open(path) as handle:
                lines = handle.readlines()
        except OSError:
            continue
        bucket = groups.setdefault(_group_key(path), [])
        for line in lines:
            line = line.strip()
            if line:
                bucket.append(json.loads(line))
    records: List[Dict[str, object]] = []
    for key in sorted(groups):
        records.extend(sorted(groups[key], key=lambda entry: entry.get("seq", 0)))
    return records


def load_flight_spans(target: Union[str, Iterable[str]]) -> List[Span]:
    """The span records inside a flight dump, as :class:`Span` objects.

    Duplicates are possible by design (a span captured open at a heartbeat
    is re-captured closed by the final dump); merge with
    :func:`repro.obs.analysis.merge_spans`, which prefers the closed record.
    """
    spans: List[Span] = []
    for entry in load_flight_records(target):
        if entry.get("rec") == "span":
            spans.append(Span.from_record(entry["span"]))
    return spans
