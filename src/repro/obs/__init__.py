"""Observability: causal tracing, the unified metrics registry, shared stats.

This package is the lowest layer of the reproduction — it imports nothing
from :mod:`repro` — so every other layer (codec, storage, concurrency,
service, federation, workload) can instrument itself without cycles:

* :mod:`repro.obs.stats` — the one ``mean`` / ``percentile`` implementation,
  re-exported by :mod:`repro.service.metrics` and :mod:`repro.workload.metrics`;
* :mod:`repro.obs.trace` — the causal tracer: cheap span objects covering the
  full update lifecycle (submit → admit → chase step → validate →
  group-commit/abort → park/resume) plus federation hops, with a
  :class:`~repro.obs.trace.SpanContext` that rides envelopes across peers so
  a firing absorbed remotely continues the originating update's trace;
* :mod:`repro.obs.metrics` — labeled counters/gauges/histograms and the
  :class:`~repro.obs.metrics.MetricsRegistry` every layer's counters register
  into (replacing ad-hoc snapshot dict merging);
* :mod:`repro.obs.analysis` — cross-peer causal-chain reconstruction, the
  critical path of a commit, per-phase time breakdown and wire-byte
  attribution over exported span sets;
* :mod:`repro.obs.flight` — the always-on crash-safe
  :class:`~repro.obs.flight.FlightRecorder`: a bounded ring of span records,
  peer events and delivery decisions, dumped as prefixed JSONL postmortems;
* :mod:`repro.obs.timeline` — the coordinator-side
  :class:`~repro.obs.timeline.TelemetryTimeline`: per-peer heartbeat series,
  the stalled/dead liveness watchdog, and drain-latency decomposition;
* :mod:`repro.obs.cli` — the ``repro-trace`` entry point over JSONL exports
  (``--flight`` folds postmortem dumps into the causal analysis);
* :mod:`repro.obs.top` — the ``repro-top`` live per-peer console table.
"""

from .analysis import TraceAnalysis, merge_spans
from .flight import FlightRecorder, load_flight_records, load_flight_spans
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .stats import mean, percentile
from .timeline import TelemetryTimeline
from .trace import (
    NOOP_TRACER,
    NoopTracer,
    Span,
    SpanContext,
    Tracer,
    default_tracer,
    load_spans,
)

__all__ = [
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NOOP_TRACER",
    "NoopTracer",
    "Span",
    "SpanContext",
    "TelemetryTimeline",
    "TraceAnalysis",
    "Tracer",
    "default_tracer",
    "load_flight_records",
    "load_flight_spans",
    "load_spans",
    "mean",
    "merge_spans",
    "percentile",
]
