"""The shared descriptive statistics helpers.

One implementation of ``mean`` and nearest-rank ``percentile`` for the whole
tree; :mod:`repro.service.metrics` and :mod:`repro.workload.metrics`
re-export them for compatibility.
"""

from __future__ import annotations

import math
from typing import Sequence


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (0.0 for an empty sequence)."""
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


def percentile(values: Sequence[float], fraction: float) -> float:
    """Ceil nearest-rank percentile (0.0 for an empty sequence).

    The p-th percentile of N ordered samples is the value at rank
    ``ceil(p * N)`` (1-based), the textbook nearest-rank definition: the
    smallest sample such that at least ``p * N`` samples are <= it.  An
    earlier implementation used ``int(round(fraction * (N - 1)))``, whose
    banker's rounding lands one rank high on small windows (the median of
    four samples came out as the third) — pinned against in the unit tests.
    """
    ordered = sorted(values)
    if not ordered:
        return 0.0
    if fraction <= 0:
        return ordered[0]
    if fraction >= 1:
        return ordered[-1]
    rank = max(1, min(len(ordered), math.ceil(fraction * len(ordered))))
    return ordered[rank - 1]
