"""The federation-wide telemetry timeline: heartbeats, liveness, drains.

The coordinator side of the live telemetry plane.  Each peer process pushes
unsolicited ``telemetry`` control frames (a monotonic heartbeat ``seq``, a
metrics-registry snapshot *delta*, and inflight frame/queue gauges) at its
own cadence; the coordinator feeds every arrival — and every drain-time
status reply, which shares the same body shape — into a
:class:`TelemetryTimeline`.  The timeline keeps three things per peer:

* the **merged view**: the latest full status-shaped document, with metric
  deltas accumulated back into absolute counters (what
  ``ProcessFederation.metrics()`` now serves);
* a bounded **history** of samples for rate computations (committed/s in
  ``repro-top``);
* **liveness**: heartbeat age against the expected interval.  A peer whose
  heartbeat is ``stalled_after`` intervals late is ``stalled``; at
  ``dead_after`` intervals it is ``dead`` — long before any drain timeout.
  Control-channel EOF marks a peer dead immediately and *sticky* (no
  heartbeat can revive it; only an explicit :meth:`revive`, i.e. a restart).

The timeline also records drain-latency decomposition: one record per
``drain()`` call with round count, per-round wall times, and the settle
reason, so "why was that drain slow" is answerable from data instead of
re-running under a profiler.

Everything observed can be spooled to a JSONL file (``telemetry.jsonl`` in
the federation workdir) and reloaded with :meth:`TelemetryTimeline.from_spool`
— that file is what a detached ``repro-top`` tails.
"""

from __future__ import annotations

import json
import time
from collections import deque
from typing import Deque, Dict, List, Optional

#: Liveness states, in order of escalation.
LIVE = "live"
STALLED = "stalled"
DEAD = "dead"
UNKNOWN = "unknown"


class PeerTelemetry:
    """Everything the timeline knows about one peer."""

    def __init__(self, name: str, history: int = 256):
        self.name = name
        #: Highest heartbeat sequence number seen (0 = none yet).
        self.seq = 0
        #: Wall-clock arrival time of the last telemetry *or* status frame.
        self.last_arrival: Optional[float] = None
        #: The merged status-shaped view (absolute counters).
        self.view: Dict[str, object] = {}
        #: Heartbeat-delta accumulation base.  Deltas are always relative to
        #: the previous *heartbeat* (the peer does not reset its base on a
        #: status round), so they must never be applied on top of a status
        #: reply's absolute metrics — that would double-count the interval.
        self.accumulated: Dict[str, object] = {}
        #: Sticky death reason (EOF, explicit kill); None while breathing.
        self.dead_reason: Optional[str] = None
        #: (wall, seq, committed) samples for rate computation.
        self.history: Deque[tuple] = deque(maxlen=history)


class TelemetryTimeline:
    """Aggregates per-peer telemetry into a federation-wide time series."""

    def __init__(
        self,
        interval: float,
        stalled_after: float = 1.5,
        dead_after: float = 2.0,
        history: int = 256,
        clock=time.time,
    ):
        #: Expected heartbeat interval in seconds (0 disables age checks).
        self.interval = interval
        #: Heartbeat age thresholds, in units of *interval*.
        self.stalled_after = stalled_after
        self.dead_after = dead_after
        self.clock = clock
        self._history = history
        self.peers: Dict[str, PeerTelemetry] = {}
        #: Drain-latency decomposition records, in call order.
        self.drains: List[Dict[str, object]] = []

    def register_peer(self, name: str) -> None:
        if name not in self.peers:
            self.peers[name] = PeerTelemetry(name, history=self._history)

    # ------------------------------------------------------------------
    # Observations
    # ------------------------------------------------------------------
    def observe(
        self,
        peer: str,
        body: Dict[str, object],
        kind: str = "telemetry",
        now: Optional[float] = None,
    ) -> None:
        """Feed one telemetry frame or status reply into the timeline.

        Telemetry frames carry ``seq`` and (usually) *delta* metrics, which
        accumulate into the merged view; status replies carry absolute
        metrics and refresh the view and arrival time without advancing the
        heartbeat sequence — a drain round proves the peer alive too.
        """
        entry = self.peers.get(peer)
        if entry is None:
            self.register_peer(peer)
            entry = self.peers[peer]
        now = self.clock() if now is None else now
        entry.last_arrival = now
        metrics = body.get("metrics") or {}
        if body.get("metrics_delta"):
            merged = dict(entry.accumulated)
            for key, value in metrics.items():
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    base = merged.get(key, 0)
                    if isinstance(base, (int, float)) and not isinstance(base, bool):
                        merged[key] = base + value
                        continue
                merged[key] = value
            entry.accumulated = merged
            metrics = merged
        view = dict(entry.view)
        for key, value in body.items():
            if key in ("t", "seq", "wall", "metrics_delta", "round"):
                continue
            view[key] = value
        view["metrics"] = metrics
        entry.view = view
        if kind == "telemetry":
            seq = body.get("seq")
            if isinstance(seq, int) and seq > entry.seq:
                entry.seq = seq
            entry.history.append((now, entry.seq, view.get("committed", 0)))

    def mark_dead(self, peer: str, reason: str) -> None:
        """Sticky death: control-channel EOF or an explicit kill."""
        self.register_peer(peer)
        self.peers[peer].dead_reason = reason

    def revive(self, peer: str) -> None:
        """A restarted peer starts a fresh heartbeat stream."""
        self.register_peer(peer)
        entry = self.peers[peer]
        entry.dead_reason = None
        entry.seq = 0
        entry.last_arrival = None
        entry.accumulated = {}
        entry.history.clear()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def latest(self, peer: str) -> Optional[Dict[str, object]]:
        """The merged status-shaped view for *peer* (None before any frame)."""
        entry = self.peers.get(peer)
        if entry is None or not entry.view:
            return None
        return dict(entry.view)

    def heartbeat_age(self, peer: str, now: Optional[float] = None) -> Optional[float]:
        entry = self.peers.get(peer)
        if entry is None or entry.last_arrival is None:
            return None
        now = self.clock() if now is None else now
        return max(0.0, now - entry.last_arrival)

    def state(self, peer: str, now: Optional[float] = None) -> str:
        entry = self.peers.get(peer)
        if entry is None:
            return UNKNOWN
        if entry.dead_reason is not None:
            return DEAD
        if entry.last_arrival is None:
            return UNKNOWN
        if self.interval <= 0:
            return LIVE
        age = self.heartbeat_age(peer, now)
        if age >= self.dead_after * self.interval:
            return DEAD
        if age >= self.stalled_after * self.interval:
            return STALLED
        return LIVE

    def liveness(self, now: Optional[float] = None) -> Dict[str, Dict[str, object]]:
        """Per-peer ``{state, age, seq, reason}`` — the watchdog's verdict."""
        now = self.clock() if now is None else now
        report: Dict[str, Dict[str, object]] = {}
        for name, entry in self.peers.items():
            report[name] = {
                "state": self.state(name, now),
                "age": self.heartbeat_age(name, now),
                "seq": entry.seq,
                "reason": entry.dead_reason,
            }
        return report

    def committed_rate(self, peer: str) -> Optional[float]:
        """Commits per second over the peer's sample history window."""
        entry = self.peers.get(peer)
        if entry is None or len(entry.history) < 2:
            return None
        first, last = entry.history[0], entry.history[-1]
        elapsed = last[0] - first[0]
        if elapsed <= 0:
            return None
        delta = (last[2] or 0) - (first[2] or 0)
        return delta / elapsed

    # ------------------------------------------------------------------
    # Drain decomposition
    # ------------------------------------------------------------------
    def record_drain(self, record: Dict[str, object]) -> None:
        self.drains.append(record)

    def time_to_idle_series(self) -> List[float]:
        """Seconds-to-first-idle-candidate of each watermark-mode drain.

        Only drains that settled via the watermark protocol carry the
        measurement (``time_to_idle_seconds``): the wall time from drain
        entry until every peer's observed view first looked conserved and
        idle, i.e. the workload's own settle tail with the coordinator's
        confirmation overhead excluded.
        """
        return [
            float(record["time_to_idle_seconds"])
            for record in self.drains
            if "time_to_idle_seconds" in record
        ]

    # ------------------------------------------------------------------
    # Spooling
    # ------------------------------------------------------------------
    @classmethod
    def from_spool(cls, path: str) -> "TelemetryTimeline":
        """Rebuild a timeline from a coordinator's ``telemetry.jsonl``."""
        timeline = cls(interval=0.0)
        with open(path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                rec = record.get("rec")
                if rec == "meta":
                    timeline.interval = float(record.get("interval", 0.0))
                    stalled = record.get("stalled_after")
                    dead = record.get("dead_after")
                    if stalled is not None:
                        timeline.stalled_after = float(stalled)
                    if dead is not None:
                        timeline.dead_after = float(dead)
                    for name in record.get("peers", []):
                        timeline.register_peer(name)
                elif rec == "telemetry":
                    timeline.observe(
                        record["peer"],
                        record.get("body", {}),
                        kind=record.get("kind", "telemetry"),
                        now=record.get("wall"),
                    )
                elif rec == "liveness":
                    if record.get("state") == DEAD and record.get("reason"):
                        timeline.mark_dead(record["peer"], record["reason"])
                elif rec == "drain":
                    timeline.record_drain(record.get("drain", {}))
        return timeline


def load_spool(path: str) -> TelemetryTimeline:
    return TelemetryTimeline.from_spool(path)
