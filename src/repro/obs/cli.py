"""``repro-trace``: reconstruct causal chains from exported JSONL spans.

Usage::

    repro-trace TRACE.jsonl [MORE.jsonl ...] [--trace TRACE_ID]
    repro-trace --flight /path/to/flight SURVIVOR.jsonl ...

Reads one or more JSONL exports (from ``repro-serve --trace-out`` or a
benchmark run), rebuilds the cross-peer causal structure, and prints the
per-phase time breakdown, per-envelope-kind wire-byte attribution, the
longest cross-peer chain, and the critical path of the last commit.  With
``--trace`` it prints the full span tree of one trace instead.

``--flight DIR`` (repeatable) folds the span records inside a flight
recorder's postmortem dumps into the same analysis: a crashed peer's spans
merge with the survivors' normal exports (duplicates deduplicated, closed
records preferred), closing causal chains the crash would otherwise sever.
"""

from __future__ import annotations

import argparse
from typing import List, Optional, Sequence

from .analysis import TraceAnalysis, merge_spans
from .flight import load_flight_spans
from .trace import Span, load_spans


def _render_tree(analysis: TraceAnalysis, span: Span, depth: int = 0) -> List[str]:
    lines = analysis.format_chain([span])
    lines = ["  " * depth + lines[0]]
    for child in sorted(
        analysis.children.get(span.span_id, []), key=lambda child: child.start
    ):
        lines.extend(_render_tree(analysis, child, depth + 1))
    return lines


def main(argv: Optional[Sequence[str]] = None) -> int:
    try:
        return _main(argv)
    except BrokenPipeError:  # pragma: no cover - e.g. piped into head
        return 0


def _main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="Reconstruct cross-peer causal chains from JSONL span exports.",
    )
    parser.add_argument("paths", nargs="*", help="JSONL span export files")
    parser.add_argument(
        "--trace",
        default=None,
        help="print the full span tree of one trace id instead of the summary",
    )
    parser.add_argument(
        "--flight",
        action="append",
        default=[],
        metavar="DIR",
        help="merge span records from a flight-recorder postmortem directory "
        "(repeatable)",
    )
    args = parser.parse_args(argv)
    if not args.paths and not args.flight:
        parser.error("need span export paths and/or --flight directories")

    groups: List[List[Span]] = []
    if args.paths:
        groups.append(load_spans(args.paths))
    for directory in args.flight:
        groups.append(load_flight_spans(directory))
    spans = merge_spans(*groups)
    analysis = TraceAnalysis(spans)

    if args.trace is not None:
        members = analysis.traces.get(args.trace)
        if not members:
            print("trace {!r} not found ({} traces loaded)".format(args.trace, len(analysis.traces)))
            return 1
        root = analysis.root_of(args.trace)
        if root is None:
            # Orphaned trace fragment (export from one peer of a larger run).
            for span in sorted(members, key=lambda span: span.start):
                print(span.describe())
            return 0
        for line in _render_tree(analysis, root):
            print(line)
        return 0

    for line in analysis.summary():
        print(line)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
