"""``repro-top``: the live per-peer table of a running process federation.

The coordinator spools every telemetry observation to
``<workdir>/telemetry.jsonl``; this tool tails that spool and renders one
row per peer — liveness state, heartbeat age, commit rate, queue depth,
parked questions, frames in flight — refreshing in place like ``top``.

Usage::

    repro-top <workdir-or-telemetry.jsonl>            # live, refreshes
    repro-top --once <workdir-or-telemetry.jsonl>     # one table, TSV
    repro-top --demo --once                           # self-contained demo

``--once`` prints a machine-readable table (tab-separated, one header line,
one row per peer) and exits — the CI smoke asserts its shape.  ``--demo``
spins up a tiny two-peer socket federation, pushes a few inserts through it
and renders its table; with ``--once`` it exits after the drain, otherwise
it shows a few live refreshes first.

The module lives in ``obs`` but never imports the federation at module
level (``obs`` is the lowest layer); ``--demo`` imports it lazily.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional, Sequence

from .timeline import TelemetryTimeline

#: The table columns, in order (the --once machine-readable contract).
COLUMNS = (
    "peer",
    "state",
    "hb_age_s",
    "seq",
    "committed",
    "committed_per_s",
    "queue",
    "parked",
    "inflight",
    "sent",
    "recv",
)


def _fmt(value, digits: int = 3) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return "{:.{}f}".format(value, digits)
    return str(value)


def render_table(
    timeline: TelemetryTimeline, now: Optional[float] = None
) -> List[str]:
    """The per-peer table as TSV lines (header first), peers sorted by name."""
    lines = ["\t".join(COLUMNS)]
    liveness = timeline.liveness(now)
    for name in sorted(timeline.peers):
        view = timeline.latest(name) or {}
        entry = liveness.get(name, {})
        sent = view.get("sent") or {}
        received = view.get("received") or {}
        row = (
            name,
            str(entry.get("state", "unknown")),
            _fmt(entry.get("age")),
            _fmt(entry.get("seq", 0)),
            _fmt(view.get("committed", 0)),
            _fmt(timeline.committed_rate(name), 1),
            # queue: work not yet absorbed (outbox staging + deferred retry)
            _fmt(int(view.get("outbox") or 0) + int(view.get("retry") or 0)),
            _fmt(view.get("open_questions", 0)),
            # inflight: frames enqueued on outgoing links, not yet on the wire
            _fmt(view.get("queued", 0)),
            _fmt(sum(sent.values()) if sent else 0),
            _fmt(sum(received.values()) if received else 0),
        )
        lines.append("\t".join(row))
    return lines


def _resolve_spool(path: str) -> str:
    if os.path.isdir(path):
        return os.path.join(path, "telemetry.jsonl")
    return path


def _print_table(timeline: TelemetryTimeline) -> None:
    for line in render_table(timeline):
        print(line)


def _live(spool: str, interval: float) -> int:
    try:
        while True:
            if os.path.exists(spool):
                timeline = TelemetryTimeline.from_spool(spool)
                # Clear and home, like top; harmless when redirected.
                sys.stdout.write("\x1b[2J\x1b[H")
                _print_table(timeline)
                drains = timeline.drains
                if drains:
                    print(
                        "last drain: {} rounds in {:.3f}s ({})".format(
                            drains[-1].get("rounds"),
                            drains[-1].get("seconds", 0.0),
                            drains[-1].get("settle_reason"),
                        )
                    )
                sys.stdout.flush()
            else:
                print("waiting for {} ...".format(spool))
            time.sleep(interval)
    except KeyboardInterrupt:
        return 0


def _demo(once: bool, interval: float) -> int:
    # Lazy import: obs must not depend on the federation at module level.
    from ..core.schema import DatabaseSchema
    from ..core.tgd import parse_tgds
    from ..core.tuples import make_tuple
    from ..core.update import InsertOperation
    from ..federation.process_network import ProcessFederation
    from ..storage.memory import FrozenDatabase

    schema = DatabaseSchema.from_dict(
        {"A1": ["x"], "A2": ["x", "y"], "B1": ["x"], "B2": ["x"]}
    )
    mappings = parse_tgds(
        [
            "A1(x) -> exists y . A2(x, y)",
            "A2(x, y) -> B1(x)",
            "B1(x) -> B2(x)",
        ]
    )
    initial = FrozenDatabase(
        schema, {name: frozenset() for name in schema.relation_names()}
    )
    federation = ProcessFederation(
        schema,
        initial,
        mappings,
        ownership={"a": ["A1", "A2"], "b": ["B1", "B2"]},
        telemetry_interval=0.05,
    )
    try:
        for index in range(8):
            federation.submit(
                "a", InsertOperation(make_tuple("A1", "v{}".format(index)))
            )
        if not once:
            for _ in range(3):
                deadline = time.monotonic() + max(interval, 0.1)
                while time.monotonic() < deadline:
                    federation.poll(0.05)
                _print_table(federation.timeline)
                print()
        federation.drain(timeout=60.0)
        federation.poll(0.05)
        _print_table(federation.timeline)
        if federation.last_drain is not None:
            print(
                "last drain: {} rounds in {:.3f}s ({})".format(
                    federation.last_drain["rounds"],
                    federation.last_drain["seconds"],
                    federation.last_drain["settle_reason"],
                )
            )
    finally:
        federation.close()
        federation.assert_reaped()
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    try:
        return _main(argv)
    except BrokenPipeError:  # pragma: no cover - e.g. piped into head
        return 0


def _main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-top",
        description="Live per-peer telemetry table of a process federation.",
    )
    parser.add_argument(
        "path",
        nargs="?",
        help="a federation workdir or its telemetry.jsonl spool",
    )
    parser.add_argument(
        "--once",
        action="store_true",
        help="print one machine-readable (TSV) table and exit",
    )
    parser.add_argument(
        "--interval",
        type=float,
        default=1.0,
        help="refresh interval in seconds (live mode; default 1.0)",
    )
    parser.add_argument(
        "--demo",
        action="store_true",
        help="run a tiny self-contained socket federation and render it",
    )
    args = parser.parse_args(argv)

    if args.demo:
        return _demo(args.once, args.interval)
    if not args.path:
        parser.error("need a federation workdir / telemetry.jsonl (or --demo)")
    spool = _resolve_spool(args.path)
    if args.once:
        if not os.path.exists(spool):
            print("no telemetry spool at {}".format(spool), file=sys.stderr)
            return 1
        _print_table(TelemetryTimeline.from_spool(spool))
        return 0
    return _live(spool, args.interval)


if __name__ == "__main__":
    raise SystemExit(main())
