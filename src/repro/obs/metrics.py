"""The unified metrics registry: counters, gauges, histograms, producers.

Every layer of the reproduction used to keep its own counters and splice
them together with ad-hoc dict merging (``ServiceMetrics.snapshot`` folding
in store gauges and scheduler statistics, ``FederatedNetwork.metrics``
prefixing per-peer snapshots by hand).  A :class:`MetricsRegistry` replaces
the merging: instruments register once under a flat snake_case name and
``collect()`` produces the flat dict every existing snapshot key expects —
bit-compatible with the pre-registry output.

Three instrument kinds:

* :class:`Counter` — a monotonically increasing int (``inc``);
* :class:`Gauge` — a point-in-time value, either set directly (``set``) or
  computed live by a callable (``set_function``);
* :class:`Histogram` — a bounded sliding window of observations exposing
  nearest-rank percentiles and the mean via :mod:`repro.obs.stats`.

Layers whose metrics are naturally a dict (transport, per-peer service
snapshots) register a *producer* — a zero-argument callable returning a
flat dict — optionally under a prefix; ``collect()`` folds producers in
after the instruments, so an instrument and a producer must not share a
name (the producer wins, matching the old "merge last" dict behaviour).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from .stats import mean, percentile


class Counter:
    """A monotonically increasing integer instrument."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str, initial: int = 0):
        self.name = name
        self._value = initial

    def inc(self, amount: int = 1) -> int:
        self._value += amount
        return self._value

    @property
    def value(self) -> int:
        return self._value

    def collect(self) -> Dict[str, float]:
        return {self.name: self._value}


class Gauge:
    """A point-in-time value: set directly or computed by a callable."""

    __slots__ = ("name", "_value", "_function")

    def __init__(self, name: str, initial: float = 0.0):
        self.name = name
        self._value = initial
        self._function: Optional[Callable[[], float]] = None

    def set(self, value: float) -> None:
        self._function = None
        self._value = value

    def set_function(self, function: Callable[[], float]) -> None:
        """Compute the gauge live at every ``collect()``."""
        self._function = function

    @property
    def value(self) -> float:
        if self._function is not None:
            return self._function()
        return self._value

    def collect(self) -> Dict[str, float]:
        return {self.name: self.value}


class Histogram:
    """A bounded sliding window of observations with percentile collection.

    ``collect()`` emits ``{name}_p{P}_{unit}`` keys for each configured
    percentile fraction (p50 → ``_p50_``), matching the wait/turnaround key
    scheme ``ServiceMetrics`` always exposed.
    """

    __slots__ = ("name", "unit", "window", "percentiles", "_samples")

    def __init__(
        self,
        name: str,
        window: int = 4096,
        unit: str = "seconds",
        percentiles: Tuple[float, ...] = (0.5, 0.95),
    ):
        self.name = name
        self.unit = unit
        self.window = window
        self.percentiles = percentiles
        self._samples: Deque[float] = deque(maxlen=window)

    def observe(self, value: float) -> None:
        self._samples.append(value)

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def samples(self) -> List[float]:
        return list(self._samples)

    def percentile(self, fraction: float) -> float:
        return percentile(self._samples, fraction)

    def mean(self) -> float:
        return mean(self._samples)

    def collect(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for fraction in self.percentiles:
            label = "p{}".format(int(round(fraction * 100)))
            out["{}_{}_{}".format(self.name, label, self.unit)] = self.percentile(fraction)
        return out


class MetricsRegistry:
    """Get-or-create instruments plus dict producers; collect to a flat dict."""

    def __init__(self):
        self._instruments: Dict[str, object] = {}
        self._order: List[str] = []
        self._producers: List[Tuple[str, Callable[[], Dict[str, float]]]] = []

    # ------------------------------------------------------------------
    # Instrument factories (get-or-create: re-registration returns the
    # existing instrument, mismatched kinds are a programming error)
    # ------------------------------------------------------------------
    def _get_or_create(self, name: str, kind: type, factory: Callable[[], object]):
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, kind):
                raise TypeError(
                    "metric {!r} already registered as {}".format(
                        name, type(existing).__name__
                    )
                )
            return existing
        instrument = factory()
        self._instruments[name] = instrument
        self._order.append(name)
        return instrument

    def counter(self, name: str, initial: int = 0) -> Counter:
        return self._get_or_create(name, Counter, lambda: Counter(name, initial))

    def gauge(self, name: str, initial: float = 0.0) -> Gauge:
        return self._get_or_create(name, Gauge, lambda: Gauge(name, initial))

    def histogram(
        self,
        name: str,
        window: int = 4096,
        unit: str = "seconds",
        percentiles: Tuple[float, ...] = (0.5, 0.95),
    ) -> Histogram:
        return self._get_or_create(
            name, Histogram, lambda: Histogram(name, window, unit, percentiles)
        )

    # ------------------------------------------------------------------
    # Producers
    # ------------------------------------------------------------------
    def register_producer(
        self, producer: Callable[[], Dict[str, float]], prefix: str = ""
    ) -> None:
        """Fold *producer*'s dict into every ``collect()``, keys prefixed."""
        self._producers.append((prefix, producer))

    # ------------------------------------------------------------------
    # Collection
    # ------------------------------------------------------------------
    def collect(self) -> Dict[str, float]:
        """One flat dict: instruments in registration order, then producers."""
        out: Dict[str, float] = {}
        for name in self._order:
            out.update(self._instruments[name].collect())
        for prefix, producer in self._producers:
            for key, value in producer().items():
                out[prefix + key] = value
        return out
