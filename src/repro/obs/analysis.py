"""Trace analysis: causal chains, critical paths, phase and byte attribution.

Operates purely on :class:`~repro.obs.trace.Span` lists (live from a tracer
or loaded back from a JSONL export), so the same code backs the
``repro-trace`` CLI and the benchmark phase-breakdown entries.

Phase accounting conventions (must match the instrumentation sites):

* ``chase-step`` spans carry a ``tracker_seconds`` attr — the slice of the
  step spent on validation work (violation/dependency queries plus the eager
  conflict check nested in the step) — which is reattributed from the
  ``chase`` phase to ``validate``, so "validation" means tracker plus
  conflict checks plus group validation, as in the paper's accounting
  (nested ``conflict-check`` spans are phase-less to avoid double counting);
* ``wire`` spans last from send to delivery (simulated transit), with the
  actual codec CPU in ``encode_seconds``/``decode_seconds`` attrs; the
  ``wire`` phase sums the codec CPU and the transit wall goes to a separate
  ``transit`` bucket (in a simulated transport transit is scheduling delay,
  not work).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Tuple

from .trace import Span

#: The phases every breakdown reports, in display order.
PHASES = ("queue", "chase", "validate", "wire", "park", "transit")


def merge_spans(*groups: Sequence[Span]) -> List[Span]:
    """Merge span sets from several sources, deduplicating by identity.

    A span can legitimately appear more than once: a flight recorder
    captures it *open* at a heartbeat and again *closed* in the final dump,
    and a normal trace export repeats both.  Records are keyed by
    ``(trace_id, span_id)``; a closed record (``end`` set) always wins over
    an open one, and between two records of the same closedness the
    later-seen one wins.  First-seen order is preserved.
    """
    merged: Dict[Tuple[str, str], Span] = {}
    order: List[Tuple[str, str]] = []
    for group in groups:
        for span in group:
            key = (span.trace_id, span.span_id)
            existing = merged.get(key)
            if existing is None:
                merged[key] = span
                order.append(key)
            elif existing.end is None or span.end is not None:
                merged[key] = span
    return [merged[key] for key in order]


class TraceAnalysis:
    """Indexes over a span set: parent/child links, traces, attributions."""

    def __init__(self, spans: Sequence[Span]):
        self.spans: List[Span] = list(spans)
        self.by_id: Dict[str, Span] = {span.span_id: span for span in self.spans}
        self.traces: Dict[str, List[Span]] = defaultdict(list)
        self.children: Dict[str, List[Span]] = defaultdict(list)
        for span in self.spans:
            self.traces[span.trace_id].append(span)
            if span.parent_id is not None:
                self.children[span.parent_id].append(span)

    # ------------------------------------------------------------------
    # Causal chains
    # ------------------------------------------------------------------
    def root_of(self, trace_id: str) -> Optional[Span]:
        """The unique parentless span of a trace (None if the trace is empty)."""
        for span in self.traces.get(trace_id, ()):
            if span.parent_id is None:
                return span
        return None

    def causal_chain(self, span: Span) -> List[Span]:
        """Walk parent links from *span* up to its root; returns root→span."""
        chain = [span]
        seen = {span.span_id}
        current = span
        while current.parent_id is not None:
            parent = self.by_id.get(current.parent_id)
            if parent is None or parent.span_id in seen:
                break
            chain.append(parent)
            seen.add(parent.span_id)
            current = parent
        chain.reverse()
        return chain

    def remote_continuations(self) -> List[Span]:
        """Update spans opened for remotely-absorbed work (firings etc.)."""
        return [
            span
            for span in self.spans
            if span.name == "update" and span.attrs.get("kind") == "remote"
        ]

    def cross_peer_chains(self) -> List[List[Span]]:
        """Causal chains of remote continuations that span ≥ 2 distinct peers."""
        chains = []
        for span in self.remote_continuations():
            chain = self.causal_chain(span)
            peers = {link.peer for link in chain if link.peer}
            if len(peers) >= 2:
                chains.append(chain)
        return chains

    def critical_path(self, trace_id: str) -> List[Span]:
        """Root→latest-finishing span of a trace: where its wall time went."""
        members = self.traces.get(trace_id, [])
        if not members:
            return []
        latest = max(members, key=lambda span: span.end if span.end is not None else span.start)
        return self.causal_chain(latest)

    # ------------------------------------------------------------------
    # Attribution
    # ------------------------------------------------------------------
    def phase_breakdown(self) -> Dict[str, float]:
        """Seconds per phase over the whole span set (conventions above)."""
        breakdown = {phase: 0.0 for phase in PHASES}
        for span in self.spans:
            if span.end is None or not span.phase:
                continue
            duration = span.end - span.start
            if span.phase == "chase":
                tracker = float(span.attrs.get("tracker_seconds", 0.0))
                breakdown["chase"] += max(0.0, duration - tracker)
                breakdown["validate"] += tracker
            elif span.phase == "wire":
                codec = float(span.attrs.get("encode_seconds", 0.0)) + float(
                    span.attrs.get("decode_seconds", 0.0)
                )
                breakdown["wire"] += codec
                breakdown["transit"] += max(0.0, duration - codec)
            elif span.phase in breakdown:
                breakdown[span.phase] += duration
        return breakdown

    def wire_bytes_by_kind(self) -> Dict[str, int]:
        """Total wire bytes attributed per envelope payload kind."""
        totals: Dict[str, int] = defaultdict(int)
        for span in self.spans:
            if span.phase == "wire":
                kind = str(span.attrs.get("kind", "unknown"))
                totals[kind] += int(span.attrs.get("bytes", 0))
        return dict(totals)

    def commit_spans(self) -> List[Span]:
        return [span for span in self.spans if span.name == "commit"]

    # ------------------------------------------------------------------
    # Rendering (shared by repro-trace)
    # ------------------------------------------------------------------
    def format_chain(self, chain: Sequence[Span]) -> List[str]:
        lines = []
        for depth, span in enumerate(chain):
            peer = "@{}".format(span.peer) if span.peer else ""
            extras = []
            for key in ("kind", "op_type", "tgd", "bytes"):
                if key in span.attrs:
                    extras.append("{}={}".format(key, span.attrs[key]))
            detail = " ({})".format(", ".join(extras)) if extras else ""
            lines.append(
                "{}{} {}{} {:.6f}s{}".format(
                    "  " * depth, span.name, span.span_id, peer, span.duration, detail
                )
            )
        return lines

    def summary(self) -> List[str]:
        """The repro-trace report body as a list of lines."""
        lines = [
            "spans: {}  traces: {}".format(len(self.spans), len(self.traces)),
            "",
            "per-phase time breakdown:",
        ]
        breakdown = self.phase_breakdown()
        total = sum(breakdown.values()) or 1.0
        for phase in PHASES:
            seconds = breakdown[phase]
            lines.append(
                "  {:<8} {:>12.6f}s  {:>5.1f}%".format(phase, seconds, 100.0 * seconds / total)
            )
        bytes_by_kind = self.wire_bytes_by_kind()
        if bytes_by_kind:
            lines.append("")
            lines.append("wire bytes by envelope kind:")
            for kind in sorted(bytes_by_kind):
                lines.append("  {:<20} {:>10d} bytes".format(kind, bytes_by_kind[kind]))
        chains = self.cross_peer_chains()
        lines.append("")
        lines.append("cross-peer causal chains: {}".format(len(chains)))
        if chains:
            longest = max(chains, key=len)
            lines.append("longest chain:")
            lines.extend("  " + line for line in self.format_chain(longest))
        commits = self.commit_spans()
        if commits:
            last = commits[-1]
            lines.append("")
            lines.append("critical path of last commit (trace {}):".format(last.trace_id))
            lines.extend("  " + line for line in self.format_chain(self.causal_chain(last)))
        return lines
