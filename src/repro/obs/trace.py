"""Causal tracing: cheap spans linking an update's whole cross-peer story.

A :class:`Tracer` records :class:`Span` objects — slotted, no dataclass
machinery — covering the update lifecycle (the root ``update`` span, queue
wait, chase steps, conflict checks, group validation, commit/abort events,
frontier parks) and federation hops (``wire`` spans per envelope).  The
:class:`SpanContext` is the portable ``(trace_id, span_id)`` pair that rides
exchange envelopes as an optional codec field, so a firing absorbed on a
remote peer parents its spans back into the originating update's trace.

Span ids are deterministic counters, not random tokens: two runs of the same
deterministic workload produce the same trace, which is what the traced ≡
untraced differential tests want.  Timestamps come from the tracer's clock
(``time.perf_counter`` by default) and are the only nondeterministic field.

The disabled path is a shared :data:`NOOP_TRACER` whose ``enabled`` flag is
``False``; every instrumentation site guards with ``if tracer.enabled:`` so
tracing off costs one attribute read per would-be span (the overhead
microbench keeps this under the 5% budget).  :func:`default_tracer` gates a
process-wide shared tracer on ``REPRO_TRACE=1`` — with the environment
variable unset every layer silently wires itself to the noop.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Union


@dataclass(frozen=True)
class SpanContext:
    """The portable identity of a span: what envelopes carry across peers."""

    trace_id: str
    span_id: str


class Span:
    """One recorded operation: an interval (or instant event) in a trace."""

    __slots__ = (
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "phase",
        "peer",
        "start",
        "end",
        "attrs",
    )

    def __init__(
        self,
        trace_id: str,
        span_id: str,
        parent_id: Optional[str],
        name: str,
        phase: str,
        peer: str,
        start: float,
        end: Optional[float] = None,
        attrs: Optional[Dict[str, object]] = None,
    ):
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.phase = phase
        self.peer = peer
        self.start = start
        self.end = end
        self.attrs = attrs if attrs is not None else {}

    @property
    def context(self) -> SpanContext:
        return SpanContext(trace_id=self.trace_id, span_id=self.span_id)

    @property
    def duration(self) -> float:
        """Seconds from start to end (0.0 while the span is still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def to_record(self) -> Dict[str, object]:
        """The JSONL export form (compact keys, attrs only when present)."""
        record: Dict[str, object] = {
            "tid": self.trace_id,
            "sid": self.span_id,
            "name": self.name,
            "start": self.start,
        }
        if self.parent_id is not None:
            record["parent"] = self.parent_id
        if self.phase:
            record["phase"] = self.phase
        if self.peer:
            record["peer"] = self.peer
        if self.end is not None:
            record["end"] = self.end
        if self.attrs:
            record["attrs"] = self.attrs
        return record

    @classmethod
    def from_record(cls, record: Dict[str, object]) -> "Span":
        return cls(
            trace_id=record["tid"],
            span_id=record["sid"],
            parent_id=record.get("parent"),
            name=record["name"],
            phase=record.get("phase", ""),
            peer=record.get("peer", ""),
            start=record["start"],
            end=record.get("end"),
            attrs=record.get("attrs") or {},
        )

    def describe(self) -> str:
        suffix = " @{}".format(self.peer) if self.peer else ""
        return "{} [{}]{} {:.6f}s".format(self.name, self.span_id, suffix, self.duration)


#: A parent argument: a live span, a portable context, or nothing.
ParentLike = Union[Span, SpanContext, None]


class Tracer:
    """Records spans with deterministic ids; shared by every peer of a run."""

    enabled = True

    def __init__(
        self, clock: Callable[[], float] = time.perf_counter, prefix: str = ""
    ):
        #: Id prefix, empty for in-process tracers.  When several *processes*
        #: trace one federation (the socket harness), each peer's tracer gets
        #: a distinct prefix (``"p0."``) so the per-process deterministic
        #: counters cannot mint colliding span ids across the merged export.
        self.prefix = prefix
        self.clock = clock
        self.spans: List[Span] = []
        self._next_trace = 1
        self._next_span = 1

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def start_span(
        self,
        name: str,
        phase: str = "",
        parent: ParentLike = None,
        peer: str = "",
        **attrs: object,
    ) -> Span:
        """Open a span; with *parent* it joins that trace, else starts a new one."""
        if parent is not None:
            trace_id = parent.trace_id
            parent_id: Optional[str] = (
                parent.span_id if isinstance(parent, SpanContext) else parent.span_id
            )
        else:
            trace_id = "{}t{}".format(self.prefix, self._next_trace)
            self._next_trace += 1
            parent_id = None
        span = Span(
            trace_id=trace_id,
            span_id="{}s{}".format(self.prefix, self._next_span),
            parent_id=parent_id,
            name=name,
            phase=phase,
            peer=peer,
            start=self.clock(),
            attrs=dict(attrs) if attrs else {},
        )
        self._next_span += 1
        self.spans.append(span)
        return span

    def end_span(self, span: Span, **attrs: object) -> Span:
        """Close *span* now (idempotent: an already-ended span keeps its end)."""
        if span.end is None:
            span.end = self.clock()
        if attrs:
            span.attrs.update(attrs)
        return span

    def event(
        self,
        name: str,
        phase: str = "",
        parent: ParentLike = None,
        peer: str = "",
        **attrs: object,
    ) -> Span:
        """An instant span (start == end): commits, aborts, notices."""
        span = self.start_span(name, phase=phase, parent=parent, peer=peer, **attrs)
        span.end = span.start
        return span

    def record_span(
        self,
        name: str,
        start: float,
        end: float,
        phase: str = "",
        parent: ParentLike = None,
        peer: str = "",
        **attrs: object,
    ) -> Span:
        """Record an interval measured by the caller (encode/decode timings)."""
        span = self.start_span(name, phase=phase, parent=parent, peer=peer, **attrs)
        span.start = start
        span.end = end
        return span

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def export_jsonl(self, path: str) -> int:
        """Write every recorded span as one JSON object per line; returns the count."""
        with open(path, "w") as handle:
            for span in self.spans:
                handle.write(json.dumps(span.to_record(), sort_keys=True) + "\n")
        return len(self.spans)

    def clear(self) -> None:
        """Drop every recorded span (id counters keep running)."""
        self.spans = []


class NoopTracer:
    """The disabled tracer: every operation is a no-op returning ``None``.

    Instrumentation sites guard with ``if tracer.enabled:`` and never reach
    these methods on the hot path; they exist so un-guarded cold paths (CLI
    export, tests) still work against a disabled tracer.
    """

    enabled = False
    spans: List[Span] = []

    def start_span(self, name, phase="", parent=None, peer="", **attrs):
        return None

    def end_span(self, span, **attrs):
        return None

    def event(self, name, phase="", parent=None, peer="", **attrs):
        return None

    def record_span(self, name, start, end, phase="", parent=None, peer="", **attrs):
        return None

    def export_jsonl(self, path: str) -> int:
        with open(path, "w"):
            pass
        return 0

    def clear(self) -> None:
        pass


#: The shared disabled tracer every layer defaults to.
NOOP_TRACER = NoopTracer()

_shared_tracer: Optional[Tracer] = None


def default_tracer() -> Union[Tracer, NoopTracer]:
    """The process default: a shared live tracer iff ``REPRO_TRACE=1``.

    The environment variable is consulted on every call, so tests can flip it
    with ``monkeypatch``; the live tracer instance is created once and shared
    (every service, scheduler and transport built afterwards records into the
    same span list, which is exactly what cross-peer reconstruction needs).
    """
    global _shared_tracer
    if os.environ.get("REPRO_TRACE") == "1":
        if _shared_tracer is None:
            _shared_tracer = Tracer()
        return _shared_tracer
    return NOOP_TRACER


def load_spans(paths: Union[str, Iterable[str]]) -> List[Span]:
    """Load spans back from one or more JSONL exports."""
    if isinstance(paths, str):
        paths = [paths]
    spans: List[Span] = []
    for path in paths:
        with open(path) as handle:
            for line in handle:
                line = line.strip()
                if line:
                    spans.append(Span.from_record(json.loads(line)))
    return spans
