"""Concurrency control: read logs, dependency trackers, optimistic scheduling.

This package implements Sections 4 and 5 of the paper: the chase-step system
model, the read-query log, direct-conflict detection, the optimistic scheduler
(Algorithm 4), the NAIVE / COARSE / PRECISE cascading-abort algorithms and the
final-state serializability utilities.
"""

from .aborts import AbortDecision, RunStatistics, consolidate_aborts
from .conflicts import ConflictReport, find_direct_conflicts
from .dependencies import (
    CoarseTracker,
    DependencyTracker,
    HybridTracker,
    NaiveTracker,
    PreciseTracker,
    make_tracker,
)
from .execution import StepResult, UpdateExecution
from .optimistic import OptimisticScheduler, SchedulerStalled, run_concurrent_updates
from .policies import (
    LowestPriorityFirstPolicy,
    RoundRobinStepPolicy,
    RoundRobinStratumPolicy,
    SchedulingPolicy,
    make_policy,
)
from .readlog import ReadLog, ReadRecord
from .serializability import (
    SerialExecutor,
    databases_equal,
    databases_isomorphic,
    final_state_matches_some_serial_order,
)

__all__ = [
    "AbortDecision",
    "CoarseTracker",
    "ConflictReport",
    "DependencyTracker",
    "HybridTracker",
    "LowestPriorityFirstPolicy",
    "NaiveTracker",
    "OptimisticScheduler",
    "PreciseTracker",
    "ReadLog",
    "ReadRecord",
    "RoundRobinStepPolicy",
    "RoundRobinStratumPolicy",
    "RunStatistics",
    "SchedulerStalled",
    "SchedulingPolicy",
    "SerialExecutor",
    "StepResult",
    "UpdateExecution",
    "consolidate_aborts",
    "databases_equal",
    "databases_isomorphic",
    "final_state_matches_some_serial_order",
    "find_direct_conflicts",
    "make_policy",
    "make_tracker",
    "run_concurrent_updates",
]
