"""The read-query log kept by the optimistic scheduler.

Algorithm 4 stores the read queries each chase step actually performed so
that later writes by lower-numbered updates can be checked against them.  The
log additionally stores, per read, the *read dependencies* computed by the
configured dependency tracker (Section 5.1): the lower-numbered updates whose
writes influenced the answer.  Cascading aborts are computed from these
dependencies.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Set

from ..query.base import ReadQuery


@dataclass(frozen=True)
class ReadRecord:
    """One logged read: who read, what they asked, and who influenced the answer."""

    #: Priority number of the reading update.
    reader: int
    #: The query object (re-evaluable against any view).
    query: ReadQuery
    #: Priorities of lower-numbered updates whose writes influenced the answer,
    #: as determined by the dependency tracker in force.
    dependencies: FrozenSet[int]
    #: Monotone sequence number (log order).
    seq: int


class ReadLog:
    """All logged reads of the currently abortable updates."""

    def __init__(self) -> None:
        self._by_reader: Dict[int, List[ReadRecord]] = {}
        self._seq = itertools.count(1)

    def record(
        self, reader: int, query: ReadQuery, dependencies: Set[int]
    ) -> ReadRecord:
        """Log a read performed by update *reader*."""
        entry = ReadRecord(
            reader=reader,
            query=query,
            dependencies=frozenset(dependencies),
            seq=next(self._seq),
        )
        self._by_reader.setdefault(reader, []).append(entry)
        return entry

    def remove_reader(self, reader: int) -> int:
        """Drop every read logged by *reader* (on abort or commit).

        Returns the number of records dropped.
        """
        removed = self._by_reader.pop(reader, [])
        return len(removed)

    def readers(self) -> List[int]:
        """All priorities with at least one logged read."""
        return list(self._by_reader)

    def records_for(self, reader: int) -> List[ReadRecord]:
        """All reads logged by *reader*, in log order."""
        return list(self._by_reader.get(reader, []))

    def records_with_reader_above(self, priority: int) -> Iterator[ReadRecord]:
        """Reads logged by updates numbered strictly above *priority*.

        These are the reads a write by update *priority* could retroactively
        invalidate.
        """
        for reader, records in self._by_reader.items():
            if reader > priority:
                for record in records:
                    yield record

    def dependencies_of(self, reader: int) -> Set[int]:
        """Union of the read dependencies recorded for *reader*."""
        dependencies: Set[int] = set()
        for record in self._by_reader.get(reader, []):
            dependencies.update(record.dependencies)
        return dependencies

    def readers_depending_on(self, priority: int) -> Set[int]:
        """Every reader with a recorded read dependency on update *priority*."""
        dependents: Set[int] = set()
        for reader, records in self._by_reader.items():
            for record in records:
                if priority in record.dependencies:
                    dependents.add(reader)
                    break
        return dependents

    def total_records(self) -> int:
        """Total number of logged reads."""
        return sum(len(records) for records in self._by_reader.values())

    def __len__(self) -> int:
        return self.total_records()
