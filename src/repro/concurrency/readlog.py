"""The read-query log kept by the optimistic scheduler.

Algorithm 4 stores the read queries each chase step actually performed so
that later writes by lower-numbered updates can be checked against them.  The
log additionally stores, per read, the *read dependencies* computed by the
configured dependency tracker (Section 5.1): the lower-numbered updates whose
writes influenced the answer.  Cascading aborts are computed from these
dependencies.

The log is *indexed by what a write could touch*, mirroring the store's
indexed write log: per reader, records are bucketed by the relations their
query reads (violation and more-specific queries) and by the labeled null
they watch (null-occurrence queries).  The conflict checker asks for "the
records of reader *i* a write into relation R touching nulls N could possibly
affect" and skips everything else — every skipped record is guaranteed to
fail the query's ``might_be_affected_by`` pre-filter, so skipping changes the
cost of :func:`~repro.concurrency.conflicts.find_direct_conflicts`, never its
outcome.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from heapq import merge as heap_merge
from typing import Dict, FrozenSet, Iterable, Iterator, List, Set, Tuple as PyTuple

from ..core.terms import LabeledNull
from ..query.base import ReadQuery

#: Query kinds whose affectedness is scoped by the query's read relations.
_RELATION_SCOPED_KINDS = ("violation", "more-specific")


@dataclass(frozen=True)
class ReadRecord:
    """One logged read: who read, what they asked, and who influenced the answer."""

    #: Priority number of the reading update.
    reader: int
    #: The query object (re-evaluable against any view).
    query: ReadQuery
    #: Priorities of lower-numbered updates whose writes influenced the answer,
    #: as determined by the dependency tracker in force.
    dependencies: FrozenSet[int]
    #: Monotone sequence number (log order).
    seq: int


@dataclass
class _ReaderIndex:
    """Bucketed view of one reader's records, each entry paired with its rank.

    The rank is the record's 0-based position in the reader's full log, which
    is what lets the indexed conflict check reconstruct exactly how many
    records a full scan would have walked before (and after) each candidate.
    """

    by_relation: Dict[str, List[PyTuple[int, ReadRecord]]] = field(default_factory=dict)
    by_null: Dict[LabeledNull, List[PyTuple[int, ReadRecord]]] = field(default_factory=dict)
    #: Records whose query kind the index cannot scope; always candidates.
    wildcard: List[PyTuple[int, ReadRecord]] = field(default_factory=list)

    def add(self, rank: int, record: ReadRecord) -> None:
        query = record.query
        kind = query.kind
        if kind in _RELATION_SCOPED_KINDS:
            for relation in query.relations():
                self.by_relation.setdefault(relation, []).append((rank, record))
        elif kind == "null-occurrence":
            self.by_null.setdefault(query.null, []).append((rank, record))
        else:
            self.wildcard.append((rank, record))

    def candidates(
        self, relation: str, nulls: Iterable[LabeledNull]
    ) -> Iterator[PyTuple[int, ReadRecord]]:
        """Rank-ordered records a write into *relation* touching *nulls* could affect.

        A record appears in exactly one bucket class (its query has one kind),
        and a null-occurrence query sits in exactly one null bucket, so the
        merged streams are disjoint and no deduplication is needed.
        """
        streams: List[List[PyTuple[int, ReadRecord]]] = []
        bucket = self.by_relation.get(relation)
        if bucket:
            streams.append(bucket)
        for null in nulls:
            null_bucket = self.by_null.get(null)
            if null_bucket:
                streams.append(null_bucket)
        if self.wildcard:
            streams.append(self.wildcard)
        if not streams:
            return iter(())
        if len(streams) == 1:
            return iter(streams[0])
        return heap_merge(*streams)


class ReadLog:
    """All logged reads of the currently abortable updates."""

    def __init__(self) -> None:
        self._by_reader: Dict[int, List[ReadRecord]] = {}
        self._index_by_reader: Dict[int, _ReaderIndex] = {}
        self._seq = itertools.count(1)

    def record(
        self, reader: int, query: ReadQuery, dependencies: Set[int]
    ) -> ReadRecord:
        """Log a read performed by update *reader*."""
        entry = ReadRecord(
            reader=reader,
            query=query,
            dependencies=frozenset(dependencies),
            seq=next(self._seq),
        )
        records = self._by_reader.setdefault(reader, [])
        rank = len(records)
        records.append(entry)
        self._index_by_reader.setdefault(reader, _ReaderIndex()).add(rank, entry)
        return entry

    def remove_reader(self, reader: int) -> int:
        """Drop every read logged by *reader* (on abort or commit).

        Returns the number of records dropped.
        """
        removed = self._by_reader.pop(reader, [])
        self._index_by_reader.pop(reader, None)
        return len(removed)

    def readers(self) -> List[int]:
        """All priorities with at least one logged read."""
        return list(self._by_reader)

    def readers_above(self, priority: int) -> List[int]:
        """Readers numbered strictly above *priority*, in log insertion order."""
        return [reader for reader in self._by_reader if reader > priority]

    def record_count(self, reader: int) -> int:
        """Number of reads logged by *reader*."""
        return len(self._by_reader.get(reader, ()))

    def records_for(self, reader: int) -> List[ReadRecord]:
        """All reads logged by *reader*, in log order."""
        return list(self._by_reader.get(reader, []))

    def candidate_records(
        self, reader: int, relation: str, nulls: Iterable[LabeledNull]
    ) -> Iterator[PyTuple[int, ReadRecord]]:
        """The ``(rank, record)`` pairs of *reader* a write could affect.

        *relation* is the written relation and *nulls* the labeled nulls of
        the rows the write touched.  Every record of *reader* **not** yielded
        is guaranteed to have ``might_be_affected_by(write) == False``.
        """
        index = self._index_by_reader.get(reader)
        if index is None:
            return iter(())
        return index.candidates(relation, nulls)

    def records_with_reader_above(self, priority: int) -> Iterator[ReadRecord]:
        """Reads logged by updates numbered strictly above *priority*.

        These are the reads a write by update *priority* could retroactively
        invalidate.
        """
        for reader, records in self._by_reader.items():
            if reader > priority:
                for record in records:
                    yield record

    def dependencies_of(self, reader: int) -> Set[int]:
        """Union of the read dependencies recorded for *reader*."""
        dependencies: Set[int] = set()
        for record in self._by_reader.get(reader, []):
            dependencies.update(record.dependencies)
        return dependencies

    def readers_depending_on(self, priority: int) -> Set[int]:
        """Every reader with a recorded read dependency on update *priority*."""
        dependents: Set[int] = set()
        for reader, records in self._by_reader.items():
            for record in records:
                if priority in record.dependencies:
                    dependents.add(reader)
                    break
        return dependents

    def total_records(self) -> int:
        """Total number of logged reads."""
        return sum(len(records) for records in self._by_reader.values())

    def __len__(self) -> int:
        return self.total_records()
