"""Read-dependency trackers: NAIVE, COARSE, PRECISE (Section 5.1) and a hybrid.

When an update issues a read query, the tracker determines which
lower-numbered, still-abortable updates have performed writes that influence
the answer.  Those are the update's *read dependencies*; when one of them is
aborted, the reader must be aborted too (cascading abort).

* :class:`NaiveTracker` records nothing; when an update aborts, every
  still-abortable update with a higher number is requested to abort.
* :class:`CoarseTracker` does not query the database: any abortable update
  that previously wrote *any* tuple to one of the relations the query reads is
  conservatively counted as a dependency.
* :class:`PreciseTracker` checks, for every logged write of an abortable
  lower-numbered update, whether the answer to the query would differ had the
  write not been performed (an exact delta test, which for violation queries
  touches the database).
* :class:`HybridTracker` uses PRECISE for a chosen subset of updates (for
  example updates that have already been aborted once) and COARSE for the
  rest, as sketched at the end of Section 6.

Every tracker accumulates ``cost_units`` — a deterministic proxy for the work
it performs — which the experiment harness uses alongside wall-clock time for
the PRECISE-slowdown panel of Figures 3 and 4.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Iterable, Optional, Set

from ..query.base import ReadQuery
from ..storage.interface import DatabaseView
from ..storage.versioned import VersionedDatabase, VersionedWrite


class DependencyTracker(ABC):
    """Computes read dependencies at read time."""

    #: Machine-readable name used in experiment output ("NAIVE", "COARSE", ...).
    name: str = "abstract"

    #: ``True`` when cascading aborts must target every younger update because
    #: no dependency information is recorded.
    aborts_all_younger: bool = False

    def __init__(self) -> None:
        self.cost_units: int = 0
        self.reads_processed: int = 0

    @abstractmethod
    def dependencies(
        self,
        query: ReadQuery,
        reader: int,
        store: VersionedDatabase,
        view: DatabaseView,
        abortable: Set[int],
    ) -> Set[int]:
        """Priorities of abortable updates (< *reader*) whose writes influence *query*."""

    def reset(self) -> None:
        """Zero the accumulated cost counters (between experiment runs)."""
        self.cost_units = 0
        self.reads_processed = 0

    def _candidate_writes(
        self, reader: int, store: VersionedDatabase, abortable: Set[int]
    ) -> Iterable[VersionedWrite]:
        """Logged writes by abortable updates numbered strictly below *reader*."""
        for entry in store.write_log():
            if entry.priority < reader and entry.priority in abortable:
                yield entry


class NaiveTracker(DependencyTracker):
    """Record nothing; abort every younger update when cascading (strawman)."""

    name = "NAIVE"
    aborts_all_younger = True

    def dependencies(
        self,
        query: ReadQuery,
        reader: int,
        store: VersionedDatabase,
        view: DatabaseView,
        abortable: Set[int],
    ) -> Set[int]:
        self.reads_processed += 1
        # No work and no information: the cascade rule compensates by
        # aborting every younger update.
        return set()


class CoarseTracker(DependencyTracker):
    """Relation-level over-approximation, computed without touching the database."""

    name = "COARSE"

    def dependencies(
        self,
        query: ReadQuery,
        reader: int,
        store: VersionedDatabase,
        view: DatabaseView,
        abortable: Set[int],
    ) -> Set[int]:
        self.reads_processed += 1
        relations = query.relations()
        found: Set[int] = set()
        for entry in self._candidate_writes(reader, store, abortable):
            self.cost_units += 1
            # Correction queries have an exact, database-free test; use it
            # (the paper calls correction queries "the easy case").  Violation
            # queries fall back to relation overlap.
            if query.kind in ("more-specific", "null-occurrence"):
                if query.might_be_affected_by(entry.write):
                    found.add(entry.priority)
            elif entry.write.relation in relations:
                found.add(entry.priority)
        return found


class PreciseTracker(DependencyTracker):
    """Exact per-write delta test; expensive but close to the true dependencies."""

    name = "PRECISE"

    def dependencies(
        self,
        query: ReadQuery,
        reader: int,
        store: VersionedDatabase,
        view: DatabaseView,
        abortable: Set[int],
    ) -> Set[int]:
        self.reads_processed += 1
        found: Set[int] = set()
        for entry in self._candidate_writes(reader, store, abortable):
            if entry.priority in found:
                # One influencing write is enough to establish the dependency.
                self.cost_units += 1
                continue
            self.cost_units += 2 * query.evaluation_cost()
            if query.affected_by(entry.write, view):
                found.add(entry.priority)
        return found


class HybridTracker(DependencyTracker):
    """PRECISE for selected readers, COARSE for the rest (Section 6's hybrid)."""

    name = "HYBRID"

    def __init__(self, use_precise: Optional[Callable[[int], bool]] = None):
        super().__init__()
        self._coarse = CoarseTracker()
        self._precise = PreciseTracker()
        self._use_precise = use_precise if use_precise is not None else (lambda reader: False)
        #: Readers promoted to PRECISE at runtime (e.g. after their first abort).
        self.promoted: Set[int] = set()

    def promote(self, reader: int) -> None:
        """Switch *reader* (and its future restarts' reads) to PRECISE tracking."""
        self.promoted.add(reader)

    def dependencies(
        self,
        query: ReadQuery,
        reader: int,
        store: VersionedDatabase,
        view: DatabaseView,
        abortable: Set[int],
    ) -> Set[int]:
        self.reads_processed += 1
        if reader in self.promoted or self._use_precise(reader):
            result = self._precise.dependencies(query, reader, store, view, abortable)
        else:
            result = self._coarse.dependencies(query, reader, store, view, abortable)
        self.cost_units = self._coarse.cost_units + self._precise.cost_units
        return result

    def reset(self) -> None:
        super().reset()
        self._coarse.reset()
        self._precise.reset()
        self.promoted.clear()


def make_tracker(name: str) -> DependencyTracker:
    """Build a tracker from its experiment name (case-insensitive)."""
    normalized = name.strip().upper()
    if normalized in ("NAIVE", "NAÏVE"):
        return NaiveTracker()
    if normalized == "COARSE":
        return CoarseTracker()
    if normalized == "PRECISE":
        return PreciseTracker()
    if normalized == "HYBRID":
        return HybridTracker()
    raise ValueError("unknown dependency tracker {!r}".format(name))
