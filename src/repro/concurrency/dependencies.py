"""Read-dependency trackers: NAIVE, COARSE, PRECISE (Section 5.1) and a hybrid.

When an update issues a read query, the tracker determines which
lower-numbered, still-abortable updates have performed writes that influence
the answer.  Those are the update's *read dependencies*; when one of them is
aborted, the reader must be aborted too (cascading abort).

* :class:`NaiveTracker` records nothing; when an update aborts, every
  still-abortable update with a higher number is requested to abort.
* :class:`CoarseTracker` does not query the database: any abortable update
  that previously wrote *any* tuple to one of the relations the query reads is
  conservatively counted as a dependency.
* :class:`PreciseTracker` checks, for every logged write of an abortable
  lower-numbered update, whether the answer to the query would differ had the
  write not been performed (an exact delta test, which for violation queries
  touches the database).
* :class:`HybridTracker` uses PRECISE for a chosen subset of updates (for
  example updates that have already been aborted once) and COARSE for the
  rest, as sketched at the end of Section 6.

Every tracker accumulates ``cost_units`` — a deterministic proxy for the work
it performs — which the experiment harness uses alongside wall-clock time for
the PRECISE-slowdown panel of Figures 3 and 4.

The trackers consume the store's *indexed* write log rather than scanning (and
copying) the full log per read: they ask for "writes by abortable update j
touching relations R" (or "touching null x"), which bounds per-read work by
the relevant writes instead of the run length.  ``cost_units`` accounting is
kept bit-identical to the historical full-scan implementation — writes the
scan *would* have examined are charged arithmetically from per-priority write
counts and :meth:`~repro.storage.versioned.VersionedDatabase.log_position` —
so the Figure 3c/4c cost-model panels are unchanged while wall-clock cost
drops from O(log length) to O(relevant writes) per read.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple as PyTuple

from ..query.base import ReadQuery
from ..storage.interface import DatabaseView
from ..storage.versioned import VersionedDatabase, VersionedWrite

#: Sentinel distinguishing "memoized False" from "not memoized".
_UNKNOWN = object()


class DependencyTracker(ABC):
    """Computes read dependencies at read time."""

    #: Machine-readable name used in experiment output ("NAIVE", "COARSE", ...).
    name: str = "abstract"

    #: ``True`` when cascading aborts must target every younger update because
    #: no dependency information is recorded.
    aborts_all_younger: bool = False

    def __init__(self) -> None:
        self.cost_units: int = 0
        self.reads_processed: int = 0

    @abstractmethod
    def dependencies(
        self,
        query: ReadQuery,
        reader: int,
        store: VersionedDatabase,
        view: DatabaseView,
        abortable: Set[int],
    ) -> Set[int]:
        """Priorities of abortable updates (< *reader*) whose writes influence *query*."""

    def reset(self) -> None:
        """Zero the accumulated cost counters (between experiment runs)."""
        self.cost_units = 0
        self.reads_processed = 0

    @staticmethod
    def _writers_below(reader: int, abortable: Set[int]) -> List[int]:
        """Abortable priorities strictly below *reader*, ascending."""
        return sorted(priority for priority in abortable if priority < reader)

    @staticmethod
    def _relevant_writes(
        query: ReadQuery, priority: int, store: VersionedDatabase
    ) -> Sequence[VersionedWrite]:
        """The writes of *priority* that could possibly influence *query*.

        Every write outside the returned sequence is guaranteed to leave the
        query's answer unchanged (``might_be_affected_by`` is false for it):

        * a *more-specific* correction query is only affected by writes into
          its pattern's relation;
        * a *null-occurrence* correction query is only affected by writes
          whose touched rows contain the null (the store's null-bucketed log);
        * a *violation* query is only affected by writes into the relations it
          reads (the base-class relation-overlap pre-filter is exact about
          everything outside them).

        Unknown query kinds fall back to the update's full (still priority-
        indexed) log so custom ``affected_by`` overrides stay correct.
        """
        kind = query.kind
        if kind == "null-occurrence":
            return store.writes_by_touching_null(priority, query.null)
        if kind in ("more-specific", "violation"):
            return store.writes_by_touching_relations(priority, query.relations())
        return store.writes_by(priority)


class NaiveTracker(DependencyTracker):
    """Record nothing; abort every younger update when cascading (strawman)."""

    name = "NAIVE"
    aborts_all_younger = True

    def dependencies(
        self,
        query: ReadQuery,
        reader: int,
        store: VersionedDatabase,
        view: DatabaseView,
        abortable: Set[int],
    ) -> Set[int]:
        self.reads_processed += 1
        # No work and no information: the cascade rule compensates by
        # aborting every younger update.
        return set()


class CoarseTracker(DependencyTracker):
    """Relation-level over-approximation, computed without touching the database."""

    name = "COARSE"

    def dependencies(
        self,
        query: ReadQuery,
        reader: int,
        store: VersionedDatabase,
        view: DatabaseView,
        abortable: Set[int],
    ) -> Set[int]:
        self.reads_processed += 1
        relations = query.relations()
        exact_kind = query.kind in ("more-specific", "null-occurrence")
        found: Set[int] = set()
        for priority in self._writers_below(reader, abortable):
            count = store.write_count_by(priority)
            if count == 0:
                continue
            # A full scan would have examined every one of the update's
            # writes at one unit each; charge them all, then decide from the
            # relevant subset only.
            self.cost_units += count
            if exact_kind:
                # Correction queries have an exact, database-free test; use it
                # (the paper calls correction queries "the easy case").
                for entry in self._relevant_writes(query, priority, store):
                    if query.might_be_affected_by(entry.write):
                        found.add(priority)
                        break
            else:
                # Violation queries fall back to relation overlap: any write
                # bucket under one of the read relations establishes the
                # dependency.
                for name in relations:
                    if store.writes_by_touching_relation(priority, name):
                        found.add(priority)
                        break
        return found


class PreciseTracker(DependencyTracker):
    """Exact per-write delta test; expensive but close to the true dependencies."""

    name = "PRECISE"

    #: Memo entries are pruned wholesale past this size.  The per-relation
    #: invalidation never deletes entries eagerly (stale ones are simply
    #: re-proved on next lookup), so an explicit bound keeps a long-running
    #: service's memory flat; the limit is far above the working set of one
    #: scheduler pump.
    _MEMO_LIMIT = 1 << 16

    def __init__(self) -> None:
        super().__init__()
        # Delta-verdict memo: (reader, query, write seq) -> (verdict, token).
        # Within one chase step the same query is re-recorded several times
        # (queue refresh, request building), so the same (query, write) delta
        # tests recur; and across steps most writes touch relations the query
        # does not read.  The validity token is therefore *per relation*: the
        # tuple of the store's relation stamps over the query's read set at
        # memo time.  A verdict survives any store mutation that leaves those
        # relations untouched — instead of the historical behaviour of
        # clearing the whole memo on every mutation.  Correction queries
        # (``more-specific`` / ``null-occurrence``) have database-free exact
        # verdicts; their token is ``None`` and they never expire.
        self._memo: Dict[PyTuple[int, ReadQuery, int], PyTuple[bool, Optional[PyTuple[int, ...]]]] = {}
        # The epoch holds a strong reference to the store (not its id(),
        # which CPython reuses after garbage collection).
        self._memo_store: Optional[VersionedDatabase] = None

    def reset(self) -> None:
        super().reset()
        self._memo.clear()
        self._memo_store = None

    @staticmethod
    def _memo_token(
        query: ReadQuery, store: VersionedDatabase
    ) -> Optional[PyTuple[int, ...]]:
        """The validity token of a verdict for *query* on *store* right now."""
        if query.kind in ("more-specific", "null-occurrence"):
            # Database-free exact verdict: depends on the write alone.
            return None
        return tuple(
            store.relation_stamp(relation) for relation in sorted(query.relations())
        )

    def _delta_verdict(
        self,
        query: ReadQuery,
        reader: int,
        entry: VersionedWrite,
        store: VersionedDatabase,
        view: DatabaseView,
        token: Optional[PyTuple[int, ...]],
    ) -> bool:
        key = (reader, query, entry.seq)
        memoized = self._memo.get(key, _UNKNOWN)
        if memoized is not _UNKNOWN:
            verdict, stored_token = memoized
            if stored_token is None or stored_token == token:
                return verdict
        verdict = query.affected_by(entry.write, view)
        if len(self._memo) >= self._MEMO_LIMIT:
            self._memo.clear()
        self._memo[key] = (verdict, token)
        return verdict

    def dependencies(
        self,
        query: ReadQuery,
        reader: int,
        store: VersionedDatabase,
        view: DatabaseView,
        abortable: Set[int],
    ) -> Set[int]:
        self.reads_processed += 1
        if store is not self._memo_store:
            self._memo_store = store
            self._memo.clear()
        writers = [
            priority
            for priority in self._writers_below(reader, abortable)
            if store.write_count_by(priority)
        ]
        found: Set[int] = set()
        if not writers:
            # No abortable writes below the reader: nothing to delta-test and
            # nothing to charge — skip the memo-token construction entirely
            # (the common case whenever admission keeps concurrency low).
            return found
        token = self._memo_token(query, store)
        unit_cost = 2 * query.evaluation_cost()
        for priority in writers:
            count = store.write_count_by(priority)
            # Only the relevant writes can test positive; everything else the
            # historical scan examined is charged arithmetically below.
            hit_position: Optional[int] = None
            for entry in self._relevant_writes(query, priority, store):
                if self._delta_verdict(query, reader, entry, store, view, token):
                    hit_position = store.log_position(priority, entry.seq)
                    break
            if hit_position is None:
                # The full scan would have delta-tested all ``count`` writes.
                self.cost_units += unit_cost * count
            else:
                # The full scan delta-tests up to and including the first
                # influencing write, then charges one unit per remaining
                # write of the now-established dependency.
                found.add(priority)
                self.cost_units += unit_cost * hit_position + (count - hit_position)
        return found


class HybridTracker(DependencyTracker):
    """PRECISE for selected readers, COARSE for the rest (Section 6's hybrid)."""

    name = "HYBRID"

    def __init__(self, use_precise: Optional[Callable[[int], bool]] = None):
        super().__init__()
        self._coarse = CoarseTracker()
        self._precise = PreciseTracker()
        self._use_precise = use_precise if use_precise is not None else (lambda reader: False)
        #: Readers promoted to PRECISE at runtime (e.g. after their first abort).
        self.promoted: Set[int] = set()

    def promote(self, reader: int) -> None:
        """Switch *reader* (and its future restarts' reads) to PRECISE tracking."""
        self.promoted.add(reader)

    def dependencies(
        self,
        query: ReadQuery,
        reader: int,
        store: VersionedDatabase,
        view: DatabaseView,
        abortable: Set[int],
    ) -> Set[int]:
        if reader in self.promoted or self._use_precise(reader):
            result = self._precise.dependencies(query, reader, store, view, abortable)
        else:
            result = self._coarse.dependencies(query, reader, store, view, abortable)
        # Both counters are folded from the sub-trackers (each delegated read
        # increments exactly one of them), so totals survive sub-tracker
        # resets staying consistent with the aggregated cost.
        self.cost_units = self._coarse.cost_units + self._precise.cost_units
        self.reads_processed = (
            self._coarse.reads_processed + self._precise.reads_processed
        )
        return result

    def reset(self) -> None:
        super().reset()
        self._coarse.reset()
        self._precise.reset()
        self.promoted.clear()


def make_tracker(name: str) -> DependencyTracker:
    """Build a tracker from its experiment name (case-insensitive)."""
    normalized = name.strip().upper()
    if normalized in ("NAIVE", "NAÏVE"):
        return NaiveTracker()
    if normalized == "COARSE":
        return CoarseTracker()
    if normalized == "PRECISE":
        return PreciseTracker()
    if normalized == "HYBRID":
        return HybridTracker()
    raise ValueError("unknown dependency tracker {!r}".format(name))
