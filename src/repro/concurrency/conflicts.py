"""Direct-conflict detection: checking writes against logged read queries.

This is the core of Algorithm 4: after a chase step's writes have been
performed, each write is checked against every stored read query of a
higher-numbered (lower-priority) update.  When a write retroactively changes
the answer to such a query, the reader is in *direct conflict* and must abort.

The check is identical for all cascading-abort algorithms — NAIVE, COARSE and
PRECISE differ only in how the *cascade* from an abort is determined — so its
cost does not skew the comparison between them.

:func:`find_direct_conflicts` consumes the read log's *indexed* buckets (by
read relation and by watched null) instead of scanning every read of every
higher-numbered update per write.  Records the index skips are exactly those
whose ``might_be_affected_by`` pre-filter is false, so they are charged
arithmetically — one ``pairs_checked`` and one ``cost_units`` each, what the
historical full scan spent on them — and the report stays bit-identical to
:func:`find_direct_conflicts_scan` while the wall-clock work drops from
O(logged reads) to O(relevant reads) per write.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence, Set

from ..core.terms import LabeledNull
from ..storage.versioned import VersionedDatabase, VersionedWrite
from .readlog import ReadLog


@dataclass
class ConflictReport:
    """The outcome of checking one batch of writes against the read log."""

    #: Readers found to be in direct conflict with at least one of the writes.
    direct_conflicts: Set[int] = field(default_factory=set)
    #: Number of (write, read) pairs examined.
    pairs_checked: int = 0
    #: Number of pairs that needed a database-backed delta evaluation.
    delta_evaluations: int = 0
    #: Work units spent (for the cost model).
    cost_units: int = 0


def find_direct_conflicts(
    writes: Sequence[VersionedWrite],
    read_log: ReadLog,
    store: VersionedDatabase,
    abortable: Set[int],
) -> ConflictReport:
    """Check *writes* against every logged read of higher-numbered abortable updates.

    For each logged write ``w`` performed by update ``j`` and each stored read
    query ``q`` of an abortable update ``i > j``: if ``w`` changes the result
    of ``q`` (evaluated on ``i``'s own view, where ``w`` is visible), then
    ``i`` is in direct conflict and is reported for abortion.

    Only the index-selected candidate records are actually walked; for the
    rest the pre-filter verdict (false) is known from the bucket structure,
    so their pairs/cost contributions are added arithmetically.
    """
    report = ConflictReport()
    if not writes:
        return report
    views: Dict[int, object] = {}
    for logged in writes:
        writer = logged.priority
        write = logged.write
        touched_nulls: Set[LabeledNull] = set()
        for row in write.rows_touched():
            touched_nulls.update(row.null_set())
        for reader in read_log.readers_above(writer):
            if reader not in abortable or reader == writer:
                continue
            if reader in report.direct_conflicts:
                # Already condemned by an earlier write in this batch; the
                # full scan skips a condemned reader's records without
                # counting them, so there is nothing to charge.
                continue
            total = read_log.record_count(reader)
            accounted = 0  # records (by rank) already charged for this pair
            condemned = False
            for rank, record in read_log.candidate_records(
                reader, write.relation, touched_nulls
            ):
                # The records skipped since the last candidate all fail the
                # pre-filter: one pair and one cost unit each, just as the
                # full scan would have spent.
                gap = rank - accounted
                report.pairs_checked += gap
                report.cost_units += gap
                accounted = rank
                report.pairs_checked += 1
                accounted += 1
                query = record.query
                if not query.might_be_affected_by(write):
                    report.cost_units += 1
                    continue
                if reader not in views:
                    views[reader] = store.view_for(reader)
                view = views[reader]
                report.delta_evaluations += 1
                report.cost_units += 2 * query.evaluation_cost()
                if query.affected_by(write, view):
                    report.direct_conflicts.add(reader)
                    condemned = True
                    break
            if not condemned:
                # Trailing records past the last candidate: all pre-filter
                # misses, charged like the scan would have.
                remaining = total - accounted
                report.pairs_checked += remaining
                report.cost_units += remaining
    return report


def find_direct_conflicts_scan(
    writes: Sequence[VersionedWrite],
    read_log: ReadLog,
    store: VersionedDatabase,
    abortable: Set[int],
) -> ConflictReport:
    """The historical full-scan conflict check, kept as a differential oracle.

    Semantically (and counter-for-counter) identical to
    :func:`find_direct_conflicts`; tests run both over the same inputs to pin
    the indexed implementation to the original.
    """
    report = ConflictReport()
    if not writes:
        return report
    views: Dict[int, object] = {}
    for logged in writes:
        writer = logged.priority
        for record in list(read_log.records_with_reader_above(writer)):
            reader = record.reader
            if reader not in abortable or reader == writer:
                continue
            if reader in report.direct_conflicts:
                # Already condemned by an earlier write in this batch.
                continue
            report.pairs_checked += 1
            query = record.query
            if not query.might_be_affected_by(logged.write):
                report.cost_units += 1
                continue
            if reader not in views:
                views[reader] = store.view_for(reader)
            view = views[reader]
            report.delta_evaluations += 1
            report.cost_units += 2 * query.evaluation_cost()
            if query.affected_by(logged.write, view):
                report.direct_conflicts.add(reader)
    return report
