"""Direct-conflict detection: checking writes against logged read queries.

This is the core of Algorithm 4: after a chase step's writes have been
performed, each write is checked against every stored read query of a
higher-numbered (lower-priority) update.  When a write retroactively changes
the answer to such a query, the reader is in *direct conflict* and must abort.

The check is identical for all cascading-abort algorithms — NAIVE, COARSE and
PRECISE differ only in how the *cascade* from an abort is determined — so its
cost does not skew the comparison between them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set

from ..storage.versioned import VersionedDatabase, VersionedWrite
from .readlog import ReadLog, ReadRecord


@dataclass
class ConflictReport:
    """The outcome of checking one batch of writes against the read log."""

    #: Readers found to be in direct conflict with at least one of the writes.
    direct_conflicts: Set[int] = field(default_factory=set)
    #: Number of (write, read) pairs examined.
    pairs_checked: int = 0
    #: Number of pairs that needed a database-backed delta evaluation.
    delta_evaluations: int = 0
    #: Work units spent (for the cost model).
    cost_units: int = 0


def find_direct_conflicts(
    writes: Sequence[VersionedWrite],
    read_log: ReadLog,
    store: VersionedDatabase,
    abortable: Set[int],
) -> ConflictReport:
    """Check *writes* against every logged read of higher-numbered abortable updates.

    For each logged write ``w`` performed by update ``j`` and each stored read
    query ``q`` of an abortable update ``i > j``: if ``w`` changes the result
    of ``q`` (evaluated on ``i``'s own view, where ``w`` is visible), then
    ``i`` is in direct conflict and is reported for abortion.
    """
    report = ConflictReport()
    if not writes:
        return report
    views: Dict[int, object] = {}
    for logged in writes:
        writer = logged.priority
        for record in list(read_log.records_with_reader_above(writer)):
            reader = record.reader
            if reader not in abortable or reader == writer:
                continue
            if reader in report.direct_conflicts:
                # Already condemned by an earlier write in this batch.
                continue
            report.pairs_checked += 1
            query = record.query
            if not query.might_be_affected_by(logged.write):
                report.cost_units += 1
                continue
            if reader not in views:
                views[reader] = store.view_for(reader)
            view = views[reader]
            report.delta_evaluations += 1
            report.cost_units += 2 * query.evaluation_cost()
            if query.affected_by(logged.write, view):
                report.direct_conflicts.add(reader)
    return report
