"""Abort bookkeeping: cascading-abort computation and run statistics.

The scheduler consolidates abort information per chase step (the paper notes
that "aborts are not performed as soon as they are made necessary by a write,
but only once control is returned to the scheduler").  Two quantities are
reported by the experiments:

* the total number of aborts actually performed, and
* the number of *cascading abort requests* — requests to abort an update that
  is **not** in direct conflict with a just-performed write.  An update may be
  requested several times during one consolidation; every request counts,
  which is why this metric separates COARSE from PRECISE so sharply.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple as PyTuple

from .dependencies import DependencyTracker
from .readlog import ReadLog


@dataclass
class AbortDecision:
    """The consolidated outcome of one conflict-processing pass."""

    #: Updates to abort because a write directly invalidated one of their reads.
    direct: Set[int] = field(default_factory=set)
    #: Updates to abort because they (transitively) read from an aborted update.
    cascading: Set[int] = field(default_factory=set)
    #: Number of cascading abort requests issued while consolidating.
    cascading_requests: int = 0

    def all_victims(self) -> Set[int]:
        """Every update that must be aborted."""
        return self.direct | self.cascading


def consolidate_aborts(
    direct_conflicts: Set[int],
    read_log: ReadLog,
    tracker: DependencyTracker,
    abortable: Set[int],
) -> AbortDecision:
    """Compute the full abort set implied by *direct_conflicts*.

    With the NAIVE tracker every abortable update numbered above the smallest
    direct victim is requested; otherwise the recorded read dependencies are
    chased transitively: whenever update ``d`` is marked for abortion, every
    abortable update with a read dependency on ``d`` is requested as well.
    """
    decision = AbortDecision(direct=set(direct_conflicts))
    if not direct_conflicts:
        return decision
    if tracker.aborts_all_younger:
        threshold = min(direct_conflicts)
        for candidate in sorted(abortable):
            if candidate > threshold and candidate not in direct_conflicts:
                decision.cascading_requests += 1
                decision.cascading.add(candidate)
        return decision
    worklist: List[int] = sorted(direct_conflicts)
    condemned: Set[int] = set(direct_conflicts)
    while worklist:
        victim = worklist.pop(0)
        for dependent in sorted(read_log.readers_depending_on(victim)):
            if dependent not in abortable or dependent == victim:
                continue
            # Every request is counted, even for updates already condemned:
            # the paper's metric counts requests, not distinct victims.
            if dependent not in direct_conflicts:
                decision.cascading_requests += 1
            if dependent not in condemned:
                condemned.add(dependent)
                decision.cascading.add(dependent)
                worklist.append(dependent)
    return decision


@dataclass
class RunStatistics:
    """Everything a concurrent run measures (feeds Figures 3 and 4)."""

    #: Name of the dependency tracker used (NAIVE / COARSE / PRECISE / HYBRID).
    algorithm: str = ""
    #: Number of updates originally submitted.
    updates_submitted: int = 0
    #: Number of update executions that ran (submitted plus restarts).
    updates_executed: int = 0
    #: Number of updates that reached termination (including restarted ones).
    updates_terminated: int = 0
    #: Total aborts performed.
    aborts: int = 0
    #: Aborts whose victim was in direct conflict with a just-performed write.
    direct_aborts: int = 0
    #: Aborts performed purely because of cascading.
    cascading_aborts: int = 0
    #: Cascading abort requests issued (the paper's second panel).
    cascading_abort_requests: int = 0
    #: Chase steps executed.
    steps: int = 0
    #: Tuple-level writes applied.
    writes: int = 0
    #: Read queries logged.
    read_queries: int = 0
    #: Frontier operations consumed (simulated human interventions).
    frontier_operations: int = 0
    #: Updates parked in ``WAITING_FRONTIER`` by an asynchronous oracle.
    frontier_parks: int = 0
    #: Parked updates resumed with a posted frontier answer.
    frontier_resumes: int = 0
    #: Work units spent by the dependency tracker.
    tracker_cost_units: int = 0
    #: Work units spent by direct-conflict checking (same for all algorithms).
    conflict_cost_units: int = 0
    #: Work units spent evaluating chase read queries.
    chase_cost_units: int = 0
    #: Wall-clock seconds for the whole run.
    wall_seconds: float = 0.0
    #: Commit batches performed (group-commit path: one watermark advance,
    #: one listener round and one compaction sweep per batch).
    group_commits: int = 0
    #: Updates committed across all batches (``/ group_commits`` = mean batch).
    group_commit_members: int = 0
    #: Batches that failed group validation and fell back to singleton
    #: commits (eager conflict processing makes this a should-never counter).
    group_commit_fallbacks: int = 0
    #: Work units spent validating commit batches.  Kept **out** of
    #: ``total_cost_units``: group validation is a batching artifact, and the
    #: Figure 3/4 cost panels must stay bit-identical between the batched and
    #: singleton commit paths.
    group_validation_cost_units: int = 0
    #: Batch validations skipped by the proof-carrying fast path (every
    #: member's writes were eagerly conflict-checked and no direct conflict
    #: has occurred anywhere since, so the read-log re-check is provably
    #: redundant).
    group_validation_skips: int = 0

    @property
    def total_cost_units(self) -> int:
        """Deterministic proxy for total execution work."""
        return self.tracker_cost_units + self.conflict_cost_units + self.chase_cost_units

    @property
    def per_update_seconds(self) -> float:
        """Wall-clock seconds per update execution (the paper's normalization)."""
        executed = max(1, self.updates_executed)
        return self.wall_seconds / executed

    @property
    def per_update_cost_units(self) -> float:
        """Cost units per update execution (deterministic slowdown proxy)."""
        executed = max(1, self.updates_executed)
        return self.total_cost_units / executed

    def as_dict(self) -> Dict[str, float]:
        """Flat dictionary (used by the experiment harness and benchmarks)."""
        return {
            "algorithm": self.algorithm,
            "updates_submitted": self.updates_submitted,
            "updates_executed": self.updates_executed,
            "updates_terminated": self.updates_terminated,
            "aborts": self.aborts,
            "direct_aborts": self.direct_aborts,
            "cascading_aborts": self.cascading_aborts,
            "cascading_abort_requests": self.cascading_abort_requests,
            "steps": self.steps,
            "writes": self.writes,
            "read_queries": self.read_queries,
            "frontier_operations": self.frontier_operations,
            "frontier_parks": self.frontier_parks,
            "frontier_resumes": self.frontier_resumes,
            "tracker_cost_units": self.tracker_cost_units,
            "conflict_cost_units": self.conflict_cost_units,
            "chase_cost_units": self.chase_cost_units,
            "total_cost_units": self.total_cost_units,
            "group_commits": self.group_commits,
            "group_commit_members": self.group_commit_members,
            "group_commit_fallbacks": self.group_commit_fallbacks,
            "group_validation_cost_units": self.group_validation_cost_units,
            "group_validation_skips": self.group_validation_skips,
            "wall_seconds": self.wall_seconds,
            "per_update_seconds": self.per_update_seconds,
            "per_update_cost_units": self.per_update_cost_units,
        }
