"""Final-state serializability checking utilities (Definition 3.4).

The paper defines serializability of a schedule prefix through the final
states of its terminating extensions.  Checking the definition exactly is
impractical (it quantifies over all futures); what this module provides is
the *final-state comparison* machinery used by tests and examples:

* :func:`databases_equal` and :func:`databases_isomorphic` — compare two
  repository states, the latter up to a renaming of labeled nulls (two chases
  that invent different fresh null names are still "the same" outcome);
* :class:`SerialExecutor` — run a batch of updates serially, in a given
  order, with a chosen oracle, producing the reference final state;
* :func:`final_state_matches_some_serial_order` — decide whether a concurrent
  run's final state coincides (up to null renaming) with the final state of
  *some* serial order of the same updates.

Together with the optimistic scheduler these are enough to demonstrate the
paper's Example 3.1: the unsafe interleaving produces a state no serial order
can produce, and the optimistic scheduler prevents it by aborting the
offending update.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple as PyTuple

from ..core.oracle import AlwaysUnifyOracle, FrontierOracle
from ..core.chase import ChaseConfig, ChaseEngine
from ..core.terms import LabeledNull
from ..core.tgd import Tgd
from ..core.tuples import Tuple
from ..core.update import UserOperation
from ..storage.interface import DatabaseView
from ..storage.memory import FrozenDatabase, MemoryDatabase


def databases_equal(first: DatabaseView, second: DatabaseView) -> bool:
    """Exact equality of the two views' tuple sets, relation by relation."""
    relations = set(first.relations()) | set(second.relations())
    for relation in relations:
        if frozenset(first.tuples(relation)) != frozenset(second.tuples(relation)):
            return False
    return True


def _null_signature(view: DatabaseView) -> Dict[str, int]:
    """Per-relation tuple counts — a cheap necessary condition for isomorphism."""
    return {relation: view.count(relation) for relation in view.relations()}


def databases_isomorphic(first: DatabaseView, second: DatabaseView) -> bool:
    """Equality up to a bijective renaming of labeled nulls.

    Two runs that make the same decisions but invent different fresh null
    names produce isomorphic databases; treating those as equal is the right
    notion of "same final state" for serializability comparisons.

    The search is a straightforward backtracking construction of the renaming,
    adequate for the repository sizes used in tests and examples.
    """
    if _null_signature(first) != _null_signature(second):
        return False

    relations = sorted(set(first.relations()) | set(second.relations()))
    first_rows: List[Tuple] = []
    second_rows_by_relation: Dict[str, List[Tuple]] = {}
    for relation in relations:
        first_rows.extend(first.tuples(relation))
        second_rows_by_relation[relation] = list(second.tuples(relation))

    def match_rows(
        index: int,
        mapping: Dict[LabeledNull, LabeledNull],
        used: Dict[str, List[Tuple]],
    ) -> bool:
        if index == len(first_rows):
            return True
        row = first_rows[index]
        for candidate in used[row.relation]:
            extended = _try_extend(row, candidate, mapping)
            if extended is None:
                continue
            remaining = dict(used)
            remaining[row.relation] = [
                other for other in used[row.relation] if other is not candidate
            ]
            if match_rows(index + 1, extended, remaining):
                return True
        return False

    def _try_extend(
        row: Tuple, candidate: Tuple, mapping: Dict[LabeledNull, LabeledNull]
    ) -> Optional[Dict[LabeledNull, LabeledNull]]:
        if row.arity != candidate.arity:
            return None
        extended = dict(mapping)
        reverse = {value: key for key, value in extended.items()}
        for mine, theirs in zip(row.values, candidate.values):
            mine_is_null = isinstance(mine, LabeledNull)
            theirs_is_null = isinstance(theirs, LabeledNull)
            if mine_is_null != theirs_is_null:
                return None
            if not mine_is_null:
                if mine != theirs:
                    return None
                continue
            bound = extended.get(mine)
            if bound is None:
                if theirs in reverse and reverse[theirs] != mine:
                    return None
                extended[mine] = theirs
                reverse[theirs] = mine
            elif bound != theirs:
                return None
        return extended

    return match_rows(0, {}, dict(second_rows_by_relation))


class SerialExecutor:
    """Run updates one after another on a private copy of the initial database."""

    def __init__(
        self,
        initial: DatabaseView,
        mappings: Sequence[Tgd],
        oracle_factory: Optional[Callable[[], FrontierOracle]] = None,
        max_steps: int = 10_000,
    ):
        self._initial = initial
        self._mappings = list(mappings)
        self._oracle_factory = (
            oracle_factory if oracle_factory is not None else AlwaysUnifyOracle
        )
        self._max_steps = max_steps

    def run(self, operations: Sequence[UserOperation]) -> FrozenDatabase:
        """Execute *operations* serially, in order; return the final state."""
        database = MemoryDatabase(self._initial.schema)
        database.load_from(self._initial)
        engine = ChaseEngine(
            database,
            self._mappings,
            oracle=self._oracle_factory(),
            config=ChaseConfig(max_steps=self._max_steps, track_provenance=False),
        )
        engine.run_all(operations)
        return database.snapshot()


def final_state_matches_some_serial_order(
    initial: DatabaseView,
    mappings: Sequence[Tgd],
    operations: Sequence[UserOperation],
    observed_final: DatabaseView,
    oracle_factory: Optional[Callable[[], FrontierOracle]] = None,
    max_orders: int = 720,
) -> bool:
    """Is *observed_final* isomorphic to the outcome of some serial order?

    The check enumerates serial orders (up to ``max_orders`` permutations) and
    replays each with the given oracle factory; it is meant for the small
    hand-constructed scenarios in the tests and examples, not for 500-update
    workloads.  Because serial replays re-make oracle decisions, use a
    deterministic oracle for meaningful comparisons.
    """
    executor = SerialExecutor(initial, mappings, oracle_factory=oracle_factory)
    for count, order in enumerate(itertools.permutations(operations)):
        if count >= max_orders:
            break
        final = executor.run(list(order))
        if databases_isomorphic(final, observed_final):
            return True
    return False
