"""The optimistic scheduler (Algorithm 4) with pluggable cascading-abort policy.

Updates are admitted with increasing priority numbers and interleaved at chase
step granularity according to a :class:`~repro.concurrency.policies.SchedulingPolicy`.
After every step the scheduler checks the step's writes against the stored
read queries of higher-numbered updates; readers whose answers changed are
aborted together with (depending on the dependency tracker) the updates that
read from them.  Aborted updates are rolled back in the multiversion store and
restarted under a fresh, higher priority number.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Set

from ..core.oracle import FrontierOracle, RandomOracle
from ..core.terms import NullFactory
from ..core.tgd import Tgd
from ..core.update import UserOperation
from ..query.base import ReadQuery
from ..storage.interface import DatabaseView
from ..storage.memory import FrozenDatabase
from ..storage.versioned import VersionedDatabase
from .aborts import RunStatistics, consolidate_aborts
from .conflicts import find_direct_conflicts
from .dependencies import DependencyTracker, HybridTracker
from .execution import StepResult, UpdateExecution
from .policies import RoundRobinStepPolicy, SchedulingPolicy
from .readlog import ReadLog


class SchedulerStalled(RuntimeError):
    """Raised when the scheduler exceeds its global step budget."""


class OptimisticScheduler:
    """Runs a batch of updates concurrently under optimistic concurrency control."""

    def __init__(
        self,
        store: VersionedDatabase,
        mappings: Sequence[Tgd],
        tracker: DependencyTracker,
        oracle: Optional[FrontierOracle] = None,
        policy: Optional[SchedulingPolicy] = None,
        null_factory: Optional[NullFactory] = None,
        max_total_steps: int = 1_000_000,
        promote_restarts_to_precise: bool = False,
    ):
        self._store = store
        self._mappings = list(mappings)
        self._tracker = tracker
        self._oracle = oracle if oracle is not None else RandomOracle(seed=0)
        self._policy = policy if policy is not None else RoundRobinStepPolicy()
        if null_factory is None:
            null_factory = NullFactory.avoiding_view(store.latest_view())
        self._null_factory = null_factory
        self._max_total_steps = max_total_steps
        self._promote_restarts = promote_restarts_to_precise

        self._executions: Dict[int, UpdateExecution] = {}
        self._committed: Set[int] = set()
        self._read_log = ReadLog()
        self._next_priority = 1
        self.statistics = RunStatistics(algorithm=tracker.name)

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, operation: UserOperation) -> int:
        """Admit one update; returns its priority number."""
        priority = self._next_priority
        self._next_priority += 1
        execution = UpdateExecution(
            priority=priority,
            operation=operation,
            store=self._store,
            mappings=self._mappings,
            oracle=self._oracle,
            null_factory=self._null_factory,
        )
        self._executions[priority] = execution
        self.statistics.updates_submitted += 1
        self.statistics.updates_executed += 1
        return priority

    def submit_all(self, operations: Sequence[UserOperation]) -> List[int]:
        """Admit several updates in order; returns their priority numbers."""
        return [self.submit(operation) for operation in operations]

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self) -> RunStatistics:
        """Run every admitted update to termination; returns the statistics."""
        started = time.perf_counter()
        total_steps = 0
        self._policy.reset()
        while True:
            ready = [
                execution
                for execution in self._executions.values()
                if execution.is_active
            ]
            if not ready:
                break
            execution = self._policy.next_update(ready)
            while True:
                if total_steps >= self._max_total_steps:
                    raise SchedulerStalled(
                        "scheduler exceeded {} total steps".format(self._max_total_steps)
                    )
                total_steps += 1
                result = self._run_one_step(execution)
                if not self._policy.keep_running(execution, result):
                    break
            self._advance_commit_watermark()
        self.statistics.wall_seconds = time.perf_counter() - started
        self.statistics.tracker_cost_units = self._tracker.cost_units
        self.statistics.updates_terminated = sum(
            1 for execution in self._executions.values() if execution.is_terminated
        )
        return self.statistics

    def _run_one_step(self, execution: UpdateExecution) -> StepResult:
        reader = execution.priority

        def recorder(query: ReadQuery, answer: object) -> None:
            dependencies = self._tracker.dependencies(
                query,
                reader,
                self._store,
                self._store.view_for(reader),
                self._abortable(),
            )
            self._read_log.record(reader, query, dependencies)
            self.statistics.read_queries += 1

        result = execution.run_step(recorder)
        self.statistics.steps += 1
        self.statistics.writes += len(result.applied)
        self.statistics.chase_cost_units += result.cost_units
        if result.frontier_consumed:
            self.statistics.frontier_operations += 1
        if result.applied:
            self._process_conflicts(result)
        return result

    def _process_conflicts(self, result: StepResult) -> None:
        abortable = self._abortable()
        report = find_direct_conflicts(
            result.applied, self._read_log, self._store, abortable
        )
        self.statistics.conflict_cost_units += report.cost_units
        if not report.direct_conflicts:
            return
        decision = consolidate_aborts(
            report.direct_conflicts, self._read_log, self._tracker, abortable
        )
        self.statistics.cascading_abort_requests += decision.cascading_requests
        for victim in sorted(decision.all_victims(), reverse=True):
            self._abort(victim, direct=victim in decision.direct)

    def _abort(self, victim: int, direct: bool) -> None:
        execution = self._executions.get(victim)
        if execution is None or victim in self._committed:
            return
        self._store.rollback(victim)
        self._read_log.remove_reader(victim)
        execution.abort()
        del self._executions[victim]
        self.statistics.aborts += 1
        if direct:
            self.statistics.direct_aborts += 1
        else:
            self.statistics.cascading_aborts += 1
        restart_priority = self._next_priority
        self._next_priority += 1
        restart = execution.restart_as(restart_priority)
        self._executions[restart_priority] = restart
        self.statistics.updates_executed += 1
        if self._promote_restarts and isinstance(self._tracker, HybridTracker):
            self._tracker.promote(restart_priority)

    def _abortable(self) -> Set[int]:
        return {
            priority
            for priority in self._executions
            if priority not in self._committed
        }

    def _advance_commit_watermark(self) -> None:
        """Commit terminated updates from the lowest priority upwards.

        An update can no longer be aborted once it has terminated and every
        lower-numbered update has committed: no future write can come from a
        lower-numbered update.  Committed updates' read logs are dropped.
        """
        for priority in sorted(self._executions):
            if priority in self._committed:
                continue
            execution = self._executions[priority]
            if not execution.is_terminated:
                break
            self._committed.add(priority)
            self._read_log.remove_reader(priority)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def final_database(self) -> FrozenDatabase:
        """The repository contents after the run (all versions visible)."""
        return self._store.materialize()

    def executions(self) -> List[UpdateExecution]:
        """Every execution the scheduler currently tracks (terminated included)."""
        return [self._executions[priority] for priority in sorted(self._executions)]

    @property
    def read_log(self) -> ReadLog:
        """The scheduler's read log (useful for inspection and tests)."""
        return self._read_log

    @property
    def store(self) -> VersionedDatabase:
        """The multiversion store the scheduler operates on."""
        return self._store


def run_concurrent_updates(
    initial: DatabaseView,
    mappings: Sequence[Tgd],
    operations: Sequence[UserOperation],
    tracker: DependencyTracker,
    oracle: Optional[FrontierOracle] = None,
    policy: Optional[SchedulingPolicy] = None,
    max_total_steps: int = 1_000_000,
) -> OptimisticScheduler:
    """Convenience wrapper: load *initial*, submit *operations*, run to completion.

    Returns the scheduler so callers can inspect statistics, the read log and
    the final database.
    """
    store = VersionedDatabase(initial.schema)
    store.load_initial(initial)
    scheduler = OptimisticScheduler(
        store=store,
        mappings=mappings,
        tracker=tracker,
        oracle=oracle,
        policy=policy,
        max_total_steps=max_total_steps,
    )
    scheduler.submit_all(operations)
    scheduler.run()
    return scheduler
