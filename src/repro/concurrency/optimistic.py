"""The optimistic scheduler (Algorithm 4) with pluggable cascading-abort policy.

Updates are admitted with increasing priority numbers and interleaved at chase
step granularity according to a :class:`~repro.concurrency.policies.SchedulingPolicy`.
After every step the scheduler checks the step's writes against the stored
read queries of higher-numbered updates; readers whose answers changed are
aborted together with (depending on the dependency tracker) the updates that
read from them.  Aborted updates are rolled back in the multiversion store and
restarted under a fresh, higher priority number.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple as PyTuple

from ..core.frontier import FrontierOperation
from ..core.oracle import FrontierOracle, RandomOracle
from ..core.terms import NullFactory
from ..core.tgd import Tgd
from ..core.update import UserOperation
from ..obs.trace import SpanContext, default_tracer
from ..query.base import ReadQuery
from ..storage.interface import DatabaseView
from ..storage.memory import FrozenDatabase
from ..storage.versioned import VersionedDatabase, VersionedWrite
from .aborts import RunStatistics, consolidate_aborts
from .conflicts import find_direct_conflicts
from .dependencies import DependencyTracker, HybridTracker
from .execution import StepResult, UpdateExecution
from .policies import RoundRobinStepPolicy, SchedulingPolicy
from .readlog import ReadLog


class SchedulerStalled(RuntimeError):
    """Raised when the scheduler exceeds its global step budget."""


class OptimisticScheduler:
    """Runs a batch of updates concurrently under optimistic concurrency control."""

    def __init__(
        self,
        store: VersionedDatabase,
        mappings: Sequence[Tgd],
        tracker: DependencyTracker,
        oracle: Optional[FrontierOracle] = None,
        policy: Optional[SchedulingPolicy] = None,
        null_factory: Optional[NullFactory] = None,
        max_total_steps: int = 1_000_000,
        promote_restarts_to_precise: bool = False,
        prune_committed: bool = False,
        compact_committed: bool = True,
        group_commit: bool = True,
        proof_carrying_commit: bool = True,
        tracer=None,
        trace_peer: str = "",
        sql_chase: Optional[object] = None,
    ):
        self._store = store
        self._tracer = tracer if tracer is not None else default_tracer()
        self._trace_peer = trace_peer
        #: Priority → parent span context of the traced update running under
        #: it (transferred to the restart priority on abort, dropped at
        #: commit).  Empty whenever tracing is disabled.
        self._trace_contexts: Dict[int, SpanContext] = {}
        self._mappings = list(mappings)
        from ..query.compiled import compile_mappings

        #: One shared CompiledMappings for every execution this scheduler
        #: admits or restarts (the per-mapping plans are process-cached, but
        #: the relation-keyed lookup tables used to be rebuilt per execution).
        self._compiled_mappings = compile_mappings(self._mappings)
        from ..query.sql_chase import resolve_sql_chase

        #: SQL chase path (``None`` defers to ``REPRO_SQL_CHASE``): one
        #: :class:`~repro.storage.mirror.DeltaMirror` shadows the store's
        #: committed baseline (fed incrementally by commit-time compaction)
        #: and one shared :class:`~repro.query.sql_chase.SqlViolationEvaluator`
        #: serves every execution; readers join their in-flight delta in-query.
        self._chase_mirror = None
        self._sql_evaluator = None
        sql_mode = resolve_sql_chase(sql_chase)
        if sql_mode:
            from ..query.sql_chase import SqlViolationEvaluator
            from ..storage.mirror import DeltaMirror

            self._chase_mirror = DeltaMirror(store.schema)
            self._chase_mirror.attach_store(store)
            self._sql_evaluator = SqlViolationEvaluator(
                self._chase_mirror, differential=(sql_mode == "check")
            )
        self._tracker = tracker
        self._oracle = oracle if oracle is not None else RandomOracle(seed=0)
        self._policy = policy if policy is not None else RoundRobinStepPolicy()
        if null_factory is None:
            null_factory = NullFactory.avoiding_view(store.latest_view())
        self._null_factory = null_factory
        self._max_total_steps = max_total_steps
        self._promote_restarts = promote_restarts_to_precise
        #: Long-running callers (the service layer) drop committed executions
        #: so per-pump scans stay proportional to the in-flight set, not to
        #: everything ever served.  Batch callers keep them for inspection.
        self._prune_committed = prune_committed
        #: Compact the store below the commit watermark as updates commit.
        #: Committed version chains collapse and committed write-log entries
        #: drop out; no tracker, conflict check or rollback can ever touch
        #: them again (they all filter on the abortable set), so this only
        #: bounds storage growth — long-running service sessions would
        #: otherwise accrete garbage proportional to everything ever served.
        self._compact_committed = compact_committed
        #: Group commit (the default): every maximal run of terminated updates
        #: commits as one batch — one watermark advance, one validation of the
        #: batch against the read log, one batch-listener round with the union
        #: write set and one ``compact_below`` sweep.  With ``False`` each
        #: member commits as its own singleton batch (own listener round and
        #: compaction sweep) — the reference path the differential tests pin
        #: the batched path against.  Chase execution, conflict processing and
        #: abort semantics are identical either way; only commit-time
        #: amortization differs.
        self._group_commit = group_commit
        #: Proof-carrying commit (the default): group-commit validation is
        #: skipped when every batch member's writes were eagerly
        #: conflict-checked and no direct conflict has occurred anywhere
        #: since — the re-check could only repeat verdicts already rendered.
        #: ``False`` restores the unconditional safety-net validation (the
        #: reference the differential tests pin the fast path against).
        self._proof_carrying_commit = proof_carrying_commit
        #: Monotone count of conflict-processing rounds that found at least
        #: one direct conflict; executions stamp their last eager check with
        #: it (see :attr:`UpdateExecution.validated_conflict_epoch`).
        self._conflict_epoch = 0
        self._pruned_terminated = 0

        self._executions: Dict[int, UpdateExecution] = {}
        self._committed: Set[int] = set()
        self._commit_watermark = 0
        self._newly_committed: List[int] = []
        self._read_log = ReadLog()
        self._next_priority = 1
        self._total_steps = 0
        self._restart_listeners: List[Callable[[int, int], None]] = []
        self._commit_listeners: List[Callable[[int, List[VersionedWrite]], None]] = []
        self._batch_commit_listeners: List[
            Callable[[List[PyTuple[int, List[VersionedWrite]]]], None]
        ] = []
        self.statistics = RunStatistics(algorithm=tracker.name)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def sql_evaluator(self):
        """The shared SQL violation evaluator (``None`` with SQL chase off)."""
        return self._sql_evaluator

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self, operation: UserOperation, trace: Optional[SpanContext] = None
    ) -> int:
        """Admit one update; returns its priority number.

        *trace* is the submitting ticket's root span context; chase-step,
        validation and commit spans of this priority (and of every restart
        priority it moves to after aborts) parent into it.
        """
        priority = self._next_priority
        self._next_priority += 1
        if trace is not None and self._tracer.enabled:
            self._trace_contexts[priority] = trace
        execution = UpdateExecution(
            priority=priority,
            operation=operation,
            store=self._store,
            mappings=self._mappings,
            oracle=self._oracle,
            null_factory=self._null_factory,
            compiled=self._compiled_mappings,
            sql_evaluator=self._sql_evaluator,
        )
        self._executions[priority] = execution
        self.statistics.updates_submitted += 1
        self.statistics.updates_executed += 1
        return priority

    def submit_all(self, operations: Sequence[UserOperation]) -> List[int]:
        """Admit several updates in order; returns their priority numbers."""
        return [self.submit(operation) for operation in operations]

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self) -> RunStatistics:
        """Run every admitted update to termination; returns the statistics.

        This is the batch entry point: with a synchronous oracle every update
        terminates (or the step budget trips).  With an asynchronous
        :class:`~repro.core.oracle.DeferredOracle` updates may park on frontier
        questions that batch mode can never answer, so leftover parked updates
        raise :class:`SchedulerStalled` — long-running callers should drive
        :meth:`pump` and :meth:`resume` instead (the service layer does).
        """
        started = time.perf_counter()
        self._policy.reset()
        self.pump()
        parked = self.parked_executions()
        if parked:
            raise SchedulerStalled(
                "{} update(s) parked on unanswered frontier decisions; "
                "batch run() cannot finish — drive pump()/resume() instead".format(
                    len(parked)
                )
            )
        self.statistics.wall_seconds = time.perf_counter() - started
        self.refresh_statistics()
        return self.statistics

    def pump(self, max_steps: Optional[int] = None) -> int:
        """Take chase steps until nothing is runnable (or *max_steps* taken).

        Returns the number of steps taken.  The scheduler is *drained* when
        this returns less than *max_steps*: every remaining execution is
        terminated or parked in ``WAITING_FRONTIER``, and progress requires
        either a new :meth:`submit` or a :meth:`resume` with a frontier
        answer.  Parked executions are never stepped (no busy-waiting).
        """
        taken = 0
        while True:
            ready = [
                execution
                for execution in self._executions.values()
                if execution.is_active
            ]
            if not ready:
                break
            execution = self._policy.next_update(ready)
            while True:
                if max_steps is not None and taken >= max_steps:
                    self._advance_commit_watermark()
                    return taken
                if self._total_steps >= self._max_total_steps:
                    self._mark_budget_exhausted()
                    raise SchedulerStalled(
                        "scheduler exceeded {} total steps".format(self._max_total_steps)
                    )
                self._total_steps += 1
                taken += 1
                result = self._run_one_step(execution)
                if not self._policy.keep_running(execution, result):
                    break
            self._advance_commit_watermark()
        return taken

    def resume(self, priority: int, operation: FrontierOperation) -> None:
        """Answer the frontier decision the update numbered *priority* parked on.

        The update becomes runnable again; the next :meth:`pump` continues it
        with the writes *operation* implies.
        """
        execution = self._executions.get(priority)
        if execution is None:
            raise KeyError("no execution with priority {}".format(priority))
        execution.resume_with(operation)
        self.statistics.frontier_resumes += 1

    def refresh_statistics(self) -> RunStatistics:
        """Fold current tracker/termination counters into the statistics."""
        self.statistics.tracker_cost_units = self._tracker.cost_units
        self.statistics.updates_terminated = self._pruned_terminated + sum(
            1 for execution in self._executions.values() if execution.is_terminated
        )
        return self.statistics

    def _mark_budget_exhausted(self) -> None:
        """Stall path: stamp unfinished updates with ``BUDGET_EXHAUSTED``.

        Parked updates are included — no remaining budget could run their
        resumption — and their open frontier questions get cancelled.
        """
        for execution in self._executions.values():
            if execution.is_active or execution.is_parked:
                execution.mark_budget_exhausted()

    def _run_one_step(self, execution: UpdateExecution) -> StepResult:
        reader = execution.priority
        # The abortable set and the reader's view are invariant within one
        # step (submissions, aborts and commits all happen between steps), so
        # they are computed once instead of once per recorded read.
        abortable = self._abortable()
        reader_view = self._store.view_for(reader)

        tracer = self._tracer
        step_span = None
        if tracer.enabled:
            context = self._trace_contexts.get(reader)
            if context is not None:
                step_span = tracer.start_span(
                    "chase-step",
                    phase="chase",
                    parent=context,
                    peer=self._trace_peer,
                    priority=reader,
                )

        if step_span is None:
            # The untraced recorder: byte-for-byte the pre-tracing hot path.
            def recorder(query: ReadQuery, answer: object) -> None:
                dependencies = self._tracker.dependencies(
                    query,
                    reader,
                    self._store,
                    reader_view,
                    abortable,
                )
                self._read_log.record(reader, query, dependencies)
                self.statistics.read_queries += 1

        else:
            # Traced: also meter the violation/dependency-query slice of the
            # step, reattributed chase → validate by the analysis layer.
            clock = tracer.clock
            tracker_box = [0.0]

            def recorder(query: ReadQuery, answer: object) -> None:
                before = clock()
                dependencies = self._tracker.dependencies(
                    query,
                    reader,
                    self._store,
                    reader_view,
                    abortable,
                )
                tracker_box[0] += clock() - before
                self._read_log.record(reader, query, dependencies)
                self.statistics.read_queries += 1

        result = execution.run_step(recorder)
        self.statistics.steps += 1
        self.statistics.writes += len(result.applied)
        self.statistics.chase_cost_units += result.cost_units
        if result.frontier_consumed:
            self.statistics.frontier_operations += 1
        if result.parked:
            self.statistics.frontier_parks += 1
        if result.applied:
            if step_span is not None:
                before = tracer.clock()
                self._process_conflicts(result)
                after = tracer.clock()
                # Phase-less on purpose: its time is accounted through the
                # parent step's ``tracker_seconds`` reattribution (a phased
                # nested span would be counted twice).
                tracer.record_span(
                    "conflict-check",
                    before,
                    after,
                    parent=step_span,
                    peer=self._trace_peer,
                    writes=len(result.applied),
                )
                # The check is nested inside the chase-step interval; fold
                # its duration into the reattribution attr so the analysis
                # layer moves it out of the chase phase (no double count).
                tracker_box[0] += after - before
            else:
                self._process_conflicts(result)
            # The step's writes have now been checked against every logged
            # read; stamp the execution with the current conflict epoch (its
            # earlier writes were stamped the same way by earlier steps).
            execution.validated_conflict_epoch = self._conflict_epoch
        if step_span is not None:
            tracer.end_span(step_span, tracker_seconds=tracker_box[0])
        return result

    def _process_conflicts(self, result: StepResult) -> None:
        abortable = self._abortable()
        report = find_direct_conflicts(
            result.applied, self._read_log, self._store, abortable
        )
        self.statistics.conflict_cost_units += report.cost_units
        if not report.direct_conflicts:
            return
        # Conflicts change the in-flight picture (readers abort, restarts
        # appear); advance the epoch so proof-carrying commit re-validates
        # any batch containing writes checked before this round.
        self._conflict_epoch += 1
        decision = consolidate_aborts(
            report.direct_conflicts, self._read_log, self._tracker, abortable
        )
        self.statistics.cascading_abort_requests += decision.cascading_requests
        for victim in sorted(decision.all_victims(), reverse=True):
            self._abort(victim, direct=victim in decision.direct)

    def _abort(self, victim: int, direct: bool) -> None:
        execution = self._executions.get(victim)
        if execution is None or victim in self._committed:
            return
        self._store.rollback(victim)
        self._read_log.remove_reader(victim)
        execution.abort()
        del self._executions[victim]
        self.statistics.aborts += 1
        if direct:
            self.statistics.direct_aborts += 1
        else:
            self.statistics.cascading_aborts += 1
        restart_priority = self._next_priority
        self._next_priority += 1
        restart = execution.restart_as(restart_priority)
        self._executions[restart_priority] = restart
        self.statistics.updates_executed += 1
        context = self._trace_contexts.pop(victim, None)
        if context is not None:
            # The restart keeps the ticket's identity, so it keeps the trace.
            self._trace_contexts[restart_priority] = context
            self._tracer.event(
                "abort",
                parent=context,
                peer=self._trace_peer,
                priority=victim,
                restart_priority=restart_priority,
                direct=direct,
            )
        if self._promote_restarts and isinstance(self._tracker, HybridTracker):
            self._tracker.promote(restart_priority)
        for listener in self._restart_listeners:
            listener(victim, restart_priority)

    def _abortable(self) -> Set[int]:
        return {
            priority
            for priority in self._executions
            if priority not in self._committed
        }

    def _advance_commit_watermark(self) -> None:
        """Commit terminated updates from the lowest priority upwards.

        An update can no longer be aborted once it has terminated and every
        lower-numbered update has committed: no future write can come from a
        lower-numbered update.  The maximal run of such updates forms one
        *commit batch*; under group commit (the default) it is validated
        against the read log and committed with one watermark advance, one
        batch-listener round and one compaction sweep — the per-commit fixed
        costs are paid once per batch instead of once per update.  An
        intra-batch conflict (impossible under eager conflict processing, but
        validated anyway) or ``group_commit=False`` falls back to committing
        each member as its own singleton batch, which is bit-identical in
        abort/cascade/cost semantics and differs only in amortization.
        """
        # Cheap pre-check before sorting: most steps terminate nothing, and
        # the commit batch can only be non-empty when something did.
        if not any(
            execution.is_terminated for execution in self._executions.values()
        ):
            return
        batch: List[int] = []
        for priority in sorted(self._executions):
            if priority in self._committed:
                continue
            if not self._executions[priority].is_terminated:
                break
            batch.append(priority)
        if not batch:
            return
        if self._group_commit:
            if len(batch) > 1 and self._batch_proof_carried(batch):
                # Proof-carrying fast path: every member's writes were
                # eagerly checked and nothing conflicted since — skip the
                # redundant read-log re-check entirely.
                self.statistics.group_validation_skips += 1
                self._commit_members(batch)
            elif len(batch) > 1 and not self._timed_validate_group(batch):
                self.statistics.group_commit_fallbacks += 1
                for priority in batch:
                    self._commit_members([priority])
            else:
                self._commit_members(batch)
        else:
            for priority in batch:
                self._commit_members([priority])

    def _batch_proof_carried(self, batch: List[int]) -> bool:
        """``True`` when the batch provably needs no read-log re-validation.

        An execution's writes were each conflict-checked (and conflicting
        readers aborted) the moment they were applied; only a *later*
        conflict round could change the picture its checks ran against.  So
        a batch is proof-carried when every member either performed no
        writes (a vacuous proof) or carries the current conflict epoch.
        """
        if not self._proof_carrying_commit:
            return False
        for priority in batch:
            epoch = self._executions[priority].validated_conflict_epoch
            if epoch is not None and epoch != self._conflict_epoch:
                return False
        return True

    def _timed_validate_group(self, batch: List[int]) -> bool:
        """Group validation wrapped in a ``group-validate`` span when traced."""
        tracer = self._tracer
        if not tracer.enabled:
            return self._validate_group(batch)
        before = tracer.clock()
        valid = self._validate_group(batch)
        after = tracer.clock()
        for priority in batch:
            context = self._trace_contexts.get(priority)
            if context is not None:
                tracer.record_span(
                    "group-validate",
                    before,
                    after,
                    phase="validate",
                    parent=context,
                    peer=self._trace_peer,
                    batch=len(batch),
                    valid=valid,
                )
                break  # one span per batch, parented into its first traced member
        return valid

    def _validate_group(self, batch: List[int]) -> bool:
        """Check the batch's union write set against its members' read logs.

        Every member's reads were already conflict-checked eagerly as the
        writes happened (and conflicting readers aborted), so a surviving
        intra-batch conflict would indicate a scheduler bug — the validation
        is the group-commit safety net, and its cost is accounted separately
        so the cost-model panels stay identical to the singleton path.
        """
        writes: List[VersionedWrite] = []
        for priority in batch:
            writes.extend(self._store.writes_by(priority))
        report = find_direct_conflicts(writes, self._read_log, self._store, set(batch))
        self.statistics.group_validation_cost_units += report.cost_units
        return not report.direct_conflicts

    def _commit_members(self, members: List[int]) -> None:
        """Commit *members* (contiguous, terminated) as one batch."""
        need_writes = bool(self._commit_listeners or self._batch_commit_listeners)
        commits: List[PyTuple[int, List[VersionedWrite]]] = []
        for priority in members:
            self._committed.add(priority)
            self._commit_watermark = priority
            self._newly_committed.append(priority)
            context = self._trace_contexts.pop(priority, None)
            if context is not None:
                self._tracer.event(
                    "commit",
                    parent=context,
                    peer=self._trace_peer,
                    priority=priority,
                    batch=len(members),
                )
            if need_writes:
                # The logged writes are about to be compacted away; hand the
                # listeners a stable copy, evaluated while ``view_for(priority)``
                # is still the exact committed snapshot of this update.
                writes = list(self._store.writes_by(priority))
            else:
                writes = []
            for listener in self._commit_listeners:
                listener(priority, writes)
            commits.append((priority, writes))
            self._read_log.remove_reader(priority)
            if self._prune_committed:
                # Committed executions can never be touched again; dropping
                # them keeps the per-pump ready/parked scans O(in-flight).
                del self._executions[priority]
                self._pruned_terminated += 1
        for listener in self._batch_commit_listeners:
            listener(commits)
        self.statistics.group_commits += 1
        self.statistics.group_commit_members += len(members)
        if self._compact_committed:
            self._store.compact_below(self._commit_watermark, members)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def final_database(self) -> FrozenDatabase:
        """The repository contents after the run (all versions visible)."""
        return self._store.materialize()

    def executions(self) -> List[UpdateExecution]:
        """Every execution the scheduler currently tracks (terminated included)."""
        return [self._executions[priority] for priority in sorted(self._executions)]

    def execution(self, priority: int) -> Optional[UpdateExecution]:
        """The execution currently registered under *priority* (or ``None``)."""
        return self._executions.get(priority)

    def parked_executions(self) -> List[UpdateExecution]:
        """Executions waiting in ``WAITING_FRONTIER``, lowest priority first."""
        return [
            self._executions[priority]
            for priority in sorted(self._executions)
            if self._executions[priority].is_parked
        ]

    @property
    def is_idle(self) -> bool:
        """``True`` when no execution can take a step without outside input."""
        return not any(
            execution.is_active for execution in self._executions.values()
        )

    def add_restart_listener(self, listener: Callable[[int, int], None]) -> None:
        """Register ``listener(old_priority, new_priority)`` for abort-restarts."""
        self._restart_listeners.append(listener)

    def add_commit_listener(
        self, listener: Callable[[int, List[VersionedWrite]], None]
    ) -> None:
        """Register ``listener(priority, writes)`` called as updates commit.

        The listener runs inside :meth:`pump`, immediately after *priority*
        enters the committed set and **before** its write-log entries are
        compacted away, so ``store.view_for(priority)`` is exactly the
        committed snapshot of the update and *writes* is the complete logged
        write set.  The federation layer uses this to package cross-peer
        exchange envelopes out of committed updates.
        """
        self._commit_listeners.append(listener)

    def add_batch_commit_listener(
        self,
        listener: Callable[[List[PyTuple[int, List[VersionedWrite]]]], None],
    ) -> None:
        """Register ``listener(commits)`` called once per commit batch.

        *commits* is the batch's union write set as ``(priority, writes)``
        pairs in commit order; like the per-priority listeners it fires
        **before** the batch is compacted, so every member's
        ``store.view_for(priority)`` is still its exact committed snapshot.
        Under group commit a listener round runs once per batch rather than
        once per update — the federation layer coalesces a whole batch's
        exchange envelopes here before anything reaches the transport.
        """
        self._batch_commit_listeners.append(listener)

    def committed_priorities(self) -> Set[int]:
        """The priorities that have committed so far."""
        return set(self._committed)

    def drain_newly_committed(self) -> List[int]:
        """Priorities committed since the last drain (in commit order).

        Long-running callers use this instead of re-scanning
        :meth:`committed_priorities`, whose size grows with service lifetime.
        """
        drained = self._newly_committed
        self._newly_committed = []
        return drained

    def commit_watermark(self) -> int:
        """The highest committed priority (0 before anything commits).

        Commits advance from the lowest priority upward, so every priority at
        or below the watermark is committed (or was rolled back entirely) and
        ``view_for(watermark)`` is a consistent committed snapshot.
        """
        return self._commit_watermark

    def committed_view(self) -> DatabaseView:
        """A snapshot containing exactly the committed state (plus the seed)."""
        return self._store.view_for(self.commit_watermark())

    @property
    def read_log(self) -> ReadLog:
        """The scheduler's read log (useful for inspection and tests)."""
        return self._read_log

    @property
    def store(self) -> VersionedDatabase:
        """The multiversion store the scheduler operates on."""
        return self._store


def run_concurrent_updates(
    initial: DatabaseView,
    mappings: Sequence[Tgd],
    operations: Sequence[UserOperation],
    tracker: DependencyTracker,
    oracle: Optional[FrontierOracle] = None,
    policy: Optional[SchedulingPolicy] = None,
    max_total_steps: int = 1_000_000,
) -> OptimisticScheduler:
    """Convenience wrapper: load *initial*, submit *operations*, run to completion.

    Returns the scheduler so callers can inspect statistics, the read log and
    the final database.
    """
    store = VersionedDatabase(initial.schema)
    store.load_initial(initial)
    scheduler = OptimisticScheduler(
        store=store,
        mappings=mappings,
        tracker=tracker,
        oracle=oracle,
        policy=policy,
        max_total_steps=max_total_steps,
    )
    scheduler.submit_all(operations)
    scheduler.run()
    return scheduler
