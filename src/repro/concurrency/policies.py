"""Scheduling policies: which update takes the next chase step, and for how long.

Section 5.2 leaves the scheduling policy open and discusses the trade-offs;
the experiments use "a round-robin policy that interleaves chases at the level
of individual steps".  That policy is the default here; a stratum-level policy
and a lowest-priority-first policy are provided for the ablation benchmarks.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional

from .execution import StepResult, UpdateExecution


class SchedulingPolicy(ABC):
    """Chooses the next update to run and how long it keeps the processor."""

    #: Machine-readable name used in experiment output.
    name: str = "abstract"

    @abstractmethod
    def next_update(self, ready: List[UpdateExecution]) -> UpdateExecution:
        """Pick the update that takes the next chase step (``ready`` is non-empty)."""

    def keep_running(self, execution: UpdateExecution, result: StepResult) -> bool:
        """``True`` when *execution* should immediately take another step."""
        return False

    def reset(self) -> None:
        """Reset internal state between runs."""


class RoundRobinStepPolicy(SchedulingPolicy):
    """Interleave updates at individual-step granularity (the paper's setting)."""

    name = "round-robin-step"

    def __init__(self) -> None:
        self._last_priority: Optional[int] = None

    def next_update(self, ready: List[UpdateExecution]) -> UpdateExecution:
        ordered = sorted(ready, key=lambda execution: execution.priority)
        if self._last_priority is None:
            chosen = ordered[0]
        else:
            after = [
                execution
                for execution in ordered
                if execution.priority > self._last_priority
            ]
            chosen = after[0] if after else ordered[0]
        self._last_priority = chosen.priority
        return chosen

    def reset(self) -> None:
        self._last_priority = None


class RoundRobinStratumPolicy(RoundRobinStepPolicy):
    """Round-robin, but let an update finish its deterministic stratum.

    The update keeps the processor until it terminates or consumes a frontier
    operation (the point where, with real humans, it would block).
    """

    name = "round-robin-stratum"

    def keep_running(self, execution: UpdateExecution, result: StepResult) -> bool:
        if result.terminated or result.frontier_consumed:
            return False
        return execution.is_active


class LowestPriorityFirstPolicy(SchedulingPolicy):
    """Always run the lowest-numbered active update.

    This drives execution close to serial order, which nearly eliminates
    conflicts at the price of no concurrency — a useful ablation baseline.
    """

    name = "lowest-priority-first"

    def next_update(self, ready: List[UpdateExecution]) -> UpdateExecution:
        return min(ready, key=lambda execution: execution.priority)

    def keep_running(self, execution: UpdateExecution, result: StepResult) -> bool:
        return execution.is_active and not result.terminated


def make_policy(name: str) -> SchedulingPolicy:
    """Build a policy from its name."""
    normalized = name.strip().lower()
    if normalized in ("round-robin-step", "step", "round-robin"):
        return RoundRobinStepPolicy()
    if normalized in ("round-robin-stratum", "stratum"):
        return RoundRobinStratumPolicy()
    if normalized in ("lowest-priority-first", "serial", "priority"):
        return LowestPriorityFirstPolicy()
    raise ValueError("unknown scheduling policy {!r}".format(name))
