"""Step-wise execution of one update over the multiversion store (Algorithm 2).

The optimistic scheduler interleaves updates at chase-step granularity.  Each
:class:`UpdateExecution` holds the state of one running update: the writes its
next step will perform, its violation queue, its firing state (via the shared
:class:`~repro.core.planner.RepairPlanner`), and counters.  A step

1. performs the pending writes (tagged with the update's priority number),
2. asks violation queries to discover the new violations those writes caused,
3. chooses the next violation and generates the corrective writes for the
   following step — consulting the frontier oracle when the repair is
   nondeterministic (the simulated human of Section 6 answers immediately).

Every read query performed along the way is reported to the scheduler through
a recorder callback so it can be logged for conflict checking and dependency
tracking.

With an asynchronous oracle (:class:`~repro.core.oracle.DeferredOracle`) the
consultation does not return an operation: the oracle raises
:class:`~repro.core.oracle.FrontierPending` and the execution **parks** in
``WAITING_FRONTIER``.  A parked execution takes no further steps — it is
excluded from scheduling, so no busy-stepping — until
:meth:`UpdateExecution.resume_with` supplies the human's answer, whereupon the
next step turns that answer into writes exactly as the synchronous path would
have.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from ..core.frontier import FrontierOperation, writes_for_operation
from ..core.oracle import FrontierOracle, FrontierPending, PendingDecision
from ..core.planner import RepairPlanner
from ..core.terms import NullFactory
from ..core.tgd import Tgd
from ..core.update import UpdateStatus, UserOperation
from ..core.violations import Violation, violations_for_writes
from ..core.writes import Write
from ..query.base import ReadQuery
from ..storage.versioned import VersionedDatabase, VersionedWrite

#: Scheduler-provided callback: ``recorder(query, answer)``.
ReadRecorderCallback = Callable[[ReadQuery, object], None]


@dataclass
class StepResult:
    """What one chase step did."""

    #: Writes that actually changed the store (already logged by the store).
    applied: List[VersionedWrite] = field(default_factory=list)
    #: ``True`` when the update terminated at the end of this step.
    terminated: bool = False
    #: ``True`` when a frontier operation was consumed during this step.
    frontier_consumed: bool = False
    #: ``True`` when the update parked in ``WAITING_FRONTIER`` during this step.
    parked: bool = False
    #: The pending decision the update parked on (set iff ``parked``).
    decision: Optional[PendingDecision] = None
    #: Number of read queries performed during this step.
    read_queries: int = 0
    #: Work units spent evaluating read queries during this step.
    cost_units: int = 0


class UpdateExecution:
    """The running state of one update under the optimistic scheduler."""

    def __init__(
        self,
        priority: int,
        operation: UserOperation,
        store: VersionedDatabase,
        mappings: Sequence[Tgd],
        oracle: FrontierOracle,
        null_factory: NullFactory,
        attempt: int = 1,
        compiled=None,
        sql_evaluator=None,
    ):
        self.priority = priority
        self.operation = operation
        self.attempt = attempt
        self.status = UpdateStatus.PENDING
        self.steps_taken = 0
        self.frontier_operations = 0
        self.writes_performed = 0
        from ..query.compiled import compile_mappings

        self._store = store
        self._mappings = list(mappings)
        #: Compiled plans shared process-wide through the global plan cache.
        #: Callers running many executions over one mapping set (the
        #: scheduler) pass their shared ``CompiledMappings`` so the
        #: relation-keyed lookup tables are built once, not per execution.
        self._compiled = compiled if compiled is not None else compile_mappings(
            self._mappings
        )
        self._oracle = oracle
        self._null_factory = null_factory
        #: Optional set-based SQL evaluator (shared per scheduler): violation
        #: queries run against the scheduler's delta mirror instead of the
        #: Python matcher.  Same answers, same recorder calls, same costs.
        self._sql_evaluator = sql_evaluator
        self._planner = RepairPlanner(self._mappings, null_factory)
        self._pending_writes: Optional[List[Write]] = None
        self._violation_queue: List[Violation] = []
        #: Proof-carrying commit state, maintained by the scheduler: the
        #: conflict epoch at which this execution's logged writes were last
        #: eagerly conflict-checked (``None`` while it has performed no
        #: writes — a vacuous proof).  Group commit skips re-validating a
        #: batch whose members all carry the current epoch.
        self.validated_conflict_epoch: Optional[int] = None
        #: The decision this execution is parked on (``None`` unless parked).
        self.pending_decision: Optional[PendingDecision] = None
        self._frontier_answer: Optional[FrontierOperation] = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def is_terminated(self) -> bool:
        """``True`` once the update has finished all its work."""
        return self.status is UpdateStatus.TERMINATED

    @property
    def is_aborted(self) -> bool:
        """``True`` once the update has been aborted (its restart is separate)."""
        return self.status is UpdateStatus.ABORTED

    @property
    def is_active(self) -> bool:
        """``True`` while the update can still take steps."""
        return self.status in (UpdateStatus.PENDING, UpdateStatus.RUNNING)

    @property
    def is_parked(self) -> bool:
        """``True`` while the update awaits an asynchronous frontier answer."""
        return self.status is UpdateStatus.WAITING_FRONTIER

    def describe(self) -> str:
        """Short description for logs."""
        return "update #{} (attempt {}): {}".format(
            self.priority, self.attempt, self.operation.describe()
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run_step(self, recorder: Optional[ReadRecorderCallback] = None) -> StepResult:
        """Execute one chase step (Algorithm 2); returns what happened."""
        result = StepResult()
        if self.is_parked:
            # Parked executions are excluded from scheduling; this guard makes
            # a stray call cheap and visibly a no-op (no busy-stepping).
            result.parked = True
            result.decision = self.pending_decision
            return result
        if not self.is_active:
            result.terminated = self.is_terminated
            return result
        self.status = UpdateStatus.RUNNING
        view = self._store.view_for(self.priority)

        def record(query: ReadQuery, answer: object) -> None:
            result.read_queries += 1
            result.cost_units += query.evaluation_cost()
            if recorder is not None:
                recorder(query, answer)

        # ----- consume a posted frontier answer (resume after parking) -----
        if self._frontier_answer is not None:
            chosen = self._frontier_answer
            self._frontier_answer = None
            self.steps_taken += 1
            self.frontier_operations += 1
            result.frontier_consumed = True
            self._pending_writes = writes_for_operation(chosen, view, record)
            self._planner.note_frontier_operation(chosen)
            return result

        # ----- perform the pending writes -----
        if self._pending_writes is None:
            self._pending_writes = self.operation.initial_writes(view)
        applied_logged = self._store.apply_writes(self._pending_writes, self.priority)
        self._pending_writes = []
        result.applied = applied_logged
        self.writes_performed += len(applied_logged)
        self.steps_taken += 1

        # ----- discover new violations -----
        applied_writes = [logged.write for logged in applied_logged]
        new_violations = violations_for_writes(
            applied_writes, self._compiled, view, record, self._sql_evaluator
        )
        self._violation_queue = self._planner.refresh_queue(
            self._violation_queue, new_violations, view
        )

        # ----- plan the next corrective writes -----
        writes, self._violation_queue, _ = self._planner.next_deterministic_writes(
            self._violation_queue, view, record
        )
        if writes:
            self._pending_writes = writes
            return result

        if not self._violation_queue:
            self.status = UpdateStatus.TERMINATED
            result.terminated = True
            return result

        # ----- nondeterministic repair: consult the (simulated) human -----
        request = self._planner.build_request(self._violation_queue[0], view, record)
        if request is None:
            # The head violation vanished while building the request; the next
            # step will re-examine the queue.
            self._violation_queue = self._violation_queue[1:]
            return result
        try:
            chosen = self._oracle.decide(request, view)
        except FrontierPending as pending:
            # Asynchronous oracle: park until a client answers.  The planner's
            # firing state is kept so the eventual answer resumes mid-repair.
            self.status = UpdateStatus.WAITING_FRONTIER
            self.pending_decision = pending.decision
            result.parked = True
            result.decision = pending.decision
            return result
        self.frontier_operations += 1
        result.frontier_consumed = True
        self._pending_writes = writes_for_operation(chosen, view, record)
        self._planner.note_frontier_operation(chosen)
        return result

    def resume_with(self, operation: FrontierOperation) -> None:
        """Supply the answer to the decision this execution is parked on.

        The execution becomes active again; its next step turns *operation*
        into writes exactly as the synchronous oracle path would have.
        """
        if not self.is_parked:
            raise RuntimeError(
                "cannot resume {}: it is not parked (status {})".format(
                    self.describe(), self.status.value
                )
            )
        self._frontier_answer = operation
        self.pending_decision = None
        self.status = UpdateStatus.RUNNING

    def mark_budget_exhausted(self) -> None:
        """Terminal stamp for the scheduler's stall path.

        A parked execution's open question is cancelled — it can never be
        resumed within the exhausted budget, so late answers must be rejected
        rather than silently consumed.
        """
        if self.pending_decision is not None:
            self._oracle.cancel(self.pending_decision.decision_id)
            self.pending_decision = None
        self._frontier_answer = None
        self.status = UpdateStatus.BUDGET_EXHAUSTED

    def abort(self) -> None:
        """Mark this execution aborted (the scheduler rolls back its writes)."""
        if self.pending_decision is not None:
            # A parked execution's question is now moot; cancel it so late
            # answers are rejected instead of resuming a dead update.
            self._oracle.cancel(self.pending_decision.decision_id)
        self.status = UpdateStatus.ABORTED
        self._pending_writes = None
        self._violation_queue = []
        self.pending_decision = None
        self._frontier_answer = None
        self._planner.reset()

    def restart_as(self, new_priority: int) -> "UpdateExecution":
        """A fresh execution of the same operation under a new priority number."""
        return UpdateExecution(
            priority=new_priority,
            operation=self.operation,
            store=self._store,
            mappings=self._mappings,
            oracle=self._oracle,
            null_factory=self._null_factory,
            attempt=self.attempt + 1,
            compiled=self._compiled,
            sql_evaluator=self._sql_evaluator,
        )
