"""Initial-database generation via update exchange itself (Section 6).

"Generating the initial database is performed using our update exchange
techniques themselves, with simulated user interaction; it is not easy to
obtain an interesting database that satisfies an arbitrary, potentially
cyclic, set of tgds using another method."

The generator inserts ``num_tuples`` random seed tuples, each through the
chase with a random oracle standing in for the simulated user, so that the
resulting database satisfies every mapping.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from ..core.chase import ChaseConfig, ChaseEngine
from ..core.oracle import RandomOracle
from ..core.schema import DatabaseSchema
from ..core.terms import NullFactory
from ..core.tgd import MappingSet
from ..core.tuples import Tuple
from ..core.update import InsertOperation
from ..storage.memory import MemoryDatabase


def random_seed_tuple(
    schema: DatabaseSchema,
    rng: random.Random,
    constant_pool: Sequence[str],
    relation: Optional[str] = None,
) -> Tuple:
    """A random tuple for a uniformly chosen relation, values from the pool."""
    if relation is None:
        relation = rng.choice(schema.relation_names())
    arity = schema.arity_of(relation)
    values = [rng.choice(list(constant_pool)) for _ in range(arity)]
    return Tuple(relation, values)


def generate_initial_database(
    schema: DatabaseSchema,
    mappings: MappingSet,
    num_tuples: int,
    constant_pool: Sequence[str],
    rng: Optional[random.Random] = None,
    max_steps_per_insert: int = 2_000,
) -> MemoryDatabase:
    """Insert *num_tuples* seed tuples, chasing each insertion to completion.

    The returned database satisfies every mapping in *mappings* (the paper
    loads the initial database against all 100 mappings so that every
    experiment prefix is also satisfied initially).
    """
    rng = rng if rng is not None else random.Random(7)
    database = MemoryDatabase(schema)
    oracle = RandomOracle(rng=random.Random(rng.random()))
    engine = ChaseEngine(
        database,
        mappings,
        oracle=oracle,
        null_factory=NullFactory(prefix="g"),
        config=ChaseConfig(
            max_steps=max_steps_per_insert,
            max_frontier_operations=max_steps_per_insert,
            track_provenance=False,
        ),
    )
    for _ in range(num_tuples):
        seed = random_seed_tuple(schema, rng, constant_pool)
        engine.run(InsertOperation(seed))
    return database
