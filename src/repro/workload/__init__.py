"""Synthetic workloads, closed-loop service drivers, and the Section 6 harness."""

from .closed_loop import (
    ClientSpec,
    ClosedLoopClient,
    ClosedLoopDriver,
    DriverReport,
    conservative_answer,
)
from .data_gen import generate_initial_database, random_seed_tuple
from .experiment import (
    INSERT_WORKLOAD,
    MIXED_WORKLOAD,
    ExperimentConfig,
    ExperimentEnvironment,
    build_environment,
    build_workload,
    run_cell_once,
    run_figure_3,
    run_figure_4,
    run_workload_experiment,
)
from .mapping_gen import generate_mapping, generate_mappings, mapping_prefix
from .metrics import CellResult, ExperimentResult, mean
from .schema_gen import generate_constant_pool, generate_schema
from .workloads import insert_workload, mixed_workload

__all__ = [
    "CellResult",
    "ClientSpec",
    "ClosedLoopClient",
    "ClosedLoopDriver",
    "DriverReport",
    "conservative_answer",
    "ExperimentConfig",
    "ExperimentEnvironment",
    "ExperimentResult",
    "INSERT_WORKLOAD",
    "MIXED_WORKLOAD",
    "build_environment",
    "build_workload",
    "generate_constant_pool",
    "generate_initial_database",
    "generate_mapping",
    "generate_mappings",
    "generate_schema",
    "insert_workload",
    "mapping_prefix",
    "mean",
    "mixed_workload",
    "random_seed_tuple",
    "run_cell_once",
    "run_figure_3",
    "run_figure_4",
    "run_workload_experiment",
]
