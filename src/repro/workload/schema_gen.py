"""Random schema generation for the synthetic experiments (Section 6).

The paper's experiments run "on a database of 100 relations, each randomly
generated to have between one and six attributes".  The generator below is
seeded so that every experiment cell sees the same schema.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from ..core.schema import DatabaseSchema, RelationSchema, generic_attributes


def generate_schema(
    num_relations: int = 100,
    min_arity: int = 1,
    max_arity: int = 6,
    rng: Optional[random.Random] = None,
    name_prefix: str = "R",
) -> DatabaseSchema:
    """Generate ``num_relations`` relations with uniformly random arities."""
    if num_relations < 1:
        raise ValueError("need at least one relation, got {}".format(num_relations))
    if not 1 <= min_arity <= max_arity:
        raise ValueError(
            "invalid arity bounds [{}, {}]".format(min_arity, max_arity)
        )
    rng = rng if rng is not None else random.Random(0)
    relations: List[RelationSchema] = []
    for index in range(num_relations):
        arity = rng.randint(min_arity, max_arity)
        name = "{}{}".format(name_prefix, index + 1)
        relations.append(RelationSchema(name, generic_attributes(arity)))
    return DatabaseSchema.from_relations(relations)


def generate_constant_pool(
    size: int = 50, rng: Optional[random.Random] = None, length: int = 8
) -> List[str]:
    """The paper's "small (size 50) fixed set of random strings".

    Keeping the constant domain small makes joins between relations highly
    likely to be non-empty, so mappings are highly likely to fire.
    """
    rng = rng if rng is not None else random.Random(0)
    alphabet = "abcdefghijklmnopqrstuvwxyz"
    pool: List[str] = []
    seen = set()
    while len(pool) < size:
        candidate = "".join(rng.choice(alphabet) for _ in range(length))
        if candidate not in seen:
            seen.add(candidate)
            pool.append(candidate)
    return pool
