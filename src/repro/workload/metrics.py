"""Aggregation and rendering of experiment results (the panels of Figs. 3 and 4).

Each experiment cell (workload, number of mappings, algorithm) is run one or
more times; the paper reports, per cell, the average number of aborts, the
average number of cascading abort requests, and — per number of mappings — the
slowdown of PRECISE relative to COARSE in per-update execution time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple as PyTuple

from ..concurrency.aborts import RunStatistics
from ..obs.stats import mean  # noqa: F401  (re-exported: the one shared implementation)


@dataclass
class CellResult:
    """Aggregated statistics for one (workload, mapping count, algorithm) cell."""

    workload: str
    mapping_count: int
    algorithm: str
    runs: List[RunStatistics] = field(default_factory=list)

    @property
    def aborts(self) -> float:
        """Mean number of aborts per run (panel (a) of each figure)."""
        return mean([run.aborts for run in self.runs])

    @property
    def cascading_abort_requests(self) -> float:
        """Mean number of cascading abort requests per run (panel (b))."""
        return mean([run.cascading_abort_requests for run in self.runs])

    @property
    def per_update_seconds(self) -> float:
        """Mean per-update wall-clock time (input to panel (c))."""
        return mean([run.per_update_seconds for run in self.runs])

    @property
    def per_update_cost_units(self) -> float:
        """Mean per-update cost units (deterministic proxy for panel (c))."""
        return mean([run.per_update_cost_units for run in self.runs])

    @property
    def updates_executed(self) -> float:
        """Mean number of update executions (submitted plus restarts)."""
        return mean([run.updates_executed for run in self.runs])

    @property
    def frontier_operations(self) -> float:
        """Mean number of frontier operations consumed."""
        return mean([run.frontier_operations for run in self.runs])


@dataclass
class ExperimentResult:
    """All cells of one experiment (one figure = one workload)."""

    workload: str
    cells: List[CellResult] = field(default_factory=list)

    def cell(self, mapping_count: int, algorithm: str) -> CellResult:
        """Look a cell up by coordinates."""
        for candidate in self.cells:
            if (
                candidate.mapping_count == mapping_count
                and candidate.algorithm == algorithm
            ):
                return candidate
        raise KeyError(
            "no cell for {} mappings / {}".format(mapping_count, algorithm)
        )

    def mapping_counts(self) -> List[int]:
        """The mapping densities present, ascending."""
        return sorted({cell.mapping_count for cell in self.cells})

    def algorithms(self) -> List[str]:
        """The algorithms present, in first-seen order."""
        seen: List[str] = []
        for cell in self.cells:
            if cell.algorithm not in seen:
                seen.append(cell.algorithm)
        return seen

    # ------------------------------------------------------------------
    # The three panels
    # ------------------------------------------------------------------
    def abort_series(self) -> Dict[str, List[PyTuple[int, float]]]:
        """Panel (a): number of aborts vs. number of mappings, per algorithm."""
        return {
            algorithm: [
                (count, self.cell(count, algorithm).aborts)
                for count in self.mapping_counts()
                if self._has_cell(count, algorithm)
            ]
            for algorithm in self.algorithms()
        }

    def cascading_request_series(self) -> Dict[str, List[PyTuple[int, float]]]:
        """Panel (b): cascading abort requests vs. number of mappings."""
        return {
            algorithm: [
                (count, self.cell(count, algorithm).cascading_abort_requests)
                for count in self.mapping_counts()
                if self._has_cell(count, algorithm)
            ]
            for algorithm in self.algorithms()
        }

    def precise_slowdown_series(
        self, use_cost_model: bool = False
    ) -> List[PyTuple[int, float]]:
        """Panel (c): per-update time of PRECISE divided by COARSE.

        ``use_cost_model=True`` uses the deterministic cost-unit proxy instead
        of wall-clock time, which is steadier at reduced experiment scale.
        """
        series: List[PyTuple[int, float]] = []
        for count in self.mapping_counts():
            if not (self._has_cell(count, "PRECISE") and self._has_cell(count, "COARSE")):
                continue
            precise = self.cell(count, "PRECISE")
            coarse = self.cell(count, "COARSE")
            if use_cost_model:
                numerator = precise.per_update_cost_units
                denominator = coarse.per_update_cost_units
            else:
                numerator = precise.per_update_seconds
                denominator = coarse.per_update_seconds
            if denominator <= 0:
                continue
            series.append((count, numerator / denominator))
        return series

    def _has_cell(self, mapping_count: int, algorithm: str) -> bool:
        try:
            self.cell(mapping_count, algorithm)
            return True
        except KeyError:
            return False

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def format_table(self) -> str:
        """A plain-text rendering of all three panels (one row per density)."""
        lines: List[str] = []
        lines.append("Workload: {}".format(self.workload))
        header = "{:>10} | {:>8} | {:>10} | {:>14} | {:>12} | {:>10}".format(
            "mappings", "algo", "aborts", "casc. requests", "upd. executed", "s/update"
        )
        lines.append(header)
        lines.append("-" * len(header))
        for count in self.mapping_counts():
            for algorithm in self.algorithms():
                if not self._has_cell(count, algorithm):
                    continue
                cell = self.cell(count, algorithm)
                lines.append(
                    "{:>10} | {:>8} | {:>10.1f} | {:>14.1f} | {:>12.1f} | {:>10.4f}".format(
                        count,
                        algorithm,
                        cell.aborts,
                        cell.cascading_abort_requests,
                        cell.updates_executed,
                        cell.per_update_seconds,
                    )
                )
        slowdown = self.precise_slowdown_series()
        if slowdown:
            lines.append("")
            lines.append("Slowdown of PRECISE relative to COARSE (wall clock):")
            for count, factor in slowdown:
                lines.append("  {:>3} mappings: {:.2f}x".format(count, factor))
        slowdown_cost = self.precise_slowdown_series(use_cost_model=True)
        if slowdown_cost:
            lines.append("Slowdown of PRECISE relative to COARSE (cost model):")
            for count, factor in slowdown_cost:
                lines.append("  {:>3} mappings: {:.2f}x".format(count, factor))
        return "\n".join(lines)
