"""Random mapping (tgd) generation for the synthetic experiments (Section 6).

Each mapping is created "by choosing a random subset of one to three relations
for the LHS and another for the RHS.  Smaller sets have higher probability
[...]  The remaining step in mapping generation is the choice of variables in
the atoms; this is done randomly, with care taken to ensure that the mappings
contain inter-atom joins as well as constants.  Any constants used come from a
small (size 50) fixed set of random strings."

The generator keeps those properties and additionally guarantees that every
mapping exports at least one variable from its LHS to its RHS (a mapping with
an unrelated RHS would degenerate into an unconditional existence constraint),
unless the RHS consists only of constants, which is allowed but rare.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from ..core.atoms import Atom
from ..core.schema import DatabaseSchema
from ..core.terms import Constant, Variable
from ..core.tgd import MappingSet, Tgd

#: Probability weights for choosing 1, 2 or 3 atoms on a side ("smaller sets
#: have higher probability, as humans are highly unlikely to create mappings
#: with more than one or two atoms on either side").
_SIDE_SIZE_WEIGHTS = (0.6, 0.3, 0.1)

#: Probability that an LHS position holds a constant rather than a variable.
_LHS_CONSTANT_PROBABILITY = 0.15

#: Probability that an RHS position holds a constant.
_RHS_CONSTANT_PROBABILITY = 0.1

#: Probability that an RHS variable position reuses an exported LHS variable
#: (otherwise it becomes an existential variable).
_RHS_EXPORT_PROBABILITY = 0.6


def _choose_side_size(rng: random.Random, maximum: int = 3) -> int:
    sizes = list(range(1, maximum + 1))
    weights = _SIDE_SIZE_WEIGHTS[:maximum]
    return rng.choices(sizes, weights=weights, k=1)[0]


def _generate_lhs(
    schema: DatabaseSchema,
    rng: random.Random,
    constant_pool: Sequence[str],
    variable_counter: List[int],
) -> List[Atom]:
    relation_names = schema.relation_names()
    size = _choose_side_size(rng)
    chosen = [rng.choice(relation_names) for _ in range(size)]
    atoms: List[Atom] = []
    available_variables: List[Variable] = []
    for atom_index, relation in enumerate(chosen):
        arity = schema.arity_of(relation)
        terms: List[object] = []
        for position in range(arity):
            reuse_possible = bool(available_variables) and atom_index > 0
            if rng.random() < _LHS_CONSTANT_PROBABILITY:
                terms.append(Constant(rng.choice(list(constant_pool))))
            elif reuse_possible and rng.random() < 0.5:
                # Inter-atom join: reuse a variable from an earlier atom.
                terms.append(rng.choice(available_variables))
            else:
                variable_counter[0] += 1
                variable = Variable("v{}".format(variable_counter[0]))
                available_variables.append(variable)
                terms.append(variable)
        atoms.append(Atom(relation, terms))
    # Guarantee at least one inter-atom join when the LHS has several atoms.
    if len(atoms) > 1:
        first_variables = list(atoms[0].variable_set())
        second = atoms[1]
        if first_variables and not (atoms[0].variable_set() & second.variable_set()):
            position = rng.randrange(second.arity)
            new_terms = list(second.terms)
            new_terms[position] = rng.choice(first_variables)
            atoms[1] = Atom(second.relation, new_terms)
    return atoms


def _generate_rhs(
    schema: DatabaseSchema,
    rng: random.Random,
    constant_pool: Sequence[str],
    lhs_variables: List[Variable],
    variable_counter: List[int],
) -> List[Atom]:
    relation_names = schema.relation_names()
    size = _choose_side_size(rng)
    chosen = [rng.choice(relation_names) for _ in range(size)]
    atoms: List[Atom] = []
    existential_variables: List[Variable] = []
    exported_any = False
    for relation in chosen:
        arity = schema.arity_of(relation)
        terms: List[object] = []
        for position in range(arity):
            roll = rng.random()
            if roll < _RHS_CONSTANT_PROBABILITY:
                terms.append(Constant(rng.choice(list(constant_pool))))
            elif lhs_variables and roll < _RHS_CONSTANT_PROBABILITY + _RHS_EXPORT_PROBABILITY:
                terms.append(rng.choice(lhs_variables))
                exported_any = True
            else:
                if existential_variables and rng.random() < 0.3:
                    # Inter-atom join among RHS atoms through a shared
                    # existential variable.
                    terms.append(rng.choice(existential_variables))
                else:
                    variable_counter[0] += 1
                    variable = Variable("z{}".format(variable_counter[0]))
                    existential_variables.append(variable)
                    terms.append(variable)
        atoms.append(Atom(relation, terms))
    # Guarantee that the mapping exports at least one LHS variable when it can.
    if lhs_variables and not exported_any:
        target = atoms[0]
        position = rng.randrange(target.arity)
        new_terms = list(target.terms)
        new_terms[position] = rng.choice(lhs_variables)
        atoms[0] = Atom(target.relation, new_terms)
    return atoms


def generate_mapping(
    schema: DatabaseSchema,
    rng: random.Random,
    constant_pool: Sequence[str],
    name: str = "sigma",
) -> Tgd:
    """Generate one random mapping over *schema*."""
    variable_counter = [0]
    lhs = _generate_lhs(schema, rng, constant_pool, variable_counter)
    lhs_variables = sorted(
        {variable for atom in lhs for variable in atom.variable_set()},
        key=lambda variable: variable.name,
    )
    rhs = _generate_rhs(schema, rng, constant_pool, lhs_variables, variable_counter)
    return Tgd(lhs, rhs, name=name)


def generate_mappings(
    schema: DatabaseSchema,
    count: int,
    rng: Optional[random.Random] = None,
    constant_pool: Optional[Sequence[str]] = None,
) -> MappingSet:
    """Generate *count* random mappings.

    The experiments use a *monotonically increasing* family of mapping sets:
    the run with 40 mappings contains the 20 mappings of the sparser run plus
    20 more.  Generating the full set once (with a fixed seed) and slicing
    prefixes — see :func:`mapping_prefix` — reproduces that construction.
    """
    from .schema_gen import generate_constant_pool

    rng = rng if rng is not None else random.Random(1)
    pool = list(constant_pool) if constant_pool is not None else generate_constant_pool(rng=rng)
    mappings = MappingSet()
    for index in range(count):
        mappings.add(
            generate_mapping(schema, rng, pool, name="sigma{}".format(index + 1))
        )
    mappings.validate(schema)
    return mappings


def mapping_prefix(mappings: MappingSet, count: int) -> MappingSet:
    """The first *count* mappings of a generated family (monotone subsets)."""
    if count > len(mappings):
        raise ValueError(
            "asked for {} mappings but only {} were generated".format(
                count, len(mappings)
            )
        )
    return MappingSet(list(mappings)[:count])
