"""Multi-peer scenario generation for the federation layer.

Generates complete federated environments: a global schema partitioned over
N peers, per-peer local mappings plus cross-peer mappings, an initial
database satisfying the union (built by update exchange itself, as in
Section 6), and per-peer operation streams.

Two properties are engineered in, both needed by the differential
convergence tests (:mod:`repro.federation.convergence`):

* **Terminating union.**  Relations carry a global order (peer-major); every
  generated mapping points strictly forward in that order, so the union's
  relation graph is acyclic — in particular weakly acyclic — and every chase
  (always-expand included) terminates regardless of interleaving.  Cyclic
  topologies are deliberately left to the hand-built fixtures, where the
  conservative unify policies keep them finite.
* **Chase-free deletes.**  Each peer reserves *free* relations that no
  mapping mentions; generated deletes target only initial tuples of the
  deleting peer's own free relations.  The serial reference and the
  federation then agree on deletions by construction, while inserts exercise
  the full local + cross-peer cascade (including envelopes racing deliveries
  under delay, reorder and partition).  Cross-peer *retraction* traffic is
  covered by the directed fixtures in the federation tests, where the
  deterministic witness choice can be pinned against the reference.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple as PyTuple

from ..core.atoms import Atom
from ..core.schema import DatabaseSchema, RelationSchema, generic_attributes
from ..core.terms import Constant, Variable
from ..core.tgd import MappingSet, Tgd
from ..core.tuples import Tuple
from ..core.update import DeleteOperation, InsertOperation, UserOperation
from ..service.admission import AdmissionConfig
from ..storage.memory import FrozenDatabase
from .data_gen import generate_initial_database
from .schema_gen import generate_constant_pool


@dataclass
class FederationScenarioConfig:
    """All knobs of one generated multi-peer scenario."""

    num_peers: int = 3
    #: Relations owned by each peer (mapping-visible plus free ones).
    relations_per_peer: int = 4
    #: Of those, relations no mapping mentions (the delete targets).
    free_relations_per_peer: int = 1
    min_arity: int = 1
    max_arity: int = 3
    #: Intra-peer mappings generated per peer.
    local_mappings_per_peer: int = 2
    #: Cross-peer mappings generated over the whole federation.
    cross_mappings: int = 4
    #: Seed tuples chased into the initial database.
    initial_tuples: int = 24
    #: User operations submitted per peer.
    operations_per_peer: int = 6
    #: Fraction of each peer's operations that are (free-relation) deletes.
    delete_fraction: float = 0.25
    #: Fraction of inserts targeting a relation owned by *another* peer
    #: (exercising update routing through the transport).
    remote_insert_fraction: float = 0.25
    constant_pool_size: int = 20
    seed: int = 0
    #: Heterogeneous federation: peer 0 becomes a *slow archive* (tight
    #: admission, slow links), the last peer a *fast edge*, in-between peers
    #: interpolate — per-peer :class:`AdmissionConfig`s and per-link delays
    #: are generated alongside the scenario.  Off by default so homogeneous
    #: scenarios (and their recorded bench numbers) reproduce unchanged.
    heterogeneous: bool = False
    #: Link-delay range (transport pumps) sampled per directed link when
    #: heterogeneous; links touching the archive always get the maximum.
    min_link_delay: int = 0
    max_link_delay: int = 3
    #: Admission bounds interpolated from archive (first) to edge (last).
    archive_max_in_flight: int = 2
    edge_max_in_flight: int = 12

    def peer_names(self) -> List[str]:
        return ["p{}".format(index) for index in range(self.num_peers)]


@dataclass
class FederationEnvironment:
    """Everything one federated scenario run needs."""

    config: FederationScenarioConfig
    schema: DatabaseSchema
    ownership: Dict[str, List[str]]
    #: Non-free relations per peer (the mapping-visible ones).
    mapped_relations: Dict[str, List[str]]
    mappings: MappingSet
    initial: FrozenDatabase
    #: Per-peer operation streams, keyed by submitting peer.
    operations: Dict[str, List[UserOperation]] = field(default_factory=dict)
    #: Per-peer admission configs (``None`` for a homogeneous federation) —
    #: pass directly as ``FederatedNetwork(admission=...)``.
    admission_configs: Optional[Dict[str, AdmissionConfig]] = None
    #: Per-directed-link delays in pumps (empty for a homogeneous federation).
    link_delays: Dict[PyTuple[str, str], int] = field(default_factory=dict)

    def apply_link_delays(self, transport) -> None:
        """Configure *transport* with this scenario's per-link delays."""
        for (source, destination), delay in self.link_delays.items():
            transport.set_delay(source, destination, delay)

    def all_operations(self) -> List[UserOperation]:
        """Every operation, interleaved round-robin across peers.

        This is the canonical serial order the single-repository reference
        replays; for the terminating, insert-plus-free-delete scenarios the
        generator produces, any serial order chases to an equivalent result.
        """
        streams = [list(self.operations[peer]) for peer in sorted(self.operations)]
        merged: List[UserOperation] = []
        cursor = 0
        while any(streams):
            stream = streams[cursor % len(streams)]
            if stream:
                merged.append(stream.pop(0))
            cursor += 1
        return merged


def _generate_side(
    relations: Sequence[str],
    schema: DatabaseSchema,
    rng: random.Random,
    pool: Sequence[str],
    exported: Optional[List[Variable]],
    counter: List[int],
) -> PyTuple[List[Atom], List[Variable]]:
    """Generate one side (1–2 atoms) over *relations*.

    With ``exported is None`` this is an LHS: fresh variables with a shared
    join variable when two atoms are drawn.  Otherwise it is an RHS: each
    atom position exports an LHS variable, reuses an existential, mints a new
    existential, or takes a pool constant.
    """
    size = 1 if len(relations) == 1 or rng.random() < 0.6 else 2
    chosen = [rng.choice(list(relations)) for _ in range(size)]
    atoms: List[Atom] = []
    variables: List[Variable] = []
    existentials: List[Variable] = []
    exported_any = False
    for atom_index, relation in enumerate(chosen):
        arity = schema.arity_of(relation)
        terms: List[object] = []
        for position in range(arity):
            roll = rng.random()
            if exported is None:
                if roll < 0.12:
                    terms.append(Constant(rng.choice(list(pool))))
                elif atom_index > 0 and variables and roll < 0.55:
                    terms.append(rng.choice(variables))  # inter-atom join
                else:
                    counter[0] += 1
                    variable = Variable("v{}".format(counter[0]))
                    variables.append(variable)
                    terms.append(variable)
            else:
                if roll < 0.1:
                    terms.append(Constant(rng.choice(list(pool))))
                elif exported and roll < 0.65:
                    terms.append(rng.choice(exported))
                    exported_any = True
                elif existentials and rng.random() < 0.3:
                    terms.append(rng.choice(existentials))
                else:
                    counter[0] += 1
                    variable = Variable("z{}".format(counter[0]))
                    existentials.append(variable)
                    terms.append(variable)
        atoms.append(Atom(relation, terms))
    if exported is not None and exported and not exported_any:
        # Guarantee the mapping exports something (an unconditional existence
        # constraint would fire on every update forever).
        target = atoms[0]
        position = rng.randrange(target.arity)
        terms = list(target.terms)
        terms[position] = rng.choice(exported)
        atoms[0] = Atom(target.relation, terms)
    return atoms, variables


def _generate_mapping(
    lhs_relations: Sequence[str],
    rhs_relations: Sequence[str],
    schema: DatabaseSchema,
    rng: random.Random,
    pool: Sequence[str],
    name: str,
) -> Tgd:
    counter = [0]
    lhs, lhs_variables = _generate_side(lhs_relations, schema, rng, pool, None, counter)
    rhs, _ = _generate_side(rhs_relations, schema, rng, pool, lhs_variables, counter)
    return Tgd(lhs, rhs, name=name)


def generate_federation_environment(
    config: Optional[FederationScenarioConfig] = None,
) -> FederationEnvironment:
    """Generate one complete multi-peer scenario from *config* (seeded)."""
    config = config if config is not None else FederationScenarioConfig()
    if config.num_peers < 2:
        raise ValueError("a federation needs at least two peers")
    if config.free_relations_per_peer >= config.relations_per_peer:
        raise ValueError("every peer needs at least one mapping-visible relation")
    rng = random.Random(config.seed)
    pool = generate_constant_pool(
        size=config.constant_pool_size, rng=random.Random(rng.random())
    )

    peers = config.peer_names()
    ownership: Dict[str, List[str]] = {}
    mapped: Dict[str, List[str]] = {}
    free: Dict[str, List[str]] = {}
    relations: List[RelationSchema] = []
    for peer_index, peer in enumerate(peers):
        owned: List[str] = []
        for relation_index in range(config.relations_per_peer):
            name = "{}r{}".format(peer, relation_index)
            arity = rng.randint(config.min_arity, config.max_arity)
            relations.append(RelationSchema(name, generic_attributes(arity)))
            owned.append(name)
        ownership[peer] = owned
        cut = config.relations_per_peer - config.free_relations_per_peer
        mapped[peer] = owned[:cut]
        free[peer] = owned[cut:]
    schema = DatabaseSchema.from_relations(relations)

    mappings = MappingSet()
    serial = [0]

    def next_name() -> str:
        serial[0] += 1
        return "sigma{}".format(serial[0])

    # Local mappings: strictly forward within the peer's mapped relations,
    # so the union's relation graph stays acyclic.
    for peer in peers:
        visible = mapped[peer]
        if len(visible) < 2:
            continue
        for _ in range(config.local_mappings_per_peer):
            split = rng.randint(1, len(visible) - 1)
            mappings.add(
                _generate_mapping(
                    visible[:split], visible[split:], schema, rng, pool, next_name()
                )
            )
    # Cross mappings: LHS at an earlier peer, RHS at a strictly later one —
    # forward in the global (peer-major) relation order by construction.
    for _ in range(config.cross_mappings):
        source_index = rng.randrange(0, config.num_peers - 1)
        target_index = rng.randrange(source_index + 1, config.num_peers)
        mappings.add(
            _generate_mapping(
                mapped[peers[source_index]],
                mapped[peers[target_index]],
                schema,
                rng,
                pool,
                next_name(),
            )
        )
    mappings.validate(schema)
    assert not mappings.has_cycle(), "generated union mapping graph must be acyclic"

    initial = generate_initial_database(
        schema,
        mappings,
        config.initial_tuples,
        pool,
        rng=random.Random(rng.random()),
    ).snapshot()

    operations: Dict[str, List[UserOperation]] = {}
    fresh = [0]
    deletable: Dict[str, List[Tuple]] = {
        peer: sorted(
            (row for name in free[peer] for row in initial.tuples(name)),
            key=repr,
        )
        for peer in peers
    }
    for peer_index, peer in enumerate(peers):
        stream: List[UserOperation] = []
        num_deletes = int(round(config.operations_per_peer * config.delete_fraction))
        for _ in range(config.operations_per_peer):
            if num_deletes > 0 and deletable[peer] and rng.random() < config.delete_fraction * 2:
                victim = deletable[peer].pop(rng.randrange(len(deletable[peer])))
                stream.append(DeleteOperation(victim))
                num_deletes -= 1
                continue
            if rng.random() < config.remote_insert_fraction:
                other = rng.choice([name for name in peers if name != peer])
                relation = rng.choice(mapped[other])
            else:
                relation = rng.choice(mapped[peer])
            arity = schema.arity_of(relation)
            values: List[object] = []
            for _ in range(arity):
                if rng.random() < 0.5:
                    fresh[0] += 1
                    values.append("{}n{}".format(peer, fresh[0]))
                else:
                    values.append(rng.choice(list(pool)))
            stream.append(InsertOperation(Tuple(relation, values)))
        operations[peer] = stream

    admission_configs: Optional[Dict[str, AdmissionConfig]] = None
    link_delays: Dict[PyTuple[str, str], int] = {}
    if config.heterogeneous:
        admission_configs = _heterogeneous_admission(config, peers)
        link_delays = _heterogeneous_link_delays(
            config, peers, random.Random(rng.random())
        )

    return FederationEnvironment(
        config=config,
        schema=schema,
        ownership=ownership,
        mapped_relations=mapped,
        mappings=mappings,
        initial=initial,
        operations=operations,
        admission_configs=admission_configs,
        link_delays=link_delays,
    )


def _heterogeneous_admission(
    config: FederationScenarioConfig, peers: Sequence[str]
) -> Dict[str, AdmissionConfig]:
    """Per-peer admission: archive (first) tight, edge (last) wide.

    The archive peer admits few concurrent updates in singleton batches (a
    conservative, abort-averse store); edge peers admit wide compatible
    groups.  In-between peers interpolate linearly.
    """
    configs: Dict[str, AdmissionConfig] = {}
    span = max(1, len(peers) - 1)
    low = config.archive_max_in_flight
    high = config.edge_max_in_flight
    for index, peer in enumerate(peers):
        in_flight = low + int(round((high - low) * index / span))
        configs[peer] = AdmissionConfig(
            max_in_flight=max(1, in_flight),
            batch_size=max(1, in_flight // 2),
            compatible_groups=index > 0,
        )
    return configs


def _heterogeneous_link_delays(
    config: FederationScenarioConfig,
    peers: Sequence[str],
    rng: random.Random,
) -> Dict[PyTuple[str, str], int]:
    """Per-directed-link delays: archive links slow, the rest sampled."""
    delays: Dict[PyTuple[str, str], int] = {}
    archive = peers[0]
    for source in peers:
        for destination in peers:
            if source == destination:
                continue
            if archive in (source, destination):
                delay = config.max_link_delay
            else:
                delay = rng.randint(config.min_link_delay, config.max_link_delay)
            delays[(source, destination)] = delay
    return delays
