"""The end-to-end experiment harness reproducing Figures 3 and 4.

The paper compares the NAIVE, COARSE and PRECISE cascading-abort algorithms on
synthetic data: 100 relations, mappings varying from 20 (sparse) to 100
(dense) in a monotone family, an initial database of 10,000 tuples generated
by update exchange itself, and workloads of 500 updates (all inserts, or 80%
inserts / 20% deletes), each point averaged over 100 runs, with a round-robin
step-level scheduling policy and frontier operations simulated by uniform
random choice.

Running that exact configuration in pure Python takes hours, so the harness is
parameterized: :meth:`ExperimentConfig.paper_scale` reproduces the paper's
parameters, :meth:`ExperimentConfig.small_scale` (the default) shrinks every
dimension while preserving the qualitative shape of the curves.  See
EXPERIMENTS.md for the recorded outputs.

Run from the command line::

    python -m repro.workload.experiment --figure 3 --scale small
    python -m repro.workload.experiment --figure 4 --scale small --runs 3
"""

from __future__ import annotations

import argparse
import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple as PyTuple

from ..concurrency.aborts import RunStatistics
from ..concurrency.dependencies import make_tracker
from ..concurrency.optimistic import OptimisticScheduler
from ..concurrency.policies import make_policy
from ..core.oracle import RandomOracle
from ..core.schema import DatabaseSchema
from ..core.terms import NullFactory
from ..core.tgd import MappingSet
from ..core.update import UserOperation
from ..storage.memory import FrozenDatabase
from ..storage.versioned import VersionedDatabase
from .data_gen import generate_initial_database
from .mapping_gen import generate_mappings, mapping_prefix
from .metrics import CellResult, ExperimentResult
from .schema_gen import generate_constant_pool, generate_schema
from .workloads import insert_workload, mixed_workload

#: Workload identifiers.
INSERT_WORKLOAD = "all-insert"
MIXED_WORKLOAD = "mixed-80-20"


@dataclass
class ExperimentConfig:
    """All knobs of the Section 6 experiment."""

    #: Number of relations in the synthetic schema.
    num_relations: int = 20
    #: Total number of mappings generated (prefixes of this family are used).
    max_mappings: int = 25
    #: Mapping densities to evaluate (must be ≤ ``max_mappings``).
    mapping_counts: PyTuple[int, ...] = (5, 10, 15, 20, 25)
    #: Number of seed tuples inserted while generating the initial database.
    num_initial_tuples: int = 120
    #: Number of updates per workload.
    num_updates: int = 40
    #: Runs (with different seeds) averaged per cell.
    runs_per_cell: int = 2
    #: Algorithms compared.
    algorithms: PyTuple[str, ...] = ("NAIVE", "COARSE", "PRECISE")
    #: Scheduling policy name (the paper uses step-level round robin).
    policy: str = "round-robin-step"
    #: Size of the constant pool.
    constant_pool_size: int = 50
    #: Base random seed.
    seed: int = 2009
    #: Fraction of deletes in the mixed workload.
    delete_fraction: float = 0.2
    #: Safety valve on total scheduler steps per run.
    max_total_steps: int = 2_000_000

    @classmethod
    def paper_scale(cls) -> "ExperimentConfig":
        """The configuration reported in the paper (expensive in pure Python)."""
        return cls(
            num_relations=100,
            max_mappings=100,
            mapping_counts=(20, 40, 60, 80, 100),
            num_initial_tuples=10_000,
            num_updates=500,
            runs_per_cell=100,
        )

    @classmethod
    def small_scale(cls) -> "ExperimentConfig":
        """The default scaled-down configuration (seconds per cell)."""
        return cls()

    @classmethod
    def tiny_scale(cls) -> "ExperimentConfig":
        """An even smaller configuration for unit tests and CI."""
        return cls(
            num_relations=8,
            max_mappings=10,
            mapping_counts=(4, 10),
            num_initial_tuples=40,
            num_updates=12,
            runs_per_cell=1,
        )

    def scaled(self, **overrides) -> "ExperimentConfig":
        """A copy with selected fields overridden."""
        return replace(self, **overrides)


@dataclass
class ExperimentEnvironment:
    """Everything shared between the cells of one experiment run."""

    config: ExperimentConfig
    schema: DatabaseSchema
    mappings: MappingSet
    constant_pool: List[str]
    initial: FrozenDatabase


def build_environment(
    config: ExperimentConfig, seed: Optional[int] = None
) -> ExperimentEnvironment:
    """Generate schema, the full mapping family and the initial database."""
    seed = config.seed if seed is None else seed
    rng = random.Random(seed)
    schema = generate_schema(
        num_relations=config.num_relations, rng=random.Random(rng.random())
    )
    constant_pool = generate_constant_pool(
        size=config.constant_pool_size, rng=random.Random(rng.random())
    )
    mappings = generate_mappings(
        schema,
        config.max_mappings,
        rng=random.Random(rng.random()),
        constant_pool=constant_pool,
    )
    initial_db = generate_initial_database(
        schema,
        mappings,
        config.num_initial_tuples,
        constant_pool,
        rng=random.Random(rng.random()),
    )
    return ExperimentEnvironment(
        config=config,
        schema=schema,
        mappings=mappings,
        constant_pool=constant_pool,
        initial=initial_db.snapshot(),
    )


def build_workload(
    environment: ExperimentEnvironment, kind: str, seed: int
) -> List[UserOperation]:
    """The update operations for one run of the given workload kind."""
    config = environment.config
    rng = random.Random(seed)
    if kind == INSERT_WORKLOAD:
        return insert_workload(
            environment.schema,
            config.num_updates,
            environment.constant_pool,
            rng=rng,
        )
    if kind == MIXED_WORKLOAD:
        return mixed_workload(
            environment.schema,
            environment.initial,
            config.num_updates,
            environment.constant_pool,
            rng=rng,
            delete_fraction=config.delete_fraction,
        )
    raise ValueError("unknown workload kind {!r}".format(kind))


def run_cell_once(
    environment: ExperimentEnvironment,
    mapping_count: int,
    algorithm: str,
    workload_kind: str,
    seed: int,
) -> RunStatistics:
    """One concurrent run: one workload, one mapping density, one algorithm."""
    config = environment.config
    mappings = mapping_prefix(environment.mappings, mapping_count)
    operations = build_workload(environment, workload_kind, seed)
    store = VersionedDatabase(environment.schema)
    store.load_initial(environment.initial)
    tracker = make_tracker(algorithm)
    scheduler = OptimisticScheduler(
        store=store,
        mappings=mappings,
        tracker=tracker,
        oracle=RandomOracle(seed=seed),
        policy=make_policy(config.policy),
        null_factory=NullFactory.avoiding_view(environment.initial, prefix="g"),
        max_total_steps=config.max_total_steps,
    )
    scheduler.submit_all(operations)
    return scheduler.run()


def run_workload_experiment(
    workload_kind: str,
    config: Optional[ExperimentConfig] = None,
    environment: Optional[ExperimentEnvironment] = None,
    progress: Optional[callable] = None,
) -> ExperimentResult:
    """Run the full grid (mapping counts × algorithms × runs) for one workload."""
    config = config if config is not None else ExperimentConfig.small_scale()
    if environment is None:
        environment = build_environment(config)
    result = ExperimentResult(workload=workload_kind)
    for mapping_count in config.mapping_counts:
        for algorithm in config.algorithms:
            cell = CellResult(
                workload=workload_kind,
                mapping_count=mapping_count,
                algorithm=algorithm,
            )
            for run_index in range(config.runs_per_cell):
                seed = config.seed + 1000 * run_index + mapping_count
                statistics = run_cell_once(
                    environment, mapping_count, algorithm, workload_kind, seed
                )
                cell.runs.append(statistics)
                if progress is not None:
                    progress(workload_kind, mapping_count, algorithm, run_index, statistics)
            result.cells.append(cell)
    return result


def run_figure_3(
    config: Optional[ExperimentConfig] = None,
    environment: Optional[ExperimentEnvironment] = None,
) -> ExperimentResult:
    """Figure 3: the all-insert workload."""
    return run_workload_experiment(INSERT_WORKLOAD, config, environment)


def run_figure_4(
    config: Optional[ExperimentConfig] = None,
    environment: Optional[ExperimentEnvironment] = None,
) -> ExperimentResult:
    """Figure 4: the mixed 80% insert / 20% delete workload."""
    return run_workload_experiment(MIXED_WORKLOAD, config, environment)


def _parse_arguments(argv: Optional[Sequence[str]] = None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        description="Reproduce the Youtopia update-exchange experiments (Figures 3 and 4)."
    )
    parser.add_argument(
        "--figure", type=int, choices=(3, 4), default=3, help="which figure to reproduce"
    )
    parser.add_argument(
        "--scale",
        choices=("tiny", "small", "paper"),
        default="small",
        help="experiment scale (paper scale is very slow in pure Python)",
    )
    parser.add_argument("--runs", type=int, default=None, help="override runs per cell")
    parser.add_argument("--updates", type=int, default=None, help="override updates per run")
    parser.add_argument("--seed", type=int, default=None, help="override the base seed")
    return parser.parse_args(argv)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Command-line entry point."""
    arguments = _parse_arguments(argv)
    if arguments.scale == "paper":
        config = ExperimentConfig.paper_scale()
    elif arguments.scale == "tiny":
        config = ExperimentConfig.tiny_scale()
    else:
        config = ExperimentConfig.small_scale()
    overrides = {}
    if arguments.runs is not None:
        overrides["runs_per_cell"] = arguments.runs
    if arguments.updates is not None:
        overrides["num_updates"] = arguments.updates
    if arguments.seed is not None:
        overrides["seed"] = arguments.seed
    if overrides:
        config = config.scaled(**overrides)

    def progress(workload, mapping_count, algorithm, run_index, statistics):
        print(
            "[{}] mappings={:>3} algo={:<7} run={} aborts={} cascading-requests={}".format(
                workload,
                mapping_count,
                algorithm,
                run_index,
                statistics.aborts,
                statistics.cascading_abort_requests,
            )
        )

    environment = build_environment(config)
    workload_kind = INSERT_WORKLOAD if arguments.figure == 3 else MIXED_WORKLOAD
    result = run_workload_experiment(workload_kind, config, environment, progress)
    print()
    print(result.format_table())
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the CLI
    raise SystemExit(main())
