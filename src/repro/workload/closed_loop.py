"""Closed-loop multi-client driver for the update-exchange service.

Models the human side of Youtopia at a controllable timescale: each client
keeps at most one update outstanding, thinks for a configurable number of
ticks between submissions, and frontier questions sit in the inbox for
``answer_delay`` ticks before *some* client (round-robin — usually not the
one that asked) answers them.  One tick = submissions, then a service pump,
then due answers, then another pump; parked updates take no steps in between,
so frontier waits are real waiting, not busy-stepping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

from ..core.frontier import (
    DeleteSubsetOperation,
    ExpandOperation,
    FrontierOperation,
    NegativeFrontierRequest,
    UnifyOperation,
)
from ..core.update import UserOperation
from ..service.inbox import InboxQuestion
from ..service.repository import RepositoryService
from ..service.session import ClientSession
from ..service.tickets import UpdateTicket

#: ``strategy(question) -> answer`` (an operation or an alternatives index).
AnswerStrategy = Callable[[InboxQuestion], Union[FrontierOperation, int]]


def conservative_answer(question: InboxQuestion) -> FrontierOperation:
    """The :class:`~repro.core.oracle.AlwaysUnifyOracle` policy as a strategy.

    Prefers unification (never grows the database at a frontier), so every
    chase the driver resumes terminates quickly — the sensible default for
    throughput measurements.
    """
    request = question.request
    if isinstance(request, NegativeFrontierRequest):
        return DeleteSubsetOperation((request.candidates[0],))
    for frontier_tuple in request.frontier_tuples:
        if frontier_tuple.candidates:
            return UnifyOperation(frontier_tuple, frontier_tuple.candidates[0])
    return ExpandOperation(request.frontier_tuples[0])


@dataclass
class ClientSpec:
    """Static description of one closed-loop client."""

    name: str
    #: The updates this client will submit, in order.
    operations: List[UserOperation]
    #: Ticks the client idles between a completed update and the next submission.
    think_time: int = 1


class ClosedLoopClient:
    """Runtime state of one client: its session, cursor, and outstanding ticket."""

    def __init__(self, spec: ClientSpec, session: ClientSession):
        self.spec = spec
        self.session = session
        self._cursor = 0
        self._thinking = 0
        self.outstanding: Optional[UpdateTicket] = None

    @property
    def is_done(self) -> bool:
        """``True`` once every operation was submitted and resolved."""
        return self.outstanding is None and self._cursor >= len(self.spec.operations)

    def tick(self, service: RepositoryService) -> Optional[UpdateTicket]:
        """Advance this client by one tick; returns a ticket if one was submitted."""
        if self.outstanding is not None:
            if not self.outstanding.is_done:
                return None
            self.outstanding = None
            self._thinking = self.spec.think_time
        if self._cursor >= len(self.spec.operations):
            return None
        if self._thinking > 0:
            self._thinking -= 1
            return None
        operation = self.spec.operations[self._cursor]
        self._cursor += 1
        self.outstanding = service.submit(self.session.session_id, operation)
        return self.outstanding


@dataclass
class DriverReport:
    """Outcome of one closed-loop run."""

    ticks: int = 0
    submitted: int = 0
    answered: int = 0
    #: ``True`` when every client finished within the tick budget.
    all_done: bool = False
    #: Frontier waits in ticks (asked tick → answered tick), per answer.
    frontier_wait_ticks: List[int] = field(default_factory=list)


class ClosedLoopDriver:
    """Drives a :class:`RepositoryService` with think-time clients and late answers."""

    def __init__(
        self,
        service: RepositoryService,
        specs: Sequence[ClientSpec],
        answer_delay: int = 1,
        answer_strategy: AnswerStrategy = conservative_answer,
    ):
        self.service = service
        self.answer_delay = answer_delay
        self.answer_strategy = answer_strategy
        self.clients = [
            ClosedLoopClient(spec, service.open_session(spec.name)) for spec in specs
        ]
        self._asked_tick: Dict[int, int] = {}
        self._answerer_cursor = 0

    def _next_answerer(self, asking_session: int) -> ClientSession:
        """Round-robin over clients, skipping the asker when someone else exists."""
        for _ in range(len(self.clients)):
            client = self.clients[self._answerer_cursor % len(self.clients)]
            self._answerer_cursor += 1
            if client.session.session_id != asking_session or len(self.clients) == 1:
                return client.session
        return self.clients[0].session

    def _refresh_questions(self, tick: int) -> None:
        """Stamp newly asked questions with *tick*; forget cancelled ones.

        Questions vanish from the inbox without being answered when their
        update is aborted and restarted; dropping their stale entries keeps
        the bookkeeping bounded by the number of *open* questions.
        """
        open_ids = set()
        for question in self.service.inbox():
            open_ids.add(question.decision_id)
            self._asked_tick.setdefault(question.decision_id, tick)
        for decision_id in list(self._asked_tick):
            if decision_id not in open_ids:
                del self._asked_tick[decision_id]

    def run(self, max_ticks: int = 10_000) -> DriverReport:
        """Run the closed loop until every client is done (or the tick budget ends)."""
        report = DriverReport()
        for tick in range(1, max_ticks + 1):
            report.ticks = tick
            # 1. clients submit (closed loop: one outstanding update each)
            for client in self.clients:
                if client.tick(self.service) is not None:
                    report.submitted += 1
            # 2. the service runs everything runnable; new questions get filed
            self.service.pump()
            self._refresh_questions(tick)
            # 3. questions that waited long enough get answered by a peer
            for question in list(self.service.inbox()):
                if tick - self._asked_tick[question.decision_id] < self.answer_delay:
                    continue
                answerer = self._next_answerer(question.ticket.session_id)
                self.service.answer(
                    answerer.session_id,
                    question.decision_id,
                    self.answer_strategy(question),
                )
                report.answered += 1
                report.frontier_wait_ticks.append(
                    tick - self._asked_tick.pop(question.decision_id)
                )
            # 4. resumed updates continue immediately; questions they park on
            #    are stamped *this* tick so their waits are not undercounted
            self.service.pump()
            self._refresh_questions(tick)
            if all(client.is_done for client in self.clients):
                report.all_done = True
                break
        return report
