"""Update workloads for the experiments (Section 6).

Two workloads are used, each of (paper-scale) 500 updates: an all-insert
workload and a mixed workload of eighty percent inserts and twenty percent
deletes.  Inserted values are, with equal probability, fresh values or values
from the constant pool; deleted tuples are chosen uniformly at random from a
uniformly chosen non-empty relation; the mixed workload's order is randomized
so that runs do not alternate large batches of inserts and deletes.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from ..core.schema import DatabaseSchema
from ..core.tuples import Tuple
from ..core.update import DeleteOperation, InsertOperation, UserOperation
from ..storage.interface import DatabaseView


def random_insert_operation(
    schema: DatabaseSchema,
    rng: random.Random,
    constant_pool: Sequence[str],
    fresh_counter: List[int],
    fresh_probability: float = 0.5,
) -> InsertOperation:
    """An insert into a uniformly chosen relation with fresh-or-pool values."""
    relation = rng.choice(schema.relation_names())
    arity = schema.arity_of(relation)
    values = []
    for _ in range(arity):
        if rng.random() < fresh_probability:
            fresh_counter[0] += 1
            values.append("fresh_{}".format(fresh_counter[0]))
        else:
            values.append(rng.choice(list(constant_pool)))
    return InsertOperation(Tuple(relation, values))


def random_delete_operation(
    initial: DatabaseView, rng: random.Random
) -> Optional[DeleteOperation]:
    """A delete of a uniformly chosen tuple from a uniformly chosen non-empty relation."""
    non_empty = [
        relation for relation in initial.relations() if initial.count(relation) > 0
    ]
    if not non_empty:
        return None
    relation = rng.choice(non_empty)
    rows = sorted(initial.tuples(relation), key=repr)
    return DeleteOperation(rng.choice(rows))


def insert_workload(
    schema: DatabaseSchema,
    count: int,
    constant_pool: Sequence[str],
    rng: Optional[random.Random] = None,
    fresh_probability: float = 0.5,
) -> List[UserOperation]:
    """The all-insert workload of Figure 3."""
    rng = rng if rng is not None else random.Random(11)
    fresh_counter = [0]
    return [
        random_insert_operation(schema, rng, constant_pool, fresh_counter, fresh_probability)
        for _ in range(count)
    ]


def mixed_workload(
    schema: DatabaseSchema,
    initial: DatabaseView,
    count: int,
    constant_pool: Sequence[str],
    rng: Optional[random.Random] = None,
    delete_fraction: float = 0.2,
    fresh_probability: float = 0.5,
) -> List[UserOperation]:
    """The 80% insert / 20% delete workload of Figure 4.

    The order of the generated operations is shuffled, as in the paper, so
    that runs do not consist of alternating large batches of inserts and
    deletes.
    """
    rng = rng if rng is not None else random.Random(13)
    num_deletes = int(round(count * delete_fraction))
    num_inserts = count - num_deletes
    fresh_counter = [0]
    operations: List[UserOperation] = [
        random_insert_operation(schema, rng, constant_pool, fresh_counter, fresh_probability)
        for _ in range(num_inserts)
    ]
    deletes: List[UserOperation] = []
    seen_rows = set()
    attempts = 0
    while len(deletes) < num_deletes and attempts < num_deletes * 20:
        attempts += 1
        operation = random_delete_operation(initial, rng)
        if operation is None:
            break
        if operation.row in seen_rows:
            continue
        seen_rows.add(operation.row)
        deletes.append(operation)
    operations.extend(deletes)
    rng.shuffle(operations)
    return operations
