"""Closed-loop driver over a federated network of peers.

The multi-peer sibling of :mod:`repro.workload.closed_loop`: each client
belongs to one peer, keeps at most one federated update outstanding (remote
ones count as outstanding until the commit notice crosses the transport
back), and thinks for a configurable number of rounds between submissions.
Frontier questions wait in their *originating* peer's federated inbox for
``answer_delay`` rounds before a client of that peer answers them — for a
question raised at a remote executing peer, the answer then travels back over
the transport like any other envelope.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple as PyTuple, Union

from ..core.frontier import (
    DeleteSubsetOperation,
    ExpandOperation,
    FrontierOperation,
    NegativeFrontierRequest,
)
from ..core.update import UserOperation
from ..federation.network import (
    FederatedNetwork,
    FederatedQuestion,
    FederatedTicket,
)
from .closed_loop import conservative_answer as _conservative_answer

#: ``strategy(question) -> answer`` over federated questions.
FederatedAnswerStrategy = Callable[[FederatedQuestion], Union[FrontierOperation, int]]


def expanding_answer(question: FederatedQuestion) -> FrontierOperation:
    """Always-expand: the pure restricted-chase policy.

    Mirrors :class:`~repro.core.oracle.AlwaysExpandOracle`, which the
    differential reference uses — under it both the federation and the
    single-repository chase perform plain chase steps, so their results are
    homomorphically equivalent whenever the mapping set terminates (the
    generated scenarios are acyclic by construction).  Negative frontiers
    delete the first candidate.
    """
    request = question.request
    if isinstance(request, NegativeFrontierRequest):
        return DeleteSubsetOperation((request.candidates[0],))
    return ExpandOperation(request.frontier_tuples[0])


def conservative_answer(question: FederatedQuestion) -> FrontierOperation:
    """Prefer unification — the terminating policy for cyclic topologies."""
    return _conservative_answer(question)


@dataclass
class FederatedClientSpec:
    """Static description of one closed-loop client at one peer."""

    peer: str
    name: str
    operations: List[UserOperation]
    think_time: int = 1


class _FederatedClient:
    def __init__(self, spec: FederatedClientSpec):
        self.spec = spec
        self._cursor = 0
        self._thinking = 0
        self.outstanding: Optional[FederatedTicket] = None

    @property
    def is_done(self) -> bool:
        return self.outstanding is None and self._cursor >= len(self.spec.operations)

    def tick(self, network: FederatedNetwork) -> Optional[FederatedTicket]:
        if self.outstanding is not None:
            if not self.outstanding.is_done:
                return None
            self.outstanding = None
            self._thinking = self.spec.think_time
        if self._cursor >= len(self.spec.operations):
            return None
        if self._thinking > 0:
            self._thinking -= 1
            return None
        operation = self.spec.operations[self._cursor]
        self._cursor += 1
        self.outstanding = network.submit(self.spec.peer, operation)
        return self.outstanding


@dataclass
class FederatedDriverReport:
    """Outcome of one federated closed-loop run."""

    rounds: int = 0
    submitted: int = 0
    answered: int = 0
    all_done: bool = False
    drained: bool = False
    #: Question waits in rounds (asked round -> answered round), per answer.
    question_wait_rounds: List[int] = field(default_factory=list)


class FederatedClosedLoopDriver:
    """Drives a :class:`FederatedNetwork` with think-time clients per peer."""

    def __init__(
        self,
        network: FederatedNetwork,
        specs: Sequence[FederatedClientSpec],
        answer_delay: int = 1,
        answer_strategy: FederatedAnswerStrategy = expanding_answer,
    ):
        self.network = network
        self.answer_delay = answer_delay
        self.answer_strategy = answer_strategy
        self.clients = [_FederatedClient(spec) for spec in specs]
        self._asked_round: Dict[PyTuple[str, PyTuple[str, int]], int] = {}

    def _refresh_questions(self, round_number: int) -> None:
        open_keys = set()
        for peer_name in self.network.peer_names():
            for question in self.network.inbox(peer_name):
                key = (peer_name, question.key)
                open_keys.add(key)
                self._asked_round.setdefault(key, round_number)
        for key in list(self._asked_round):
            if key not in open_keys:
                del self._asked_round[key]

    def _answer_due(self, round_number: int, report: FederatedDriverReport) -> None:
        for peer_name in self.network.peer_names():
            for question in list(self.network.inbox(peer_name)):
                key = (peer_name, question.key)
                asked = self._asked_round.get(key, round_number)
                if round_number - asked < self.answer_delay:
                    continue
                self.network.answer(
                    peer_name, question, self.answer_strategy(question)
                )
                report.answered += 1
                report.question_wait_rounds.append(round_number - asked)
                self._asked_round.pop(key, None)

    def run(self, max_rounds: int = 10_000) -> FederatedDriverReport:
        """Run until every client finished *and* the federation drained."""
        report = FederatedDriverReport()
        for round_number in range(1, max_rounds + 1):
            report.rounds = round_number
            for client in self.clients:
                if client.tick(self.network) is not None:
                    report.submitted += 1
            self.network.pump()
            self._refresh_questions(round_number)
            self._answer_due(round_number, report)
            self.network.pump()
            self._refresh_questions(round_number)
            if all(client.is_done for client in self.clients):
                report.all_done = True
                if self.network.quiescent():
                    report.drained = True
                    break
        return report
