"""Drivers over a federated network of peers: closed-loop and open-loop.

The closed-loop half is the multi-peer sibling of
:mod:`repro.workload.closed_loop`: each client belongs to one peer, keeps at
most one federated update outstanding (remote ones count as outstanding until
the commit notice crosses the transport back), and thinks for a configurable
number of rounds between submissions.  Frontier questions wait in their
*originating* peer's federated inbox for ``answer_delay`` rounds before a
client of that peer answers them — for a question raised at a remote
executing peer, the answer then travels back over the transport like any
other envelope.

The open-loop half (:class:`FederatedOpenLoopDriver`) submits *without
waiting for completions*: arrivals at each peer follow a seeded Poisson
process (or fixed-size batches on a fixed interval), which is what actually
exercises admission control — a closed loop self-paces and never builds the
bursty queues where compatible-group admission has headroom.  Admission
overflow is modelled as client backoff: the rejected operation retries on a
later round, counted in the report.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple as PyTuple, Union

from ..service.admission import AdmissionError

from ..core.frontier import (
    DeleteSubsetOperation,
    ExpandOperation,
    FrontierOperation,
    NegativeFrontierRequest,
)
from ..core.update import UserOperation
from ..federation.network import (
    FederatedNetwork,
    FederatedQuestion,
    FederatedTicket,
)
from .closed_loop import conservative_answer as _conservative_answer

#: ``strategy(question) -> answer`` over federated questions.
FederatedAnswerStrategy = Callable[[FederatedQuestion], Union[FrontierOperation, int]]


def expanding_answer(question: FederatedQuestion) -> FrontierOperation:
    """Always-expand: the pure restricted-chase policy.

    Mirrors :class:`~repro.core.oracle.AlwaysExpandOracle`, which the
    differential reference uses — under it both the federation and the
    single-repository chase perform plain chase steps, so their results are
    homomorphically equivalent whenever the mapping set terminates (the
    generated scenarios are acyclic by construction).  Negative frontiers
    delete the first candidate.
    """
    request = question.request
    if isinstance(request, NegativeFrontierRequest):
        return DeleteSubsetOperation((request.candidates[0],))
    return ExpandOperation(request.frontier_tuples[0])


def conservative_answer(question: FederatedQuestion) -> FrontierOperation:
    """Prefer unification — the terminating policy for cyclic topologies."""
    return _conservative_answer(question)


@dataclass
class FederatedClientSpec:
    """Static description of one closed-loop client at one peer."""

    peer: str
    name: str
    operations: List[UserOperation]
    think_time: int = 1


class _FederatedClient:
    def __init__(self, spec: FederatedClientSpec):
        self.spec = spec
        self._cursor = 0
        self._thinking = 0
        self.outstanding: Optional[FederatedTicket] = None

    @property
    def is_done(self) -> bool:
        return self.outstanding is None and self._cursor >= len(self.spec.operations)

    def tick(self, network: FederatedNetwork) -> Optional[FederatedTicket]:
        if self.outstanding is not None:
            if not self.outstanding.is_done:
                return None
            self.outstanding = None
            self._thinking = self.spec.think_time
        if self._cursor >= len(self.spec.operations):
            return None
        if self._thinking > 0:
            self._thinking -= 1
            return None
        operation = self.spec.operations[self._cursor]
        self._cursor += 1
        self.outstanding = network.submit(self.spec.peer, operation)
        return self.outstanding


@dataclass
class FederatedDriverReport:
    """Outcome of one federated closed-loop run."""

    rounds: int = 0
    submitted: int = 0
    answered: int = 0
    all_done: bool = False
    drained: bool = False
    #: Question waits in rounds (asked round -> answered round), per answer.
    question_wait_rounds: List[int] = field(default_factory=list)


@dataclass(frozen=True)
class ArrivalProcess:
    """How open-loop submissions arrive at each peer, per federation round.

    * ``kind="poisson"`` — every round, every peer draws
      ``k ~ Poisson(rate)`` and submits its next *k* operations (Knuth's
      product-of-uniforms sampler over a seeded RNG, so runs reproduce).
    * ``kind="batch"`` — every ``interval`` rounds, every peer submits a
      burst of ``batch_size`` operations at once (the worst case for
      admission, and the shape where compatible-group admission shows).
    """

    kind: str = "poisson"
    #: Mean arrivals per round per peer (Poisson mode).
    rate: float = 1.0
    #: Burst size (batch mode).
    batch_size: int = 4
    #: Rounds between bursts (batch mode).
    interval: int = 4
    seed: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ("poisson", "batch"):
            raise ValueError("arrival kind must be 'poisson' or 'batch'")
        if self.rate < 0:
            raise ValueError("the Poisson rate cannot be negative")
        if self.batch_size < 1 or self.interval < 1:
            raise ValueError("batch arrivals need batch_size >= 1 and interval >= 1")

    def draw(self, rng: random.Random, round_number: int) -> int:
        """Arrivals for one peer on one round."""
        if self.kind == "batch":
            # Bursts on rounds 1, 1+interval, 1+2*interval, ...; the modulo
            # is taken on (round - 1) so interval=1 means "every round".
            return self.batch_size if (round_number - 1) % self.interval == 0 else 0
        # Knuth: count multiplications of uniforms until the product drops
        # below e^-rate.  Exact for the modest per-round rates used here.
        threshold = math.exp(-self.rate)
        count = 0
        product = rng.random()
        while product > threshold:
            count += 1
            product *= rng.random()
        return count


@dataclass
class FederatedOpenLoopReport:
    """Outcome of one federated open-loop run."""

    rounds: int = 0
    submitted: int = 0
    answered: int = 0
    #: Submissions rejected by a full admission queue and retried later.
    backoffs: int = 0
    #: Deepest admission queue observed at any peer during the run.
    max_queue_depth: int = 0
    all_submitted: bool = False
    drained: bool = False


class FederatedOpenLoopDriver:
    """Submits per-peer operation streams on an open-loop arrival process."""

    def __init__(
        self,
        network: FederatedNetwork,
        operations: Dict[str, Sequence[UserOperation]],
        arrivals: ArrivalProcess,
        answer_delay: int = 1,
        answer_strategy: FederatedAnswerStrategy = expanding_answer,
    ):
        self.network = network
        self.arrivals = arrivals
        self.answer_delay = answer_delay
        self.answer_strategy = answer_strategy
        self._streams: Dict[str, List[UserOperation]] = {
            peer: list(stream) for peer, stream in operations.items()
        }
        self._rng = random.Random(arrivals.seed)
        self._asked_round: Dict[PyTuple[str, PyTuple[str, int]], int] = {}

    def _submit_arrivals(
        self, round_number: int, report: FederatedOpenLoopReport
    ) -> None:
        for peer in self.network.peer_names():
            stream = self._streams.get(peer)
            if not stream:
                continue
            due = min(self.arrivals.draw(self._rng, round_number), len(stream))
            for _ in range(due):
                operation = stream[0]
                try:
                    self.network.submit(peer, operation)
                except AdmissionError:
                    # Bounded admission queue: the open loop backs off and
                    # re-offers the same operation on a later round (FIFO
                    # order within the peer's stream is preserved).
                    report.backoffs += 1
                    break
                stream.pop(0)
                report.submitted += 1

    def _observe_queues(self, report: FederatedOpenLoopReport) -> None:
        for peer in self.network.peers():
            report.max_queue_depth = max(
                report.max_queue_depth, peer.service.queue_depth
            )

    def _refresh_questions(self, round_number: int) -> None:
        open_keys = set()
        for peer_name in self.network.peer_names():
            for question in self.network.inbox(peer_name):
                key = (peer_name, question.key)
                open_keys.add(key)
                self._asked_round.setdefault(key, round_number)
        for key in list(self._asked_round):
            if key not in open_keys:
                del self._asked_round[key]

    def _answer_due(
        self, round_number: int, report: FederatedOpenLoopReport
    ) -> None:
        for peer_name in self.network.peer_names():
            for question in list(self.network.inbox(peer_name)):
                key = (peer_name, question.key)
                asked = self._asked_round.get(key, round_number)
                if round_number - asked < self.answer_delay:
                    continue
                self.network.answer(
                    peer_name, question, self.answer_strategy(question)
                )
                report.answered += 1
                self._asked_round.pop(key, None)

    def run(self, max_rounds: int = 10_000) -> FederatedOpenLoopReport:
        """Run until every stream is submitted *and* the federation drained."""
        report = FederatedOpenLoopReport()
        for round_number in range(1, max_rounds + 1):
            report.rounds = round_number
            self._submit_arrivals(round_number, report)
            self._observe_queues(report)
            self.network.pump()
            self._refresh_questions(round_number)
            self._answer_due(round_number, report)
            self.network.pump()
            self._refresh_questions(round_number)
            if not any(self._streams.values()):
                report.all_submitted = True
                if self.network.quiescent():
                    report.drained = True
                    break
        return report


class FederatedClosedLoopDriver:
    """Drives a :class:`FederatedNetwork` with think-time clients per peer."""

    def __init__(
        self,
        network: FederatedNetwork,
        specs: Sequence[FederatedClientSpec],
        answer_delay: int = 1,
        answer_strategy: FederatedAnswerStrategy = expanding_answer,
    ):
        self.network = network
        self.answer_delay = answer_delay
        self.answer_strategy = answer_strategy
        self.clients = [_FederatedClient(spec) for spec in specs]
        self._asked_round: Dict[PyTuple[str, PyTuple[str, int]], int] = {}

    def _refresh_questions(self, round_number: int) -> None:
        open_keys = set()
        for peer_name in self.network.peer_names():
            for question in self.network.inbox(peer_name):
                key = (peer_name, question.key)
                open_keys.add(key)
                self._asked_round.setdefault(key, round_number)
        for key in list(self._asked_round):
            if key not in open_keys:
                del self._asked_round[key]

    def _answer_due(self, round_number: int, report: FederatedDriverReport) -> None:
        for peer_name in self.network.peer_names():
            for question in list(self.network.inbox(peer_name)):
                key = (peer_name, question.key)
                asked = self._asked_round.get(key, round_number)
                if round_number - asked < self.answer_delay:
                    continue
                self.network.answer(
                    peer_name, question, self.answer_strategy(question)
                )
                report.answered += 1
                report.question_wait_rounds.append(round_number - asked)
                self._asked_round.pop(key, None)

    def run(self, max_rounds: int = 10_000) -> FederatedDriverReport:
        """Run until every client finished *and* the federation drained."""
        report = FederatedDriverReport()
        for round_number in range(1, max_rounds + 1):
            report.rounds = round_number
            for client in self.clients:
                if client.tick(self.network) is not None:
                    report.submitted += 1
            self.network.pump()
            self._refresh_questions(round_number)
            self._answer_due(round_number, report)
            self.network.pump()
            self._refresh_questions(round_number)
            if all(client.is_done for client in self.clients):
                report.all_done = True
                if self.network.quiescent():
                    report.drained = True
                    break
        return report
