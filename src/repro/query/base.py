"""Base class for the read queries performed by chase steps.

Section 4.2 of the paper identifies the reads a chase step performs with the
answers to a set of *read queries*: violation queries (to detect the new
violations a write causes) and correction queries (to decide how a violation
can be repaired).  The concurrency-control layer stores these query objects —
not their answers alone — so that a later write can be checked against them
(Algorithm 4) and so that read dependencies can be computed (Section 5.1).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import FrozenSet, Hashable

from ..core.writes import Write
from ..storage.interface import DatabaseView


class ReadQuery(ABC):
    """A loggable, re-evaluable read performed by a chase step."""

    #: Short machine-readable kind, e.g. ``"violation"`` or ``"more-specific"``.
    kind: str = "read"

    @abstractmethod
    def relations(self) -> FrozenSet[str]:
        """The relations this query reads from.

        Used by the COARSE dependency tracker (any update that wrote to one of
        these relations is conservatively considered a dependency) and as a
        cheap pre-filter before the precise delta check.
        """

    @abstractmethod
    def evaluate(self, view: DatabaseView) -> Hashable:
        """Evaluate the query on *view*; the result must be hashable.

        Hashability lets the scheduler fingerprint answers and lets the
        delta check compare "with the write" against "without the write".
        """

    def might_be_affected_by(self, write: Write) -> bool:
        """Cheap, database-free over-approximation of :meth:`affected_by`.

        The default implementation only checks relation overlap.  Correction
        queries override this with an *exact* database-free test (the paper
        notes that "a given tuple write changes the answer to a correction
        query either on all databases, or on none").
        """
        return write.relation in self.relations()

    def affected_by(self, write: Write, view: DatabaseView) -> bool:
        """Exact test: does *write* change this query's answer on *view*?

        *view* is the state **including** the write; the implementation
        compares the answer on *view* against the answer on the overlay view
        with the write undone.  Subclasses with database-free exact tests
        override this to avoid touching the database.
        """
        if not self.might_be_affected_by(write):
            return False
        from ..storage.overlay import view_without_write

        return self.evaluate(view) != self.evaluate(view_without_write(view, write))

    def evaluation_cost(self) -> int:
        """Rough unit cost of evaluating this query, for the cost model.

        The experiment's third panel reports the slowdown of PRECISE relative
        to COARSE; besides wall-clock time we also accumulate these unit costs
        so that scaled-down runs still have a meaningful, deterministic
        execution-time proxy.
        """
        return max(1, len(self.relations()))
