"""The SQL chase path: set-based violation evaluation over a SQLite mirror.

ROADMAP item 3 ("push the chase into SQL").  The Python hot path evaluates a
violation query by backtracking over per-tuple index lookups
(:meth:`~repro.query.compiled.CompiledConjunction.find_matches`); this module
compiles each :class:`~repro.query.compiled.CompiledTgd` into **one** prepared,
set-based SQL statement of the paper's Example 4.1 shape —

    ``SELECT DISTINCT <lhs vars> FROM <lhs join> WHERE <lhs constraints>
    AND NOT EXISTS (SELECT 1 FROM <rhs join> WHERE <rhs constraints>)``

— and executes it against the :class:`~repro.storage.mirror.DeltaMirror`'s
SQLite shadow, returning *all* violations of the mapping in one engine call.

Readers over the multiversion store see the committed baseline **plus** their
in-flight delta.  Rather than materializing a per-reader copy, the statement
wraps each delta-touched relation in a CTE that adjusts the mirrored table
in-query::

    WITH "delta_R"(a, b) AS (
        SELECT a, b FROM "R" EXCEPT VALUES (?, ?) UNION VALUES (?, ?)
    ) ...

(compound selects associate left-to-right, so this reads
``(R minus removed) union added``).  Statement *skeletons* — the SQL text plus
its parameter-slot spec — are cached per (compiled plan, seed-variable set,
delta shape): the text never embeds values, so one skeleton serves every seed
value and every delta with the same per-relation row counts, and sqlite3's own
statement cache (keyed by SQL text) turns re-execution into a bind + step.

:class:`SqlViolationEvaluator` is a drop-in for the Python path: it returns
the same ``frozenset`` of :class:`~repro.query.violation_query.ViolationRow`
(witnesses are reconstructed by instantiating the LHS atoms with the answer
assignment — a violation row is fully determined by its bindings), so cost
panels, read logs, aborts and cascades are bit-identical when the flag flips.
In ``check`` mode every SQL answer is compared against the Python oracle and
a divergence raises.
"""

from __future__ import annotations

import os
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple as PyTuple

from ..codec.rows import decode_term, encode_row, encode_term
from ..core.atoms import Atom
from ..core.terms import DataTerm, Variable, is_variable
from .compiled import CompiledTgd, get_plan
from .sql import quote_identifier
from .violation_query import ViolationQuery, ViolationRow

__all__ = [
    "SqlChaseDivergence",
    "SqlViolationEvaluator",
    "resolve_sql_chase",
]

#: Keep well under SQLite's historical 999-host-parameter limit; a statement
#: that would need more (a huge uncompacted delta) falls back to the Python
#: evaluator for that one call instead of failing.
_MAX_PARAMETERS = 900

#: Bounded skeleton cache (FIFO, far above any realistic working set — one
#: entry per (mapping, seed-variable set, delta shape) actually asked).
_STATEMENT_CACHE_LIMIT = 8192


def resolve_sql_chase(setting: Optional[object] = None) -> str:
    """Normalize a ``sql_chase`` flag to ``""`` (off), ``"on"`` or ``"check"``.

    ``None`` defers to the ``REPRO_SQL_CHASE`` environment variable, so
    setting it process-wide flips every engine, scheduler and service whose
    constructor was not given an explicit value.  ``check`` (or
    ``differential``) enables the paranoid mode: every SQL answer is verified
    against the Python evaluator.
    """
    if setting is None:
        setting = os.environ.get("REPRO_SQL_CHASE", "")
    if isinstance(setting, str):
        text = setting.strip().lower()
        if text in ("", "0", "false", "off", "no"):
            return ""
        if text in ("check", "differential", "diff"):
            return "check"
        return "on"
    return "on" if setting else ""


class SqlChaseDivergence(AssertionError):
    """Raised in ``check`` mode when SQL and Python answers disagree."""


#: Per-relation delta relative to the *mirror*: ``(removed, added)`` — rows
#: subtracted from the mirrored table, rows unioned into it.
Delta = Dict[str, PyTuple[List, List]]


class _Skeleton:
    """A rendered statement: SQL text plus its parameter-slot spec."""

    __slots__ = ("sql", "delta_spec", "slots", "answer_variables")

    def __init__(self, sql, delta_spec, slots, answer_variables):
        self.sql = sql
        #: ``(relation, n_removed, n_added)`` per CTE, in render order.
        self.delta_spec = delta_spec
        #: ``("var", Variable)`` / ``("const", encoded)`` in textual order.
        self.slots = slots
        #: Sorted LHS variables, one answer column each.
        self.answer_variables = answer_variables


def _render_conjunction(
    atoms: Sequence[Atom],
    schema,
    seed_keys: FrozenSet[Variable],
    table_names: Dict[str, str],
    bound_columns: Dict[Variable, str],
    alias_state: List[int],
):
    """FROM/WHERE fragments with parameter *slots* instead of baked values.

    Mirrors :func:`repro.query.sql.conjunction_sql` exactly (same join
    structure, same textual parameter order) except that seeded variables and
    constants emit slot descriptors, so the text is reusable across values,
    and relation references go through *table_names* (delta CTEs).
    """
    from_parts: List[str] = []
    where_parts: List[str] = []
    slots: List[PyTuple[str, object]] = []
    variable_columns: Dict[Variable, str] = dict(bound_columns)
    for atom in atoms:
        alias_state[0] += 1
        alias = "t{}".format(alias_state[0])
        table = table_names.get(atom.relation) or quote_identifier(atom.relation)
        from_parts.append("{} AS {}".format(table, alias))
        attributes = schema.relation(atom.relation).attributes
        for position, term in enumerate(atom.terms):
            column = "{}.{}".format(alias, quote_identifier(attributes[position]))
            if is_variable(term):
                if term in seed_keys:
                    where_parts.append("{} = ?".format(column))
                    slots.append(("var", term))
                    if term not in variable_columns:
                        variable_columns[term] = column
                elif term in variable_columns:
                    where_parts.append(
                        "{} = {}".format(column, variable_columns[term])
                    )
                else:
                    variable_columns[term] = column
            else:
                where_parts.append("{} = ?".format(column))
                slots.append(("const", encode_term(term)))
    from_clause = ", ".join(from_parts)
    where_clause = " AND ".join(where_parts) if where_parts else "1=1"
    return from_clause, where_clause, slots, variable_columns


def _values_clause(n_rows: int, arity: int) -> str:
    row = "({})".format(", ".join("?" for _ in range(arity)))
    return ", ".join(row for _ in range(n_rows))


def _render_statement(
    plan: CompiledTgd,
    schema,
    seed_keys: FrozenSet[Variable],
    delta_spec: PyTuple[PyTuple[str, int, int], ...],
) -> _Skeleton:
    """Render the full violation statement for one (plan, seed, delta) shape."""
    table_names: Dict[str, str] = {}
    cte_parts: List[str] = []
    for relation, n_removed, n_added in delta_spec:
        attributes = schema.relation(relation).attributes
        columns = ", ".join(quote_identifier(a) for a in attributes)
        body = "SELECT {} FROM {}".format(columns, quote_identifier(relation))
        if n_removed:
            body += " EXCEPT VALUES " + _values_clause(n_removed, len(attributes))
        if n_added:
            body += " UNION VALUES " + _values_clause(n_added, len(attributes))
        cte_name = quote_identifier("delta_" + relation)
        cte_parts.append("{}({}) AS ({})".format(cte_name, columns, body))
        table_names[relation] = cte_name

    alias_state = [0]
    lhs_atoms = plan.tgd.lhs
    lhs_from, lhs_where, lhs_slots, variable_columns = _render_conjunction(
        lhs_atoms, schema, seed_keys, table_names, {}, alias_state
    )
    exported = {
        variable: column
        for variable, column in variable_columns.items()
        if variable in plan.frontier_variables
    }
    rhs_from, rhs_where, rhs_slots, _ = _render_conjunction(
        plan.tgd.rhs, schema, frozenset(), table_names, exported, alias_state
    )
    answer_variables = sorted(plan.lhs_variables, key=lambda v: v.name)
    select_list = ", ".join(
        variable_columns[variable] for variable in answer_variables
    )
    sql = (
        "SELECT DISTINCT {select} FROM {lhs_from} WHERE {lhs_where} "
        "AND NOT EXISTS (SELECT 1 FROM {rhs_from} WHERE {rhs_where})"
    ).format(
        select=select_list or "1",
        lhs_from=lhs_from,
        lhs_where=lhs_where,
        rhs_from=rhs_from,
        rhs_where=rhs_where,
    )
    if cte_parts:
        sql = "WITH {} {}".format(", ".join(cte_parts), sql)
    return _Skeleton(sql, delta_spec, lhs_slots + rhs_slots, answer_variables)


class SqlViolationEvaluator:
    """Evaluates :class:`ViolationQuery` objects through the SQLite mirror.

    Drop-in for ``query.evaluate(view)``: :meth:`evaluate` returns the same
    ``frozenset`` of :class:`ViolationRow` the Python path produces.  The
    mirror supplies both the engine connection and the per-reader delta
    (:meth:`~repro.storage.mirror.DeltaMirror.delta_for_view`).
    """

    def __init__(self, mirror, differential: bool = False):
        self._mirror = mirror
        self._differential = differential
        #: (plan identity, seed-variable set, delta shape) -> skeleton.  Plans
        #: are identity-hashed objects out of the bounded ``get_plan`` cache;
        #: FIFO eviction here bounds the skeletons a long-running service with
        #: churned mapping sets can accrete.
        self._skeletons: Dict[object, _Skeleton] = {}
        self.evaluations = 0
        self.statements_rendered = 0
        self.statement_cache_hits = 0
        #: Calls answered by the Python evaluator because the delta was too
        #: large to materialize as host parameters (never silently wrong —
        #: the two paths agree; this only trades speed).
        self.python_fallbacks = 0

    # ------------------------------------------------------------------
    def evaluate(self, query: ViolationQuery, view) -> FrozenSet[ViolationRow]:
        """All violations of *query* on *view*, via one set-based statement."""
        self.evaluations += 1
        plan = get_plan(query.tgd)
        seed = query.seed
        delta = self._mirror.delta_for_view(view)
        delta_spec = tuple(
            (relation, len(delta[relation][0]), len(delta[relation][1]))
            for relation in sorted(plan.relations)
            if relation in delta
            and (delta[relation][0] or delta[relation][1])
        )
        schema = self._mirror.schema
        key = (plan, frozenset(seed), delta_spec)
        skeleton = self._skeletons.get(key)
        if skeleton is None:
            skeleton = _render_statement(plan, schema, frozenset(seed), delta_spec)
            while len(self._skeletons) >= _STATEMENT_CACHE_LIMIT:
                self._skeletons.pop(next(iter(self._skeletons)))
            self._skeletons[key] = skeleton
            self.statements_rendered += 1
        else:
            self.statement_cache_hits += 1

        parameters: List[str] = []
        for relation, _, _ in skeleton.delta_spec:
            removed, added = delta[relation]
            for row in removed:
                parameters.extend(encode_row(row))
            for row in added:
                parameters.extend(encode_row(row))
        for kind, payload in skeleton.slots:
            if kind == "var":
                parameters.append(encode_term(seed[payload]))
            else:
                parameters.append(payload)

        if len(parameters) > _MAX_PARAMETERS:
            self.python_fallbacks += 1
            return query.evaluate(view)

        cursor = self._mirror.execute(skeleton.sql, parameters)
        answer_variables = skeleton.answer_variables
        lhs_atoms = plan.tgd.lhs
        rows: List[ViolationRow] = []
        for fields in cursor.fetchall():
            assignment = {
                variable: decode_term(field)
                for variable, field in zip(answer_variables, fields)
            }
            rows.append(
                ViolationRow(
                    bindings=frozenset(assignment.items()),
                    witness=tuple(
                        atom.instantiate(assignment) for atom in lhs_atoms
                    ),
                )
            )
        result = frozenset(rows)
        if self._differential:
            expected = query.evaluate(view)
            if result != expected:
                raise SqlChaseDivergence(
                    "SQL chase diverged from the Python evaluator on {!r}:\n"
                    "  sql only:    {}\n  python only: {}\n  statement: {}".format(
                        query,
                        sorted(
                            map(repr, result - expected)
                        ),
                        sorted(map(repr, expected - result)),
                        skeleton.sql,
                    )
                )
        return result
