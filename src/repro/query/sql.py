"""SQL generation for conjunctive and violation queries (SQLite dialect).

Section 4.2 presents the read queries of a chase step as SQL
(``SELECT * FROM (LHS query) WHERE NOT EXISTS (SELECT * FROM (RHS query))``,
Example 4.1).  This module renders our query objects into exactly that shape
so the SQLite backend can evaluate them, and so tests can cross-check the
in-memory evaluator against a real SQL engine.

Terms are encoded into a single text column per attribute: constants as
``c:<value>`` and labeled nulls as ``n:<name>``.  The encoding preserves
equality, which is all conjunctive-query evaluation needs; its single
definition lives in :mod:`repro.codec.rows` (re-exported here for backward
compatibility) and is shared with the SQLite backend.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple as PyTuple

from ..codec.rows import decode_row, decode_term, encode_row, encode_term
from ..core.atoms import Atom
from ..core.schema import DatabaseSchema
from ..core.terms import DataTerm, Variable, is_variable
from ..core.tgd import Tgd

__all__ = [
    "conjunction_sql",
    "conjunctive_query_sql",
    "create_index_statements",
    "create_table_statement",
    "decode_row",
    "decode_term",
    "encode_row",
    "encode_term",
    "quote_identifier",
    "violation_query_sql",
]


def quote_identifier(name: str) -> str:
    """Quote an SQL identifier."""
    return '"{}"'.format(name.replace('"', '""'))


def create_table_statement(schema: DatabaseSchema, relation: str) -> str:
    """``CREATE TABLE`` statement for *relation* (all columns TEXT)."""
    relation_schema = schema.relation(relation)
    columns = ", ".join(
        "{} TEXT NOT NULL".format(quote_identifier(attribute))
        for attribute in relation_schema.attributes
    )
    return "CREATE TABLE IF NOT EXISTS {} ({})".format(
        quote_identifier(relation), columns
    )


def create_index_statements(schema: DatabaseSchema, relation: str) -> List[str]:
    """Companion DDL: one single-column index per attribute of *relation*.

    Set-based violation evaluation joins relations on arbitrary attribute
    pairs, so the SQL chase mirror indexes every column.  The statements are
    a *companion* to :func:`create_table_statement` rather than part of it —
    callers opt in (the :class:`~repro.storage.sqlite_backend.SQLiteDatabase`
    constructor's ``create_indexes`` flag, always-on in the chase mirror), so
    the golden ``CREATE TABLE`` text existing tests pin stays stable.
    """
    relation_schema = schema.relation(relation)
    return [
        "CREATE INDEX IF NOT EXISTS {} ON {} ({})".format(
            quote_identifier("idx_{}_{}".format(relation, attribute)),
            quote_identifier(relation),
            quote_identifier(attribute),
        )
        for attribute in relation_schema.attributes
    ]


class _AliasAllocator:
    """Hands out table aliases ``t1, t2, ...`` for the atoms of a query."""

    def __init__(self) -> None:
        self._counter = 0

    def next(self) -> str:
        self._counter += 1
        return "t{}".format(self._counter)


def _column(schema: DatabaseSchema, alias: str, relation: str, position: int) -> str:
    attribute = schema.relation(relation).attributes[position]
    return "{}.{}".format(alias, quote_identifier(attribute))


def conjunction_sql(
    atoms: Sequence[Atom],
    schema: DatabaseSchema,
    seed: Optional[Dict[Variable, DataTerm]] = None,
    bound_columns: Optional[Dict[Variable, str]] = None,
    aliases: Optional[_AliasAllocator] = None,
) -> PyTuple[str, str, List[str], Dict[Variable, str]]:
    """Render a conjunction of atoms as FROM/WHERE fragments.

    Returns ``(from_clause, where_clause, parameters, variable_columns)``
    where ``variable_columns`` maps each variable to a column expression that
    carries its value.  ``bound_columns`` lets a correlated subquery refer to
    columns of the outer query (used for the NOT EXISTS of violation queries).
    """
    seed = seed or {}
    bound_columns = bound_columns or {}
    aliases = aliases or _AliasAllocator()
    from_parts: List[str] = []
    where_parts: List[str] = []
    parameters: List[str] = []
    variable_columns: Dict[Variable, str] = dict(bound_columns)

    for atom in atoms:
        alias = aliases.next()
        from_parts.append("{} AS {}".format(quote_identifier(atom.relation), alias))
        for position, term in enumerate(atom.terms):
            column = _column(schema, alias, atom.relation, position)
            if is_variable(term):
                if term in seed:
                    where_parts.append("{} = ?".format(column))
                    parameters.append(encode_term(seed[term]))
                    if term not in variable_columns:
                        variable_columns[term] = column
                elif term in variable_columns:
                    where_parts.append("{} = {}".format(column, variable_columns[term]))
                else:
                    variable_columns[term] = column
            else:
                where_parts.append("{} = ?".format(column))
                parameters.append(encode_term(term))
    from_clause = ", ".join(from_parts)
    where_clause = " AND ".join(where_parts) if where_parts else "1=1"
    return from_clause, where_clause, parameters, variable_columns


def conjunctive_query_sql(
    atoms: Sequence[Atom],
    answer_variables: Sequence[Variable],
    schema: DatabaseSchema,
    seed: Optional[Dict[Variable, DataTerm]] = None,
) -> PyTuple[str, List[str]]:
    """``SELECT DISTINCT <answers> FROM ... WHERE ...`` for a conjunctive query."""
    from_clause, where_clause, parameters, variable_columns = conjunction_sql(
        atoms, schema, seed=seed
    )
    if answer_variables:
        select_list = ", ".join(
            variable_columns[variable] for variable in answer_variables
        )
    else:
        select_list = "1"
    sql = "SELECT DISTINCT {} FROM {} WHERE {}".format(
        select_list, from_clause, where_clause
    )
    return sql, parameters


def violation_query_sql(
    tgd: Tgd,
    schema: DatabaseSchema,
    seed: Optional[Dict[Variable, DataTerm]] = None,
) -> PyTuple[str, List[str], List[Variable]]:
    """The paper's violation query shape for *tgd* (Example 4.1).

    Returns ``(sql, parameters, answer_variables)``; the answer columns carry
    the values of the LHS variables, in sorted name order, so callers can
    rebuild violation assignments from result rows.
    """
    aliases = _AliasAllocator()
    lhs_variables = sorted(tgd.lhs_variables(), key=lambda variable: variable.name)
    from_clause, where_clause, parameters, variable_columns = conjunction_sql(
        tgd.lhs, schema, seed=seed, aliases=aliases
    )
    exported = {
        variable: column
        for variable, column in variable_columns.items()
        if variable in tgd.frontier_variables()
    }
    rhs_from, rhs_where, rhs_parameters, _ = conjunction_sql(
        tgd.rhs, schema, seed=None, bound_columns=exported, aliases=aliases
    )
    select_list = ", ".join(variable_columns[variable] for variable in lhs_variables)
    sql = (
        "SELECT DISTINCT {select} FROM {lhs_from} WHERE {lhs_where} "
        "AND NOT EXISTS (SELECT 1 FROM {rhs_from} WHERE {rhs_where})"
    ).format(
        select=select_list or "1",
        lhs_from=from_clause,
        lhs_where=where_clause,
        rhs_from=rhs_from,
        rhs_where=rhs_where,
    )
    return sql, parameters + rhs_parameters, lhs_variables
