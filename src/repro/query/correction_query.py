"""Correction queries: the reads needed to decide how to repair a violation.

Section 4.2 identifies two correction-query shapes for LHS-violations:

* *more-specific* queries — given a frontier tuple ``t`` of relation ``R``,
  find the tuples ``t' ∈ R`` that are more specific than ``t`` (these are the
  unification candidates, and their existence is what makes ``t`` a frontier
  tuple in the first place);
* *null-occurrence* queries — for a labeled null ``x`` that would disappear in
  a unification, find every tuple containing ``x`` (all of them must be
  updated when the unification is chosen).

Both have exact, database-free tests for "does this write change my answer?",
which the paper exploits when computing read dependencies (Section 5.1.1).
"""

from __future__ import annotations

from typing import FrozenSet, List

from ..core.terms import LabeledNull
from ..core.tuples import Tuple
from ..core.writes import Write
from ..storage.interface import DatabaseView
from .base import ReadQuery


class MoreSpecificQuery(ReadQuery):
    """Find all visible tuples more specific than a pattern tuple."""

    kind = "more-specific"

    def __init__(self, pattern: Tuple):
        self._pattern = pattern

    @property
    def pattern(self) -> Tuple:
        """The (usually frontier) tuple the candidates must refine."""
        return self._pattern

    def relations(self) -> FrozenSet[str]:
        return frozenset({self._pattern.relation})

    def evaluate(self, view: DatabaseView) -> FrozenSet[Tuple]:
        return frozenset(view.more_specific_tuples(self._pattern))

    def might_be_affected_by(self, write: Write) -> bool:
        # Exact and database-free: the write changes the answer iff one of the
        # tuple values it adds or removes is itself more specific than the
        # pattern.  (Adding such a tuple adds an answer; removing one removes
        # an answer; nothing else can matter.)
        if write.relation != self._pattern.relation:
            return False
        return any(
            row.is_more_specific_than(self._pattern) for row in write.rows_touched()
        )

    def affected_by(self, write: Write, view: DatabaseView) -> bool:
        return self.might_be_affected_by(write)

    def __repr__(self) -> str:
        return "MoreSpecificQuery({!r})".format(self._pattern)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MoreSpecificQuery):
            return NotImplemented
        return self._pattern == other._pattern

    def __hash__(self) -> int:
        return hash(("more-specific", self._pattern))


class NullOccurrenceQuery(ReadQuery):
    """Find every visible tuple containing a given labeled null."""

    kind = "null-occurrence"

    def __init__(self, null: LabeledNull, relations: FrozenSet[str] = frozenset()):
        self._null = null
        # The set of all relation names is recorded only so that COARSE-style
        # relation-level reasoning has something to work with; the exact
        # affectedness test below does not need it.
        self._relations = relations

    @property
    def null(self) -> LabeledNull:
        """The labeled null whose occurrences are sought."""
        return self._null

    def relations(self) -> FrozenSet[str]:
        return self._relations

    def evaluate(self, view: DatabaseView) -> FrozenSet[Tuple]:
        return frozenset(view.tuples_containing_null(self._null))

    def might_be_affected_by(self, write: Write) -> bool:
        # Exact and database-free (this is the paper's own example: "if a
        # correction query asks for all tuples containing variable x2, a write
        # changes the answer iff the tuple written contains x2").
        return any(row.contains_null(self._null) for row in write.rows_touched())

    def affected_by(self, write: Write, view: DatabaseView) -> bool:
        return self.might_be_affected_by(write)

    def __repr__(self) -> str:
        return "NullOccurrenceQuery({})".format(self._null)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, NullOccurrenceQuery):
            return NotImplemented
        return self._null == other._null

    def __hash__(self) -> int:
        return hash(("null-occurrence", self._null))


def correction_queries_for_frontier_tuple(
    frontier_tuple: Tuple, view: DatabaseView
) -> List[ReadQuery]:
    """The correction queries the chase issues for one positive frontier tuple.

    First the more-specific query; then, if candidates exist, one
    null-occurrence query per labeled null of the frontier tuple (those are
    the nulls whose occurrences would have to be rewritten by a unification).
    """
    queries: List[ReadQuery] = [MoreSpecificQuery(frontier_tuple)]
    candidates = view.more_specific_tuples(frontier_tuple)
    if candidates:
        for null in sorted(frontier_tuple.null_set(), key=lambda n: n.name):
            queries.append(NullOccurrenceQuery(null))
    return queries
