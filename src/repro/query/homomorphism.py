"""Homomorphism search: matching conjunctions of atoms against a database view.

Satisfaction of the left- or right-hand side of a mapping is defined by the
existence of a homomorphism from the formula into the database (Section 2 of
the paper, following Fagin et al.).  The search itself — a backtracking join,
atoms matched most-bound-first with an index lookup whenever some position is
already bound — lives in :class:`repro.query.compiled.CompiledConjunction`;
this module keeps the historical ad-hoc entry points, which compile the
conjunction on the fly.  Hot callers (the chase, the violation queries) hold
a compiled plan instead and skip the per-call compilation.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..core.atoms import Atom
from ..storage.interface import DatabaseView
from .compiled import Assignment, CompiledConjunction, Match


def find_matches(
    atoms: Sequence[Atom],
    view: DatabaseView,
    assignment: Optional[Assignment] = None,
    limit: Optional[int] = None,
) -> List[Match]:
    """Find homomorphisms from the conjunction *atoms* into *view*.

    ``assignment`` seeds the search with pre-bound variables (for example the
    bindings obtained by matching a newly written tuple against one atom).
    ``limit`` stops the search after that many matches, which makes existence
    checks cheap.

    Returns a list of (assignment, witness-tuples) pairs.  The witness tuples
    are reported in the order of the *original* atom sequence, which is what
    the violation machinery expects when it builds witnesses.
    """
    return CompiledConjunction(atoms).find_matches(view, assignment, limit)


def exists_match(
    atoms: Sequence[Atom],
    view: DatabaseView,
    assignment: Optional[Assignment] = None,
) -> bool:
    """``True`` when at least one homomorphism extending *assignment* exists."""
    return bool(find_matches(atoms, view, assignment, limit=1))


def formula_satisfied(
    lhs: Sequence[Atom],
    rhs: Sequence[Atom],
    view: DatabaseView,
) -> bool:
    """Check ``∀ x (LHS(x) → ∃ z RHS(x, z))`` over the view.

    This is tgd satisfaction: every homomorphism of the LHS must extend to a
    homomorphism of the RHS.
    """
    rhs_plan = CompiledConjunction(rhs)
    rhs_variables = rhs_plan.variable_set
    for assignment, _ in find_matches(lhs, view):
        exported = {
            variable: value
            for variable, value in assignment.items()
            if variable in rhs_variables
        }
        if not rhs_plan.exists_match(view, exported):
            return False
    return True
