"""Homomorphism search: matching conjunctions of atoms against a database view.

Satisfaction of the left- or right-hand side of a mapping is defined by the
existence of a homomorphism from the formula into the database (Section 2 of
the paper, following Fagin et al.).  This module implements the search as a
backtracking join: atoms are matched one at a time, most-bound-first, with an
index lookup whenever some position of the atom is already bound.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple as PyTuple

from ..core.atoms import Atom
from ..core.terms import DataTerm, Variable, is_variable
from ..core.tuples import Tuple
from ..storage.interface import DatabaseView

#: An assignment of mapping variables to data terms (constants or nulls).
Assignment = Dict[Variable, DataTerm]

#: A match: the completed assignment plus the tuple matched by each atom,
#: in the order the atoms were given.
Match = PyTuple[Assignment, PyTuple[Tuple, ...]]


def _candidate_tuples(
    atom: Atom, assignment: Assignment, view: DatabaseView
) -> Iterator[Tuple]:
    """Tuples of the view that could match *atom* under *assignment*.

    When some atom position is already bound (to a constant in the atom, or to
    a value via the assignment), the position index narrows the scan;
    otherwise the whole relation is scanned.
    """
    best_position: Optional[int] = None
    best_value: Optional[DataTerm] = None
    for position, term in enumerate(atom.terms):
        if is_variable(term):
            bound = assignment.get(term)
            if bound is not None:
                best_position, best_value = position, bound
                break
        else:
            best_position, best_value = position, term
            break
    if best_position is None:
        return view.tuples(atom.relation)
    return view.tuples_with_value(atom.relation, best_position, best_value)


def _order_atoms(atoms: Sequence[Atom], assignment: Assignment) -> List[Atom]:
    """Order atoms so that the most constrained ones are matched first.

    A simple, effective heuristic: atoms with more bound positions (constants
    or already-assigned variables) come first; ties broken by fewer distinct
    unbound variables.
    """
    bound_variables = set(assignment)

    def score(atom: Atom) -> PyTuple[int, int]:
        bound = 0
        unbound = set()
        for term in atom.terms:
            if is_variable(term):
                if term in bound_variables:
                    bound += 1
                else:
                    unbound.add(term)
            else:
                bound += 1
        return (-bound, len(unbound))

    return sorted(atoms, key=score)


def find_matches(
    atoms: Sequence[Atom],
    view: DatabaseView,
    assignment: Optional[Assignment] = None,
    limit: Optional[int] = None,
) -> List[Match]:
    """Find homomorphisms from the conjunction *atoms* into *view*.

    ``assignment`` seeds the search with pre-bound variables (for example the
    bindings obtained by matching a newly written tuple against one atom).
    ``limit`` stops the search after that many matches, which makes existence
    checks cheap.

    Returns a list of (assignment, witness-tuples) pairs.  The witness tuples
    are reported in the order of the *original* atom sequence, which is what
    the violation machinery expects when it builds witnesses.
    """
    seed: Assignment = dict(assignment) if assignment else {}
    ordered = _order_atoms(atoms, seed)
    original_index = {id(atom): position for position, atom in enumerate(atoms)}
    results: List[Match] = []

    def recurse(depth: int, current: Assignment, chosen: List[Tuple]) -> bool:
        """Return ``True`` when the limit was reached and search should stop."""
        if depth == len(ordered):
            witness: List[Optional[Tuple]] = [None] * len(atoms)
            for atom, row in zip(ordered, chosen):
                witness[original_index[id(atom)]] = row
            results.append((dict(current), tuple(witness)))  # type: ignore[arg-type]
            return limit is not None and len(results) >= limit
        atom = ordered[depth]
        for row in _candidate_tuples(atom, current, view):
            extended = atom.match(row, current)
            if extended is None:
                continue
            chosen.append(row)
            if recurse(depth + 1, extended, chosen):
                return True
            chosen.pop()
        return False

    recurse(0, seed, [])
    return results


def exists_match(
    atoms: Sequence[Atom],
    view: DatabaseView,
    assignment: Optional[Assignment] = None,
) -> bool:
    """``True`` when at least one homomorphism extending *assignment* exists."""
    return bool(find_matches(atoms, view, assignment, limit=1))


def formula_satisfied(
    lhs: Sequence[Atom],
    rhs: Sequence[Atom],
    view: DatabaseView,
) -> bool:
    """Check ``∀ x (LHS(x) → ∃ z RHS(x, z))`` over the view.

    This is tgd satisfaction: every homomorphism of the LHS must extend to a
    homomorphism of the RHS.
    """
    for assignment, _ in find_matches(lhs, view):
        exported = {
            variable: value
            for variable, value in assignment.items()
            if any(variable in atom.variable_set() for atom in rhs)
        }
        if not exists_match(rhs, view, exported):
            return False
    return True
