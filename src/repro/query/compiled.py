"""Compiled mapping plans: precomputed evaluation state for chase-hot queries.

Violation queries, the repair planner and the incremental violation detector
all interrogate the *structure* of a mapping on every chase step: which
variables are exported, which atoms mention the written relation, in which
order a backtracking join should match the atoms.  The :class:`Tgd` value
object recomputes those answers from scratch on each call, which is fine for
one chase but shows up everywhere once a scheduler replays thousands of steps.

A :class:`CompiledTgd` derives everything once per mapping:

* the variable sets (RHS, frontier, existential — the latter also pre-sorted
  for deterministic null generation),
* per-relation LHS/RHS atom lists (write seeding stops scanning every atom),
* a :class:`CompiledConjunction` per side, which memoizes the
  most-constrained-first atom ordering per set of pre-bound variables and
  keeps the original-position permutation needed to report witnesses.

Plans are value-cached: :func:`get_plan` memoizes on the (hashable) tgd, so
every engine, planner and query sharing a mapping shares one plan.  A
:class:`CompiledMappings` bundles the plans of a mapping set with
relation-keyed reading/writing lookups for the write-seeded violation
detector.
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple as PyTuple,
)

from ..core.atoms import Atom
from ..core.terms import DataTerm, Variable, is_variable
from ..core.tgd import Tgd
from ..core.tuples import Tuple
from ..storage.interface import DatabaseView

#: An assignment of mapping variables to data terms (constants or nulls).
Assignment = Dict[Variable, DataTerm]

#: A match: the completed assignment plus the tuple matched by each atom, in
#: original atom order.
Match = PyTuple[Assignment, PyTuple[Tuple, ...]]


#: Cardinality estimates are quantized to power-of-two buckets before they
#: key a cached ordering: a relation re-plans exactly when it grows (or
#: shrinks) past a bucket boundary, and — because the signature is a pure
#: function of the live estimates — plans shared process-wide through
#: :func:`get_plan` can never leak one store's statistics into another's
#: orderings (same store state, same ordering, regardless of history).
def _cardinality_bucket(estimate: int) -> int:
    return estimate.bit_length()


class CompiledConjunction:
    """A conjunction of atoms with memoized join orderings.

    The static ordering heuristic is the one from
    :mod:`repro.query.homomorphism` (most bound positions first, ties broken
    by fewer distinct unbound variables).  It depends only on *which*
    variables are bound — not on their values — so orderings are cached per
    bound-variable set; a chase asks for the same handful of seeds over and
    over.

    When the view offers O(1) relation-cardinality estimates
    (:meth:`~repro.storage.interface.DatabaseView.cardinality_estimate`),
    :meth:`ordering_for` refines the static tie-break: among equally-bound
    atoms the *cheapest* relation is matched first (smallest live
    cardinality), and the cached ordering is re-planned once the store's
    stamps show some relation grew past a threshold — live statistics instead
    of the purely structural most-bound-first rule.
    """

    __slots__ = ("atoms", "_variable_set", "_orderings", "_live_orderings")

    def __init__(self, atoms: Sequence[Atom]):
        self.atoms: PyTuple[Atom, ...] = tuple(atoms)
        variables: set = set()
        for atom in self.atoms:
            variables.update(atom.variable_set())
        self._variable_set: FrozenSet[Variable] = frozenset(variables)
        # bound-variable frozenset -> tuple of (atom, original position)
        self._orderings: Dict[FrozenSet[Variable], PyTuple[PyTuple[Atom, int], ...]] = {}
        # (bound-variable frozenset, per-atom cardinality-bucket signature)
        # -> ordering; consulted by ordering_for.  Keying on the quantized
        # live statistics makes the cache store-agnostic: plans are shared
        # process-wide, and two stores with different relation sizes simply
        # hit different signature entries.
        self._live_orderings: Dict[
            PyTuple[FrozenSet[Variable], PyTuple[int, ...]],
            PyTuple[PyTuple[Atom, int], ...],
        ] = {}

    @property
    def variable_set(self) -> FrozenSet[Variable]:
        """All distinct variables of the conjunction."""
        return self._variable_set

    def ordering(
        self, bound: FrozenSet[Variable]
    ) -> PyTuple[PyTuple[Atom, int], ...]:
        """Atoms in match order, each paired with its original position."""
        key = bound & self._variable_set
        cached = self._orderings.get(key)
        if cached is not None:
            return cached

        def score(entry: PyTuple[Atom, int]) -> PyTuple[int, int]:
            atom = entry[0]
            bound_count = 0
            unbound = set()
            for term in atom.terms:
                if is_variable(term):
                    if term in key:
                        bound_count += 1
                    else:
                        unbound.add(term)
                else:
                    bound_count += 1
            return (-bound_count, len(unbound))

        ordered = tuple(
            sorted(
                ((atom, position) for position, atom in enumerate(self.atoms)),
                key=score,
            )
        )
        self._orderings[key] = ordered
        return ordered

    def ordering_for(
        self, bound: FrozenSet[Variable], view: DatabaseView
    ) -> PyTuple[PyTuple[Atom, int], ...]:
        """The match ordering for *bound* refined by *view*'s live statistics.

        Falls back to the static :meth:`ordering` when the view has no cheap
        cardinality estimates.  Cardinality-aware orderings are cached per
        (bound variables, quantized cardinality signature): the ordering is
        recomputed exactly when some atom's relation crossed a power-of-two
        size bucket since it was planned — a relation that was empty at plan
        time may have become the most expensive one to scan first — and the
        signature keying keeps the process-shared plan cache store-agnostic.
        """
        if len(self.atoms) <= 1:
            return self.ordering(bound)
        estimates: List[int] = []
        for atom in self.atoms:
            estimate = view.cardinality_estimate(atom.relation)
            if estimate is None:
                return self.ordering(bound)
            estimates.append(estimate)
        bound_key = bound & self._variable_set
        buckets = tuple(_cardinality_bucket(estimate) for estimate in estimates)
        key = (bound_key, buckets)
        cached = self._live_orderings.get(key)
        if cached is not None:
            return cached

        def score(entry: PyTuple[Atom, int]) -> PyTuple[int, int, int]:
            atom, position = entry
            bound_count = 0
            unbound = set()
            for term in atom.terms:
                if is_variable(term):
                    if term in bound_key:
                        bound_count += 1
                    else:
                        unbound.add(term)
                else:
                    bound_count += 1
            # Most-bound first (selectivity from bindings dominates), then
            # cheapest relation among equally-bound atoms (compared by size
            # bucket, so the ordering is a pure function of the cache key),
            # then the static fewest-unbound tie-break.
            return (-bound_count, buckets[position], len(unbound))

        ordered = tuple(
            sorted(
                ((atom, position) for position, atom in enumerate(self.atoms)),
                key=score,
            )
        )
        self._live_orderings[key] = ordered
        return ordered

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def find_matches(
        self,
        view: DatabaseView,
        assignment: Optional[Assignment] = None,
        limit: Optional[int] = None,
    ) -> List[Match]:
        """Homomorphisms of the conjunction into *view* extending *assignment*.

        Identical semantics to :func:`repro.query.homomorphism.find_matches`,
        minus the per-call ordering and index-permutation work.
        """
        seed: Assignment = dict(assignment) if assignment else {}
        ordered = self.ordering_for(frozenset(seed), view)
        atom_count = len(ordered)
        results: List[Match] = []

        def recurse(depth: int, current: Assignment, chosen: List[Tuple]) -> bool:
            if depth == atom_count:
                witness: List[Optional[Tuple]] = [None] * atom_count
                for (atom, position), row in zip(ordered, chosen):
                    witness[position] = row
                results.append((dict(current), tuple(witness)))  # type: ignore[arg-type]
                return limit is not None and len(results) >= limit
            atom = ordered[depth][0]
            for row in _candidate_tuples(atom, current, view):
                extended = atom.match(row, current)
                if extended is None:
                    continue
                chosen.append(row)
                if recurse(depth + 1, extended, chosen):
                    return True
                chosen.pop()
            return False

        recurse(0, seed, [])
        return results

    def exists_match(
        self, view: DatabaseView, assignment: Optional[Assignment] = None
    ) -> bool:
        """``True`` when at least one homomorphism extending *assignment* exists."""
        return bool(self.find_matches(view, assignment, limit=1))


def _candidate_tuples(
    atom: Atom, assignment: Assignment, view: DatabaseView
) -> Iterable[Tuple]:
    """Tuples of the view that could match *atom* under *assignment*."""
    best_position: Optional[int] = None
    best_value: Optional[DataTerm] = None
    for position, term in enumerate(atom.terms):
        if is_variable(term):
            bound = assignment.get(term)
            if bound is not None:
                best_position, best_value = position, bound
                break
        else:
            best_position, best_value = position, term
            break
    if best_position is None:
        return view.tuples(atom.relation)
    return view.tuples_with_value(atom.relation, best_position, best_value)


class CompiledTgd:
    """Everything the chase derives from one mapping, derived exactly once."""

    __slots__ = (
        "tgd",
        "lhs",
        "rhs",
        "lhs_variables",
        "rhs_variables",
        "frontier_variables",
        "existential_variables",
        "sorted_existentials",
        "lhs_relations",
        "rhs_relations",
        "relations",
        "lhs_atoms_by_relation",
        "rhs_atoms_by_relation",
    )

    def __init__(self, tgd: Tgd):
        self.tgd = tgd
        self.lhs = CompiledConjunction(tgd.lhs)
        self.rhs = CompiledConjunction(tgd.rhs)
        self.lhs_variables = self.lhs.variable_set
        self.rhs_variables = self.rhs.variable_set
        self.frontier_variables = self.lhs_variables & self.rhs_variables
        self.existential_variables = self.rhs_variables - self.lhs_variables
        self.sorted_existentials: PyTuple[Variable, ...] = tuple(
            sorted(self.existential_variables, key=lambda v: v.name)
        )
        self.lhs_relations = tgd.lhs_relations()
        self.rhs_relations = tgd.rhs_relations()
        self.relations = self.lhs_relations | self.rhs_relations
        self.lhs_atoms_by_relation = _atoms_by_relation(tgd.lhs)
        self.rhs_atoms_by_relation = _atoms_by_relation(tgd.rhs)

    def exported(self, assignment: Assignment) -> Assignment:
        """Restrict *assignment* to the variables the RHS can see."""
        rhs_variables = self.rhs_variables
        return {
            variable: value
            for variable, value in assignment.items()
            if variable in rhs_variables
        }

    def __repr__(self) -> str:
        return "CompiledTgd({})".format(self.tgd.name)


def _atoms_by_relation(atoms: Sequence[Atom]) -> Dict[str, PyTuple[Atom, ...]]:
    grouped: Dict[str, List[Atom]] = {}
    for atom in atoms:
        grouped.setdefault(atom.relation, []).append(atom)
    return {relation: tuple(members) for relation, members in grouped.items()}


#: Global plan cache.  Tgds are immutable values with cached hashes, so one
#: process-wide memo is safe and lets plans be shared across engines,
#: planners, schedulers and ad-hoc query objects without threading a cache
#: through every constructor.  The cache is *bounded* (weak references cannot
#: evict here — a plan strongly holds its tgd, so weak keys would be
#: immortal): past the limit the oldest plans fall out FIFO and are simply
#: recompiled on next use, so a long-running service compiling per-session
#: mapping sets cannot grow the cache without bound.
_PLANS: Dict[Tgd, CompiledTgd] = {}

#: Far above any realistic concurrent mapping-set working set (the paper's
#: densest experiment uses 100 mappings), yet it caps service-mode growth.
_PLAN_CACHE_LIMIT = 4096


def get_plan(tgd: Tgd) -> CompiledTgd:
    """The (memoized, bounded) compiled plan for *tgd*."""
    plan = _PLANS.get(tgd)
    if plan is None:
        plan = CompiledTgd(tgd)
        while len(_PLANS) >= _PLAN_CACHE_LIMIT:
            _PLANS.pop(next(iter(_PLANS)))
        _PLANS[tgd] = plan
    return plan


class CompiledMappings:
    """The compiled plans of a mapping set, with relation-keyed lookups.

    ``reading(relation)`` / ``writing(relation)`` answer "which mappings could
    a write into this relation violate?" in O(1) — the write-seeded violation
    detector used to filter every mapping (recomputing its relation sets!) on
    every single write.
    """

    __slots__ = ("plans", "_reading", "_writing")

    def __init__(self, mappings: Iterable[Tgd]):
        self.plans: PyTuple[CompiledTgd, ...] = tuple(
            get_plan(tgd) for tgd in mappings
        )
        reading: Dict[str, List[CompiledTgd]] = {}
        writing: Dict[str, List[CompiledTgd]] = {}
        for plan in self.plans:
            for relation in plan.lhs_relations:
                reading.setdefault(relation, []).append(plan)
            for relation in plan.rhs_relations:
                writing.setdefault(relation, []).append(plan)
        self._reading = {name: tuple(plans) for name, plans in reading.items()}
        self._writing = {name: tuple(plans) for name, plans in writing.items()}

    def __len__(self) -> int:
        return len(self.plans)

    def __iter__(self):
        return iter(self.plans)

    def reading(self, relation: str) -> PyTuple[CompiledTgd, ...]:
        """Plans of mappings with *relation* on their LHS."""
        return self._reading.get(relation, ())

    def writing(self, relation: str) -> PyTuple[CompiledTgd, ...]:
        """Plans of mappings with *relation* on their RHS."""
        return self._writing.get(relation, ())


def compile_mappings(mappings) -> CompiledMappings:
    """Coerce a mapping sequence (or an existing bundle) to compiled form."""
    if isinstance(mappings, CompiledMappings):
        return mappings
    return CompiledMappings(mappings)
