"""Plain conjunctive queries over a database view.

These are the ``LHS query`` and ``RHS query`` building blocks of the violation
queries of Section 4.2, and they are also exposed directly as a small query
facility for examples and for cross-checking the SQLite backend against the
in-memory evaluator.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple as PyTuple

from ..core.atoms import Atom, atoms_relations, atoms_variables
from ..core.terms import DataTerm, Variable
from ..storage.interface import DatabaseView
from .base import ReadQuery
from .homomorphism import Assignment, find_matches

#: A query answer: the values of the answer variables, in order.
AnswerRow = PyTuple[DataTerm, ...]


class ConjunctiveQuery(ReadQuery):
    """``q(answer_vars) :- atom_1, ..., atom_n`` evaluated set-semantically."""

    kind = "conjunctive"

    def __init__(
        self,
        atoms: Sequence[Atom],
        answer_variables: Optional[Sequence[Variable]] = None,
        seed: Optional[Assignment] = None,
    ):
        if not atoms:
            raise ValueError("a conjunctive query needs at least one atom")
        self._atoms: PyTuple[Atom, ...] = tuple(atoms)
        if answer_variables is None:
            answer_variables = sorted(atoms_variables(self._atoms), key=lambda v: v.name)
        self._answer_variables: PyTuple[Variable, ...] = tuple(answer_variables)
        body_variables = atoms_variables(self._atoms)
        for variable in self._answer_variables:
            if variable not in body_variables:
                raise ValueError(
                    "answer variable {} does not occur in the query body".format(variable)
                )
        self._seed: Assignment = dict(seed) if seed else {}

    @property
    def atoms(self) -> PyTuple[Atom, ...]:
        """Body atoms."""
        return self._atoms

    @property
    def answer_variables(self) -> PyTuple[Variable, ...]:
        """Head (answer) variables."""
        return self._answer_variables

    @property
    def seed(self) -> Assignment:
        """Pre-bound variables (bindings coming from a written tuple)."""
        return dict(self._seed)

    def relations(self) -> FrozenSet[str]:
        return atoms_relations(self._atoms)

    def evaluate(self, view: DatabaseView) -> FrozenSet[AnswerRow]:
        """All answer rows, as a frozenset (set semantics)."""
        answers = set()
        for assignment, _ in find_matches(self._atoms, view, self._seed):
            answers.add(tuple(assignment[v] for v in self._answer_variables))
        return frozenset(answers)

    def evaluate_with_witnesses(
        self, view: DatabaseView
    ) -> List[PyTuple[Assignment, PyTuple]]:
        """All matches with the tuples witnessing each body atom."""
        return find_matches(self._atoms, view, self._seed)

    def is_boolean(self) -> bool:
        """``True`` when the query has no answer variables."""
        return not self._answer_variables

    def holds(self, view: DatabaseView) -> bool:
        """Existence check (useful for boolean queries)."""
        return bool(find_matches(self._atoms, view, self._seed, limit=1))

    def __repr__(self) -> str:
        head = ", ".join(str(v) for v in self._answer_variables)
        body = ", ".join(repr(atom) for atom in self._atoms)
        return "ConjunctiveQuery(({}) :- {})".format(head, body)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConjunctiveQuery):
            return NotImplemented
        return (
            self._atoms == other._atoms
            and self._answer_variables == other._answer_variables
            and self._seed == other._seed
        )

    def __hash__(self) -> int:
        return hash(
            (self._atoms, self._answer_variables, frozenset(self._seed.items()))
        )
