"""Violation queries: ``SELECT * FROM (LHS query) WHERE NOT EXISTS (RHS query)``.

A chase step that has just performed a write asks one violation query per
potentially affected mapping (Section 4.2, Example 4.1).  The query is seeded
with the bindings obtained by matching the written tuple against one atom of
the mapping, so its answer contains exactly the witnesses of the new
violations this write is involved in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple as PyTuple

from ..core.atoms import Atom
from ..core.terms import DataTerm, Variable
from ..core.tgd import Tgd
from ..core.tuples import Tuple
from ..storage.interface import DatabaseView
from .base import ReadQuery
from .homomorphism import Assignment, exists_match, find_matches


@dataclass(frozen=True)
class ViolationRow:
    """One answer row of a violation query.

    ``bindings`` is the (hashable) assignment of the mapping's LHS variables
    and ``witness`` the LHS tuples matched — the violation's witness in the
    sense of Definition 2.2.
    """

    bindings: FrozenSet[PyTuple[Variable, DataTerm]]
    witness: PyTuple[Tuple, ...]

    def assignment(self) -> Dict[Variable, DataTerm]:
        """The bindings as a dictionary."""
        return dict(self.bindings)


class ViolationQuery(ReadQuery):
    """Find LHS matches of a mapping that have no corresponding RHS match."""

    kind = "violation"

    def __init__(self, tgd: Tgd, seed: Optional[Assignment] = None):
        self._tgd = tgd
        self._seed: Assignment = dict(seed) if seed else {}

    @property
    def tgd(self) -> Tgd:
        """The mapping whose violations the query detects."""
        return self._tgd

    @property
    def seed(self) -> Assignment:
        """Bindings contributed by the written tuple (may be empty)."""
        return dict(self._seed)

    def relations(self) -> FrozenSet[str]:
        # Both sides are read: the LHS to find candidate witnesses, the RHS in
        # the NOT EXISTS subquery.
        return self._tgd.lhs_relations() | self._tgd.rhs_relations()

    def evaluate(self, view: DatabaseView) -> FrozenSet[ViolationRow]:
        rows: List[ViolationRow] = []
        rhs_variables = self._tgd.rhs_variables()
        for assignment, witness in find_matches(self._tgd.lhs, view, self._seed):
            exported = {
                variable: value
                for variable, value in assignment.items()
                if variable in rhs_variables
            }
            if exists_match(self._tgd.rhs, view, exported):
                continue
            rows.append(
                ViolationRow(
                    bindings=frozenset(assignment.items()),
                    witness=witness,
                )
            )
        return frozenset(rows)

    def evaluation_cost(self) -> int:
        # One join over the LHS plus, per candidate, an existence check on the
        # RHS: approximate by the number of atoms on both sides.
        return len(self._tgd.lhs) + len(self._tgd.rhs)

    def __repr__(self) -> str:
        return "ViolationQuery({}, seed={})".format(self._tgd.name, self._seed)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ViolationQuery):
            return NotImplemented
        return self._tgd == other._tgd and self._seed == other._seed

    def __hash__(self) -> int:
        return hash((self._tgd, frozenset(self._seed.items())))


def seeds_for_lhs_write(tgd: Tgd, row: Tuple) -> List[Assignment]:
    """Bindings obtained by matching *row* against each LHS atom of *tgd*.

    Used after an insertion (or a modification making a tuple newly visible):
    a new LHS-violation of *tgd* must use the new tuple in its witness, so the
    violation query can be seeded with the bindings the tuple induces.  One
    seed per LHS atom the row matches (self-joins give several).
    """
    seeds: List[Assignment] = []
    for atom in tgd.lhs:
        assignment = atom.match(row)
        if assignment is not None:
            seeds.append(assignment)
    return seeds


def seeds_for_rhs_write(tgd: Tgd, row: Tuple) -> List[Assignment]:
    """Bindings obtained by matching *row* against each RHS atom of *tgd*.

    Used after a deletion: a new RHS-violation of *tgd* exists only for LHS
    matches whose RHS match used the deleted tuple, so the violation query is
    seeded with the *frontier-variable* bindings the deleted tuple induces
    through the RHS atom (existential positions impose no binding on the LHS).
    """
    frontier = tgd.frontier_variables()
    seeds: List[Assignment] = []
    for atom in tgd.rhs:
        assignment = atom.match(row)
        if assignment is None:
            continue
        seeds.append(
            {
                variable: value
                for variable, value in assignment.items()
                if variable in frontier
            }
        )
    return seeds


def violation_queries_for_write_row(
    tgd: Tgd, row: Tuple, removed: bool
) -> List[ViolationQuery]:
    """The violation queries to ask for *tgd* after writing *row*.

    ``removed`` selects the deletion case (RHS seeding) versus the
    insertion/modification case (LHS seeding).  Duplicate seeds are collapsed.
    """
    if removed:
        seeds = seeds_for_rhs_write(tgd, row)
    else:
        seeds = seeds_for_lhs_write(tgd, row)
    queries: List[ViolationQuery] = []
    seen = set()
    for seed in seeds:
        key = frozenset(seed.items())
        if key in seen:
            continue
        seen.add(key)
        queries.append(ViolationQuery(tgd, seed))
    return queries
