"""Violation queries: ``SELECT * FROM (LHS query) WHERE NOT EXISTS (RHS query)``.

A chase step that has just performed a write asks one violation query per
potentially affected mapping (Section 4.2, Example 4.1).  The query is seeded
with the bindings obtained by matching the written tuple against one atom of
the mapping, so its answer contains exactly the witnesses of the new
violations this write is involved in.

Evaluation goes through the mapping's :class:`~repro.query.compiled.CompiledTgd`
plan (memoized per mapping), and the delta test behind
:meth:`ViolationQuery.affected_by` is *seeded* as well: instead of evaluating
the full query on the view and on the view-without-the-write and comparing,
it enumerates only the answer rows that could involve the written tuple —
witnesses using it on the LHS, and LHS matches whose ``NOT EXISTS`` flips
because the RHS gained or lost a match through it.  The verdict is exactly
the one full double evaluation would produce (the two views differ by at most
one added and one removed tuple *value*, and every differing answer row must
involve one of them); only the cost changes, which is what the PRECISE
tracker and the conflict checker need from their hottest call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple as PyTuple

from ..core.terms import DataTerm, Variable
from ..core.tgd import Tgd
from ..core.tuples import Tuple
from ..core.writes import Write
from ..storage.interface import DatabaseView
from .base import ReadQuery
from .compiled import CompiledTgd, get_plan
from .homomorphism import Assignment


@dataclass(frozen=True)
class ViolationRow:
    """One answer row of a violation query.

    ``bindings`` is the (hashable) assignment of the mapping's LHS variables
    and ``witness`` the LHS tuples matched — the violation's witness in the
    sense of Definition 2.2.
    """

    bindings: FrozenSet[PyTuple[Variable, DataTerm]]
    witness: PyTuple[Tuple, ...]

    def assignment(self) -> Dict[Variable, DataTerm]:
        """The bindings as a dictionary."""
        return dict(self.bindings)


def _merge_bindings(
    base: Assignment, extra: Assignment
) -> Optional[Assignment]:
    """Merge two assignments; ``None`` on conflicting bindings."""
    merged = dict(base)
    for variable, value in extra.items():
        bound = merged.get(variable)
        if bound is None:
            merged[variable] = value
        elif bound != value:
            return None
    return merged


class ViolationQuery(ReadQuery):
    """Find LHS matches of a mapping that have no corresponding RHS match."""

    kind = "violation"

    def __init__(self, tgd: Tgd, seed: Optional[Assignment] = None):
        self._tgd = tgd
        self._seed: Assignment = dict(seed) if seed else {}
        self._plan: CompiledTgd = get_plan(tgd)

    @property
    def tgd(self) -> Tgd:
        """The mapping whose violations the query detects."""
        return self._tgd

    @property
    def seed(self) -> Assignment:
        """Bindings contributed by the written tuple (may be empty)."""
        return dict(self._seed)

    def relations(self) -> FrozenSet[str]:
        # Both sides are read: the LHS to find candidate witnesses, the RHS in
        # the NOT EXISTS subquery.
        return self._plan.relations

    def evaluate(self, view: DatabaseView) -> FrozenSet[ViolationRow]:
        plan = self._plan
        rows: List[ViolationRow] = []
        for assignment, witness in plan.lhs.find_matches(view, self._seed):
            if plan.rhs.exists_match(view, plan.exported(assignment)):
                continue
            rows.append(
                ViolationRow(
                    bindings=frozenset(assignment.items()),
                    witness=witness,
                )
            )
        return frozenset(rows)

    # ------------------------------------------------------------------
    # Seeded delta test
    # ------------------------------------------------------------------
    def affected_by(self, write: Write, view: DatabaseView) -> bool:
        """Exact test: does *write* change this query's answer on *view*?

        *view* includes the write; the comparison state is
        :func:`~repro.storage.overlay.view_without_write`, which differs from
        *view* by at most one visible tuple value in each direction.  Any
        answer-row difference must involve one of those values, so only the
        seeded neighborhoods of the written tuple are searched.
        """
        if not self.might_be_affected_by(write):
            return False
        # The value-level delta between the two views.  A write whose value
        # is no longer visible (overwritten since) — or whose removal is
        # masked by an identical visible value — contributes nothing.
        added = write.added_row()
        if added is not None and not view.contains(added):
            added = None
        removed = write.removed_row()
        if removed is not None and view.contains(removed):
            removed = None
        if added is None and removed is None:
            return False
        from ..storage.overlay import view_without_write

        plan = self._plan
        without = view_without_write(view, write)
        # 1. A violating match whose witness uses the added value exists only
        #    on the with-write side.
        if added is not None and self._violating_match_using(plan, added, view):
            return True
        # 2. A violating match whose witness uses the removed value exists
        #    only on the without-write side.
        if removed is not None and self._violating_match_using(plan, removed, without):
            return True
        # 3. Matches present on both sides can still flip their NOT EXISTS:
        #    the added value may complete an RHS match (satisfied with the
        #    write, violating without) ...
        if added is not None and self._rhs_existence_flip(
            plan, added, search_view=without, violating_view=without, satisfied_view=view
        ):
            return True
        #    ... and the removed value may have been the only RHS match
        #    (violating with the write, satisfied without).
        if removed is not None and self._rhs_existence_flip(
            plan, removed, search_view=view, violating_view=view, satisfied_view=without
        ):
            return True
        return False

    def _violating_match_using(
        self, plan: CompiledTgd, row: Tuple, side: DatabaseView
    ) -> bool:
        """Is there a violating LHS match on *side* whose witness uses *row*?"""
        for atom in plan.lhs_atoms_by_relation.get(row.relation, ()):
            bound = atom.match(row, self._seed)
            if bound is None:
                continue
            for assignment, witness in plan.lhs.find_matches(side, bound):
                if row not in witness:
                    continue
                if not plan.rhs.exists_match(side, plan.exported(assignment)):
                    return True
        return False

    def _rhs_existence_flip(
        self,
        plan: CompiledTgd,
        row: Tuple,
        search_view: DatabaseView,
        violating_view: DatabaseView,
        satisfied_view: DatabaseView,
    ) -> bool:
        """Does *row* flip the RHS existence check of some common LHS match?

        The flipping RHS match must use *row*, so its frontier bindings agree
        with ``atom.match(row)`` for some RHS atom; LHS matches consistent
        with those bindings are enumerated on *search_view* and checked for
        "no RHS match on *violating_view*, some RHS match on *satisfied_view*"
        — the only way a match present on both sides changes its answer-row
        status.
        """
        frontier = plan.frontier_variables
        for atom in plan.rhs_atoms_by_relation.get(row.relation, ()):
            bound = atom.match(row)
            if bound is None:
                continue
            frontier_bound = {
                variable: value
                for variable, value in bound.items()
                if variable in frontier
            }
            merged = _merge_bindings(self._seed, frontier_bound)
            if merged is None:
                continue
            for assignment, _ in plan.lhs.find_matches(search_view, merged):
                exported = plan.exported(assignment)
                if plan.rhs.exists_match(violating_view, exported):
                    continue
                if plan.rhs.exists_match(satisfied_view, exported):
                    return True
        return False

    def evaluation_cost(self) -> int:
        # One join over the LHS plus, per candidate, an existence check on the
        # RHS: approximate by the number of atoms on both sides.
        return len(self._tgd.lhs) + len(self._tgd.rhs)

    def __repr__(self) -> str:
        return "ViolationQuery({}, seed={})".format(self._tgd.name, self._seed)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ViolationQuery):
            return NotImplemented
        return self._tgd == other._tgd and self._seed == other._seed

    def __hash__(self) -> int:
        return hash((self._tgd, frozenset(self._seed.items())))


def seeds_for_lhs_write(tgd: Tgd, row: Tuple) -> List[Assignment]:
    """Bindings obtained by matching *row* against each LHS atom of *tgd*.

    Used after an insertion (or a modification making a tuple newly visible):
    a new LHS-violation of *tgd* must use the new tuple in its witness, so the
    violation query can be seeded with the bindings the tuple induces.  One
    seed per LHS atom the row matches (self-joins give several).
    """
    plan = get_plan(tgd)
    seeds: List[Assignment] = []
    for atom in plan.lhs_atoms_by_relation.get(row.relation, ()):
        assignment = atom.match(row)
        if assignment is not None:
            seeds.append(assignment)
    return seeds


def seeds_for_rhs_write(tgd: Tgd, row: Tuple) -> List[Assignment]:
    """Bindings obtained by matching *row* against each RHS atom of *tgd*.

    Used after a deletion: a new RHS-violation of *tgd* exists only for LHS
    matches whose RHS match used the deleted tuple, so the violation query is
    seeded with the *frontier-variable* bindings the deleted tuple induces
    through the RHS atom (existential positions impose no binding on the LHS).
    """
    plan = get_plan(tgd)
    frontier = plan.frontier_variables
    seeds: List[Assignment] = []
    for atom in plan.rhs_atoms_by_relation.get(row.relation, ()):
        assignment = atom.match(row)
        if assignment is None:
            continue
        seeds.append(
            {
                variable: value
                for variable, value in assignment.items()
                if variable in frontier
            }
        )
    return seeds


def violation_queries_for_write_row(
    tgd: Tgd, row: Tuple, removed: bool
) -> List[ViolationQuery]:
    """The violation queries to ask for *tgd* after writing *row*.

    ``removed`` selects the deletion case (RHS seeding) versus the
    insertion/modification case (LHS seeding).  Duplicate seeds are collapsed.
    """
    if removed:
        seeds = seeds_for_rhs_write(tgd, row)
    else:
        seeds = seeds_for_lhs_write(tgd, row)
    queries: List[ViolationQuery] = []
    seen = set()
    for seed in seeds:
        key = frozenset(seed.items())
        if key in seen:
            continue
        seen.add(key)
        queries.append(ViolationQuery(tgd, seed))
    return queries
