"""Query package: homomorphisms, conjunctive, violation and correction queries."""

from .base import ReadQuery
from .conjunctive import ConjunctiveQuery
from .correction_query import (
    MoreSpecificQuery,
    NullOccurrenceQuery,
    correction_queries_for_frontier_tuple,
)
from .homomorphism import exists_match, find_matches, formula_satisfied
from .violation_query import ViolationQuery, ViolationRow

__all__ = [
    "ConjunctiveQuery",
    "MoreSpecificQuery",
    "NullOccurrenceQuery",
    "ReadQuery",
    "ViolationQuery",
    "ViolationRow",
    "correction_queries_for_frontier_tuple",
    "exists_match",
    "find_matches",
    "formula_satisfied",
]
