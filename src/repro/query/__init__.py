"""Query package: homomorphisms, conjunctive, violation and correction queries."""

from .base import ReadQuery
from .compiled import (
    CompiledConjunction,
    CompiledMappings,
    CompiledTgd,
    compile_mappings,
    get_plan,
)
from .conjunctive import ConjunctiveQuery
from .correction_query import (
    MoreSpecificQuery,
    NullOccurrenceQuery,
    correction_queries_for_frontier_tuple,
)
from .homomorphism import exists_match, find_matches, formula_satisfied
from .violation_query import ViolationQuery, ViolationRow

__all__ = [
    "CompiledConjunction",
    "CompiledMappings",
    "CompiledTgd",
    "ConjunctiveQuery",
    "MoreSpecificQuery",
    "NullOccurrenceQuery",
    "ReadQuery",
    "ViolationQuery",
    "ViolationRow",
    "compile_mappings",
    "correction_queries_for_frontier_tuple",
    "exists_match",
    "find_matches",
    "formula_satisfied",
    "get_plan",
]
