"""The travel repository of Figure 2 — the paper's running example.

Relations:

* ``C(city)`` — cities
* ``S(code, location, city_served)`` — suggested airports
* ``A(location, name)`` — attractions
* ``T(attraction, company, tour_start)`` — tours
* ``R(company, attraction, review)`` — tour reviews
* ``V(city, convention)`` — conventions
* ``E(convention, attraction)`` — excursion ideas

Mappings:

* σ1: every city has a suggested airport,
* σ2: every airport is located in a city and serves a city (forming a cycle
  with σ1),
* σ3: every offered tour of an attraction has a review,
* σ4: convention attendees get excursion ideas from the tours starting at the
  convention venue.
"""

from __future__ import annotations

from typing import Tuple as PyTuple

from ..core.schema import DatabaseSchema, RelationSchema
from ..core.terms import LabeledNull
from ..core.tgd import MappingSet, parse_tgd
from ..core.tuples import Tuple, make_tuple
from ..storage.memory import MemoryDatabase

#: Labeled nulls used in Figure 2.
X1 = LabeledNull("x1")
X2 = LabeledNull("x2")


def travel_schema() -> DatabaseSchema:
    """The schema of the Figure 2 repository."""
    return DatabaseSchema.from_relations(
        [
            RelationSchema("C", ["city"]),
            RelationSchema("S", ["code", "location", "city_served"]),
            RelationSchema("A", ["location", "name"]),
            RelationSchema("T", ["attraction", "company", "tour_start"]),
            RelationSchema("R", ["company", "attraction", "review"]),
            RelationSchema("V", ["city", "convention"]),
            RelationSchema("E", ["convention", "attraction"]),
        ]
    )


def travel_mappings() -> MappingSet:
    """The four mappings σ1–σ4 of Figure 2."""
    mappings = MappingSet(
        [
            parse_tgd("C(c) -> exists a, l . S(a, l, c)", name="sigma1"),
            parse_tgd("S(a, l, c) -> C(l), C(c)", name="sigma2"),
            parse_tgd("A(l, n), T(n, c, cs) -> exists r . R(c, n, r)", name="sigma3"),
            parse_tgd("V(cs, x), T(n, c, cs) -> E(x, n)", name="sigma4"),
        ]
    )
    mappings.validate(travel_schema())
    return mappings


def travel_tuples() -> PyTuple[Tuple, ...]:
    """The initial tuples shown in Figure 2."""
    return (
        make_tuple("C", "Ithaca"),
        make_tuple("C", "Syracuse"),
        make_tuple("S", "SYR", "Syracuse", "Syracuse"),
        make_tuple("S", "SYR", "Syracuse", "Ithaca"),
        make_tuple("A", "Geneva", "Geneva Winery"),
        make_tuple("A", "Niagara Falls", "Niagara Falls"),
        make_tuple("T", "Geneva Winery", "XYZ", "Syracuse"),
        make_tuple("T", "Niagara Falls", X1, "Toronto"),
        make_tuple("R", "XYZ", "Geneva Winery", "Great!"),
        make_tuple("R", X1, "Niagara Falls", X2),
        make_tuple("V", "Syracuse", "Science Conf"),
        make_tuple("E", "Science Conf", "Geneva Winery"),
    )


def travel_database() -> MemoryDatabase:
    """A fresh in-memory copy of the Figure 2 repository."""
    database = MemoryDatabase(travel_schema())
    for row in travel_tuples():
        database.insert(row)
    return database


def travel_repository() -> PyTuple[MemoryDatabase, MappingSet]:
    """Database and mappings together, ready for a :class:`ChaseEngine`."""
    return travel_database(), travel_mappings()
