"""The genealogical example of Section 2.2.

A single cyclic mapping states that every person has a father who is also a
person::

    Person(x) -> exists y . Father(x, y), Person(y)

Under the standard tgd chase this mapping is rejected (it is not weakly
acyclic and the chase does not terminate).  In Youtopia it is allowed: the
chase inserts the first ancestor, then stops at a frontier because the new
``Person`` tuple has a more specific tuple already present, and a user decides
whether to keep adding ancestors (expand) or close the loop (unify).
"""

from __future__ import annotations

from typing import Tuple as PyTuple

from ..core.schema import DatabaseSchema, RelationSchema
from ..core.tgd import MappingSet, parse_tgd
from ..storage.memory import MemoryDatabase


def genealogy_schema() -> DatabaseSchema:
    """Schema with ``Person(name)`` and ``Father(child, father)``."""
    return DatabaseSchema.from_relations(
        [
            RelationSchema("Person", ["name"]),
            RelationSchema("Father", ["child", "father"]),
        ]
    )


def genealogy_mappings() -> MappingSet:
    """The single cyclic mapping of the example."""
    mappings = MappingSet(
        [
            parse_tgd(
                "Person(x) -> exists y . Father(x, y), Person(y)",
                name="every-person-has-a-father",
            )
        ]
    )
    mappings.validate(genealogy_schema())
    return mappings


def genealogy_repository() -> PyTuple[MemoryDatabase, MappingSet]:
    """An empty genealogy database plus its mapping."""
    return MemoryDatabase(genealogy_schema()), genealogy_mappings()
