"""Example repositories used in the paper: the travel repository and genealogy."""

from .genealogy import genealogy_mappings, genealogy_repository, genealogy_schema
from .travel import (
    travel_database,
    travel_mappings,
    travel_repository,
    travel_schema,
    travel_tuples,
)

__all__ = [
    "genealogy_mappings",
    "genealogy_repository",
    "genealogy_schema",
    "travel_database",
    "travel_mappings",
    "travel_repository",
    "travel_schema",
    "travel_tuples",
]
