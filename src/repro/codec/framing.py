"""Length-prefixed binary framing: the codec's socket-stream envelope.

The wire codec (:mod:`repro.codec.wire`) produces self-delimiting *documents*
— one JSON envelope per payload — but a TCP or Unix-domain stream has no
document boundaries: reads split and coalesce arbitrarily.  This module adds
the minimal stream discipline on top: every message travels as one **frame**

::

    offset  size  field
    0       2     magic   b"RF"           (reject foreign streams loudly)
    2       1     version == WIRE_VERSION (the codec's version gate)
    3       1     kind    (FRAME_ENVELOPE | FRAME_CONTROL)
    4       4     length  (payload bytes, unsigned big-endian)
    8       n     payload (codec bytes for FRAME_ENVELOPE, canonical JSON
                           for FRAME_CONTROL)

Framing is **opt-in**: it only exists on the socket path.  The unframed JSON
dialect — what the in-process byte transport and the golden-bytes fixture pin
— is byte-for-byte unchanged; a frame merely wraps those same bytes.  A
:class:`~repro.federation.transport.Bundle` encodes to a single envelope, so
one frame carries a whole per-destination flush (many payloads, one header,
one round-trip) — the round-trip reduction the trace phase breakdown asked
for, not a byte-count optimization.

:class:`FrameDecoder` is the receive half: feed it whatever ``recv`` returned
— partial headers, split payloads, many frames coalesced into one segment —
and it yields complete frames in order, buffering the remainder.  Anything
structurally wrong (bad magic, unknown version or kind, a length beyond the
decoder's limit) raises :class:`FramingError` immediately: framing errors are
protocol corruption, never data.
"""

from __future__ import annotations

import struct
from typing import List, NamedTuple

from .wire import WIRE_VERSION, CodecError

#: The two-byte stream signature every frame starts with.
FRAME_MAGIC = b"RF"

#: Frame kinds (a closed set; decoders reject anything else).
FRAME_ENVELOPE = 1  #: payload is :func:`repro.codec.wire.encode_envelope` bytes
FRAME_CONTROL = 2  #: payload is canonical JSON (harness control messages)

_KINDS = frozenset((FRAME_ENVELOPE, FRAME_CONTROL))

#: ``>2s B B I`` — magic, version, kind, payload length (network byte order).
_HEADER = struct.Struct(">2sBBI")

HEADER_SIZE = _HEADER.size

#: Default per-frame payload ceiling.  Generously above any real bundle (the
#: paper-scale bench's largest frame is a few hundred KB) while keeping a
#: corrupted or hostile length field from ballooning the receive buffer.
MAX_FRAME_PAYLOAD = 64 * 1024 * 1024


class FramingError(CodecError):
    """A malformed frame: wrong magic, version, kind, or excessive length."""


class Frame(NamedTuple):
    """One reassembled frame: its kind tag and raw payload bytes."""

    kind: int
    payload: bytes


def encode_frame(kind: int, payload: bytes) -> bytes:
    """Wrap *payload* in one frame (header + bytes), ready for ``sendall``."""
    if kind not in _KINDS:
        raise FramingError("unknown frame kind {!r}".format(kind))
    if len(payload) > MAX_FRAME_PAYLOAD:
        raise FramingError(
            "frame payload of {} bytes exceeds the {} byte limit".format(
                len(payload), MAX_FRAME_PAYLOAD
            )
        )
    return _HEADER.pack(FRAME_MAGIC, WIRE_VERSION, kind, len(payload)) + payload


class FrameDecoder:
    """Incremental frame reassembly over an arbitrary chunking of the stream.

    ``feed`` never blocks and never loses bytes: complete frames come back in
    arrival order, a trailing partial frame stays buffered for the next feed.
    The decoder validates each header as soon as its eight bytes are present,
    so corruption is reported at the earliest possible moment — *before*
    waiting for (or allocating) a bogus payload length.
    """

    def __init__(self, max_payload: int = MAX_FRAME_PAYLOAD):
        self._max_payload = max_payload
        self._buffer = bytearray()

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered toward an incomplete frame (0 between frames)."""
        return len(self._buffer)

    def feed(self, data: bytes) -> List[Frame]:
        """Absorb *data*; return every frame it completed, in order."""
        self._buffer.extend(data)
        frames: List[Frame] = []
        while True:
            if len(self._buffer) < HEADER_SIZE:
                break
            magic, version, kind, length = _HEADER.unpack_from(self._buffer)
            if magic != FRAME_MAGIC:
                raise FramingError(
                    "bad frame magic {!r} (expected {!r})".format(
                        bytes(magic), FRAME_MAGIC
                    )
                )
            if version != WIRE_VERSION:
                raise FramingError(
                    "unsupported frame version {!r} (this build speaks {})".format(
                        version, WIRE_VERSION
                    )
                )
            if kind not in _KINDS:
                raise FramingError("unknown frame kind {!r}".format(kind))
            if length > self._max_payload:
                raise FramingError(
                    "frame length {} exceeds the {} byte limit".format(
                        length, self._max_payload
                    )
                )
            if len(self._buffer) < HEADER_SIZE + length:
                break
            payload = bytes(self._buffer[HEADER_SIZE:HEADER_SIZE + length])
            del self._buffer[:HEADER_SIZE + length]
            frames.append(Frame(kind=kind, payload=payload))
        return frames
