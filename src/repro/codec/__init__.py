"""The wire-format codec: one canonical byte encoding for everything exchanged.

Every object that crosses a process boundary in this reproduction — federation
envelopes on the transport, rows in the SQLite mirror, write-log segments and
snapshots on disk, service checkpoints — goes through this package.  Two
encodings live here:

* the **row codec** (:mod:`repro.codec.rows`): the flat one-string-per-term
  encoding the SQL layer stores in TEXT columns (``c:<value>`` / ``n:<name>``),
  shared verbatim by the SQLite backend and the generated SQL;
* the **wire codec** (:mod:`repro.codec.wire`): a self-describing, versioned,
  ``pickle``-free JSON encoding with round-trip identity for terms, tuples,
  mappings, writes, frontier structures, user operations, update tickets and
  every federation envelope (bundles included).

The wire codec is deliberately deterministic (sorted keys, compact
separators, canonical member ordering) so that golden-bytes fixtures can pin
the format: an accidental change to any encoder fails the fixture check
loudly instead of silently forking the wire dialect.

Layering: this package sits below storage, service and federation (it only
imports ``core``), and all three route their byte-level representation
through it — the codec is the single place where "what do these objects look
like as bytes" is decided.
"""

from .framing import (
    FRAME_CONTROL,
    FRAME_ENVELOPE,
    FRAME_MAGIC,
    HEADER_SIZE,
    MAX_FRAME_PAYLOAD,
    Frame,
    FrameDecoder,
    FramingError,
    encode_frame,
)
from .rows import decode_row, decode_term, encode_row, encode_term
from .wire import (
    CodecError,
    WIRE_VERSION,
    decode_envelope,
    decode_payload,
    decode_schema,
    decode_tuple,
    decode_user_operation,
    decode_versioned_write,
    encode_envelope,
    encode_payload,
    encode_schema,
    encode_tuple,
    encode_user_operation,
    encode_versioned_write,
    payload_kind,
    payloads_equivalent,
)

__all__ = [
    "CodecError",
    "FRAME_CONTROL",
    "FRAME_ENVELOPE",
    "FRAME_MAGIC",
    "Frame",
    "FrameDecoder",
    "FramingError",
    "HEADER_SIZE",
    "MAX_FRAME_PAYLOAD",
    "WIRE_VERSION",
    "decode_envelope",
    "decode_payload",
    "decode_row",
    "decode_schema",
    "decode_term",
    "decode_tuple",
    "decode_user_operation",
    "decode_versioned_write",
    "encode_envelope",
    "encode_frame",
    "encode_payload",
    "encode_row",
    "encode_schema",
    "encode_term",
    "encode_tuple",
    "encode_user_operation",
    "encode_versioned_write",
    "payload_kind",
    "payloads_equivalent",
]
