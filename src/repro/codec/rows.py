"""The flat row codec: one string per term, as stored in SQL TEXT columns.

Constants encode as ``c:<value>`` and labeled nulls as ``n:<name>``.  The
encoding preserves equality — which is all conjunctive-query evaluation over
the SQLite mirror needs — but it is *lossy on constant payload types*
(``Constant(42)`` decodes as ``Constant('42')``), which is why the wire codec
(:mod:`repro.codec.wire`) uses a typed encoding instead.  This module is the
single definition both the SQL generator (:mod:`repro.query.sql`) and the
SQLite backend share; historically each re-stated it.
"""

from __future__ import annotations

from typing import Sequence, Tuple as PyTuple

from ..core.terms import Constant, DataTerm, LabeledNull
from ..core.tuples import Tuple


def encode_term(term: DataTerm) -> str:
    """Encode a data term into its storage string."""
    if isinstance(term, LabeledNull):
        return "n:{}".format(term.name)
    if isinstance(term, Constant):
        return "c:{}".format(term.value)
    raise TypeError("cannot encode {!r} for SQL storage".format(term))


def decode_term(text: str) -> DataTerm:
    """Decode a storage string back into a data term."""
    if text.startswith("n:"):
        return LabeledNull(text[2:])
    if text.startswith("c:"):
        return Constant(text[2:])
    raise ValueError("malformed encoded term {!r}".format(text))


def encode_row(row: Tuple) -> PyTuple[str, ...]:
    """Encode every field of *row*."""
    return tuple(encode_term(value) for value in row.values)


def decode_row(relation: str, fields: Sequence[str]) -> Tuple:
    """Decode a stored row of *relation*."""
    return Tuple(relation, [decode_term(field) for field in fields])
