"""The structured wire codec: versioned, self-describing, ``pickle``-free.

Everything is encoded into plain JSON-able structures (dicts, lists, strings,
numbers) with a ``"t"`` type tag per node, then serialized deterministically
(sorted keys, compact separators) behind a versioned header::

    {"v": 1, "k": "<payload kind>", "b": <body>}

Decoding rejects unknown versions and unknown tags loudly — a peer speaking a
future dialect fails fast instead of silently misreading bytes.  Round-trip
identity holds for every supported object: ``decode(encode(x)) == x`` under
the value equality the core types define (tgd equality ignores names, which
the codec nevertheless preserves).

Because chase results are unique only up to the renaming of labeled nulls,
the codec also provides :func:`payloads_equivalent` — structural equality of
two payloads after canonicalizing null names in first-occurrence order — for
differential tests that compare independently minted envelopes.

Layering note: the federation/service types are imported lazily inside the
codec functions so this module stays importable from below those layers (the
transport imports the codec, and the codec must be able to name the
transport's bundle type without a cycle).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from ..core.atoms import Atom
from ..core.schema import DatabaseSchema, RelationSchema
from ..core.terms import Constant, LabeledNull, Variable
from ..core.tgd import Tgd
from ..core.tuples import Tuple
from ..core.writes import Write, WriteKind

# NOTE: ``core.frontier`` / ``core.violations`` / ``core.update`` (and, below
# those, the storage / service / federation layers) are imported lazily inside
# the codec functions.  Those modules import the storage package, whose
# ``__init__`` loads the SQLite backend, whose SQL generator imports this
# codec's row module — a module-level import here would therefore observe
# partially-initialized modules depending on which package was imported first.

#: The codec dialect this build speaks.  Bump on any incompatible change.
WIRE_VERSION = 1

#: Constant payload types the wire codec can carry losslessly.
_SCALAR_TYPES = (str, int, float, bool, type(None))


class CodecError(ValueError):
    """Raised for unencodable objects, malformed bytes or unknown versions."""


# ----------------------------------------------------------------------
# Terms, tuples, atoms, mappings
# ----------------------------------------------------------------------
def _check_scalar(value: object) -> object:
    if not isinstance(value, _SCALAR_TYPES):
        raise CodecError(
            "constant payload {!r} is not wire-encodable (need one of {})".format(
                value, ", ".join(t.__name__ for t in _SCALAR_TYPES)
            )
        )
    return value


def encode_term(term: object) -> Dict[str, Any]:
    """Encode a :class:`Constant`, :class:`LabeledNull` or :class:`Variable`."""
    if isinstance(term, Constant):
        return {"t": "const", "v": _check_scalar(term.value)}
    if isinstance(term, LabeledNull):
        return {"t": "null", "n": term.name}
    if isinstance(term, Variable):
        return {"t": "var", "n": term.name}
    raise CodecError("not a term: {!r}".format(term))


def decode_term(body: Dict[str, Any]) -> object:
    tag = body.get("t")
    if tag == "const":
        return Constant(body["v"])
    if tag == "null":
        return LabeledNull(body["n"])
    if tag == "var":
        return Variable(body["n"])
    raise CodecError("unknown term tag {!r}".format(tag))


def encode_tuple(row: Tuple) -> Dict[str, Any]:
    """Encode a data tuple."""
    return {"r": row.relation, "vs": [encode_term(value) for value in row.values]}


def decode_tuple(body: Dict[str, Any]) -> Tuple:
    return Tuple(body["r"], [decode_term(value) for value in body["vs"]])


def encode_atom(atom: Atom) -> Dict[str, Any]:
    return {"r": atom.relation, "ts": [encode_term(term) for term in atom.terms]}


def decode_atom(body: Dict[str, Any]) -> Atom:
    return Atom(body["r"], [decode_term(term) for term in body["ts"]])


def encode_tgd(tgd: Tgd) -> Dict[str, Any]:
    return {
        "n": tgd.name,
        "l": [encode_atom(atom) for atom in tgd.lhs],
        "h": [encode_atom(atom) for atom in tgd.rhs],
    }


def decode_tgd(body: Dict[str, Any]) -> Tgd:
    return Tgd(
        [decode_atom(atom) for atom in body["l"]],
        [decode_atom(atom) for atom in body["h"]],
        name=body["n"],
    )


def _encode_assignment(items) -> List[List[Any]]:
    """A variable assignment, canonically ordered by variable name."""
    pairs = sorted(items, key=lambda item: item[0].name)
    return [[encode_term(variable), encode_term(value)] for variable, value in pairs]


def _decode_assignment_items(body) -> frozenset:
    return frozenset(
        (decode_term(variable), decode_term(value)) for variable, value in body
    )


# ----------------------------------------------------------------------
# Writes
# ----------------------------------------------------------------------
def encode_write(write: Write) -> Dict[str, Any]:
    body: Dict[str, Any] = {"k": write.kind.value, "row": encode_tuple(write.row)}
    if write.old_row is not None:
        body["old"] = encode_tuple(write.old_row)
    if write.null is not None:
        body["null"] = encode_term(write.null)
    if write.replacement is not None:
        body["rep"] = encode_term(write.replacement)
    return body


def decode_write(body: Dict[str, Any]) -> Write:
    return Write(
        kind=WriteKind(body["k"]),
        row=decode_tuple(body["row"]),
        old_row=decode_tuple(body["old"]) if "old" in body else None,
        null=decode_term(body["null"]) if "null" in body else None,
        replacement=decode_term(body["rep"]) if "rep" in body else None,
    )


def encode_versioned_write(entry) -> Dict[str, Any]:
    """Encode a logged write with its provenance (seq, priority, tid)."""
    return {
        "seq": entry.seq,
        "pri": entry.priority,
        "tid": entry.tid,
        "w": encode_write(entry.write),
    }


def decode_versioned_write(body: Dict[str, Any]):
    from ..storage.versioned import VersionedWrite

    return VersionedWrite(
        seq=body["seq"],
        priority=body["pri"],
        tid=body["tid"],
        write=decode_write(body["w"]),
    )


# ----------------------------------------------------------------------
# Violations and frontier structures
# ----------------------------------------------------------------------
def encode_violation(violation) -> Dict[str, Any]:
    return {
        "tgd": encode_tgd(violation.tgd),
        "b": _encode_assignment(violation.bindings),
        "w": [encode_tuple(row) for row in violation.witness],
        "k": violation.kind.value,
    }


def decode_violation(body: Dict[str, Any]):
    from ..core.violations import Violation, ViolationKind

    return Violation(
        tgd=decode_tgd(body["tgd"]),
        bindings=_decode_assignment_items(body["b"]),
        witness=tuple(decode_tuple(row) for row in body["w"]),
        kind=ViolationKind(body["k"]),
    )


def encode_frontier_tuple(frontier) -> Dict[str, Any]:
    return {
        "row": encode_tuple(frontier.row),
        "vio": encode_violation(frontier.violation),
        "cand": [encode_tuple(row) for row in frontier.candidates],
        "fresh": [
            encode_term(null)
            for null in sorted(frontier.fresh_nulls, key=lambda n: n.name)
        ],
    }


def decode_frontier_tuple(body: Dict[str, Any]):
    from ..core.frontier import FrontierTuple

    return FrontierTuple(
        row=decode_tuple(body["row"]),
        violation=decode_violation(body["vio"]),
        candidates=tuple(decode_tuple(row) for row in body["cand"]),
        fresh_nulls=frozenset(decode_term(null) for null in body["fresh"]),
    )


def encode_frontier_request(request) -> Dict[str, Any]:
    from ..core.frontier import NegativeFrontierRequest, PositiveFrontierRequest

    if isinstance(request, PositiveFrontierRequest):
        return {
            "t": "pos",
            "vio": encode_violation(request.violation),
            "fts": [encode_frontier_tuple(ft) for ft in request.frontier_tuples],
        }
    if isinstance(request, NegativeFrontierRequest):
        return {
            "t": "neg",
            "vio": encode_violation(request.violation),
            "cand": [encode_tuple(row) for row in request.candidates],
        }
    raise CodecError("not a frontier request: {!r}".format(request))


def decode_frontier_request(body: Dict[str, Any]):
    from ..core.frontier import NegativeFrontierRequest, PositiveFrontierRequest

    tag = body.get("t")
    if tag == "pos":
        return PositiveFrontierRequest(
            violation=decode_violation(body["vio"]),
            frontier_tuples=tuple(
                decode_frontier_tuple(ft) for ft in body["fts"]
            ),
        )
    if tag == "neg":
        return NegativeFrontierRequest(
            violation=decode_violation(body["vio"]),
            candidates=tuple(decode_tuple(row) for row in body["cand"]),
        )
    raise CodecError("unknown frontier request tag {!r}".format(tag))


def encode_frontier_operation(operation) -> Dict[str, Any]:
    from ..core.frontier import (
        DeleteSubsetOperation,
        ExpandOperation,
        UnifyOperation,
    )

    if isinstance(operation, ExpandOperation):
        return {"t": "expand", "ft": encode_frontier_tuple(operation.frontier_tuple)}
    if isinstance(operation, UnifyOperation):
        return {
            "t": "unify",
            "ft": encode_frontier_tuple(operation.frontier_tuple),
            "with": encode_tuple(operation.target),
        }
    if isinstance(operation, DeleteSubsetOperation):
        return {"t": "del", "rows": [encode_tuple(row) for row in operation.rows]}
    raise CodecError("not a frontier operation: {!r}".format(operation))


def decode_frontier_operation(body: Dict[str, Any]):
    from ..core.frontier import (
        DeleteSubsetOperation,
        ExpandOperation,
        UnifyOperation,
    )

    tag = body.get("t")
    if tag == "expand":
        return ExpandOperation(decode_frontier_tuple(body["ft"]))
    if tag == "unify":
        return UnifyOperation(
            decode_frontier_tuple(body["ft"]), decode_tuple(body["with"])
        )
    if tag == "del":
        return DeleteSubsetOperation(
            tuple(decode_tuple(row) for row in body["rows"])
        )
    raise CodecError("unknown frontier operation tag {!r}".format(tag))


# ----------------------------------------------------------------------
# User operations (local and federation-synthesized)
# ----------------------------------------------------------------------
def encode_user_operation(operation) -> Dict[str, Any]:
    """Encode any :class:`~repro.core.update.UserOperation` the system produces."""
    from ..core.update import (
        DeleteOperation,
        InsertOperation,
        NullReplacementOperation,
    )
    from ..federation.operations import (
        RemoteFiringOperation,
        RemoteRetractionOperation,
    )

    if isinstance(operation, InsertOperation):
        return {"t": "ins", "row": encode_tuple(operation.row)}
    if isinstance(operation, DeleteOperation):
        return {"t": "rm", "row": encode_tuple(operation.row)}
    if isinstance(operation, NullReplacementOperation):
        return {
            "t": "repl",
            "null": encode_term(operation.null),
            "val": encode_term(operation.value),
        }
    if isinstance(operation, RemoteFiringOperation):
        return {
            "t": "fire",
            "tgd": encode_tgd(operation.tgd),
            "a": _encode_assignment(operation.assignment.items()),
            "rows": [encode_tuple(row) for row in operation.head_rows],
        }
    if isinstance(operation, RemoteRetractionOperation):
        return {
            "t": "retract",
            "tgd": encode_tgd(operation.tgd),
            "a": _encode_assignment(operation.assignment.items()),
        }
    raise CodecError("not a wire-encodable user operation: {!r}".format(operation))


def decode_user_operation(body: Dict[str, Any]):
    from ..core.update import (
        DeleteOperation,
        InsertOperation,
        NullReplacementOperation,
    )
    from ..federation.operations import (
        RemoteFiringOperation,
        RemoteRetractionOperation,
    )

    tag = body.get("t")
    if tag == "ins":
        return InsertOperation(decode_tuple(body["row"]))
    if tag == "rm":
        return DeleteOperation(decode_tuple(body["row"]))
    if tag == "repl":
        return NullReplacementOperation(
            decode_term(body["null"]), decode_term(body["val"])
        )
    if tag == "fire":
        return RemoteFiringOperation(
            decode_tgd(body["tgd"]),
            dict(_decode_assignment_items(body["a"])),
            tuple(decode_tuple(row) for row in body["rows"]),
        )
    if tag == "retract":
        return RemoteRetractionOperation(
            decode_tgd(body["tgd"]),
            dict(_decode_assignment_items(body["a"])),
        )
    raise CodecError("unknown user operation tag {!r}".format(tag))


# ----------------------------------------------------------------------
# Schemas (for snapshots and checkpoints)
# ----------------------------------------------------------------------
def encode_schema(schema: DatabaseSchema) -> List[List[Any]]:
    """Encode a database schema, preserving relation declaration order."""
    return [
        [relation.name, list(relation.attributes)] for relation in schema
    ]


def decode_schema(body: List[List[Any]]) -> DatabaseSchema:
    return DatabaseSchema.from_relations(
        RelationSchema(name, attributes) for name, attributes in body
    )


# ----------------------------------------------------------------------
# Service-side values
# ----------------------------------------------------------------------
def _encode_origin(origin) -> Dict[str, Any]:
    return {"peer": origin.peer, "ticket": origin.ticket_id}


def _decode_origin(body: Dict[str, Any]):
    from ..service.tickets import RemoteOrigin

    return RemoteOrigin(peer=body["peer"], ticket_id=body["ticket"])


def _encode_choice(choice) -> Dict[str, Any]:
    if isinstance(choice, int):
        return {"t": "index", "i": choice}
    return {"t": "op", "op": encode_frontier_operation(choice)}


def _decode_choice(body: Dict[str, Any]):
    tag = body.get("t")
    if tag == "index":
        return body["i"]
    if tag == "op":
        return decode_frontier_operation(body["op"])
    raise CodecError("unknown answer-choice tag {!r}".format(tag))


# ----------------------------------------------------------------------
# Federation payloads
# ----------------------------------------------------------------------
def payload_kind(payload: object) -> str:
    """The wire kind string of *payload* (used in the envelope header)."""
    from ..federation import envelopes as env
    from ..federation.transport import Bundle

    if isinstance(payload, env.RemoteUpdate):
        return "remote-update"
    if isinstance(payload, env.ExchangeFiring):
        return "firing"
    if isinstance(payload, env.ExchangeRetraction):
        return "retraction"
    if isinstance(payload, env.QuestionOpened):
        return "question-opened"
    if isinstance(payload, env.QuestionCancelled):
        return "question-cancelled"
    if isinstance(payload, env.QuestionAnswer):
        return "question-answer"
    if isinstance(payload, env.CommitNotice):
        return "commit-notice"
    if isinstance(payload, Bundle):
        return "bundle"
    if isinstance(payload, _SCALAR_TYPES):
        return "raw"
    raise CodecError("not a wire-encodable payload: {!r}".format(payload))


def encode_payload(payload: object) -> Dict[str, Any]:
    """Encode any transport payload into its JSON-able wire body.

    When the payload carries a trace context (tracing enabled at the sender)
    an optional ``"tr"`` field is added — same :data:`WIRE_VERSION`, absent
    whenever tracing is off, so golden bytes are unchanged and pre-tracing
    decoders are never confronted with it unless tracing actually ran.
    """
    body = _encode_payload_body(payload)
    trace = getattr(payload, "trace", None)
    if trace is not None:
        body["tr"] = {"si": trace.span_id, "ti": trace.trace_id}
    return body


def decode_payload(body: Dict[str, Any]) -> object:
    """Decode a wire body; a ``"tr"`` field restores the trace context."""
    payload = _decode_payload_body(body)
    trace = body.get("tr")
    if trace is not None and hasattr(payload, "trace"):
        import dataclasses

        from ..obs.trace import SpanContext

        payload = dataclasses.replace(
            payload, trace=SpanContext(trace_id=trace["ti"], span_id=trace["si"])
        )
    return payload


def _encode_payload_body(payload: object) -> Dict[str, Any]:
    from ..federation import envelopes as env
    from ..federation.transport import Bundle
    from ..service.tickets import TicketStatus

    if isinstance(payload, env.RemoteUpdate):
        return {
            "t": "remote-update",
            "op": encode_user_operation(payload.operation),
            "o": _encode_origin(payload.origin),
        }
    if isinstance(payload, env.ExchangeFiring):
        return {
            "t": "firing",
            "tgd": encode_tgd(payload.tgd),
            "a": _encode_assignment(payload.assignment_items),
            "rows": [encode_tuple(row) for row in payload.head_rows],
            "o": _encode_origin(payload.origin),
        }
    if isinstance(payload, env.ExchangeRetraction):
        return {
            "t": "retraction",
            "tgd": encode_tgd(payload.tgd),
            "a": _encode_assignment(payload.assignment_items),
            "row": encode_tuple(payload.removed_row),
            "o": _encode_origin(payload.origin),
        }
    if isinstance(payload, env.QuestionOpened):
        return {
            "t": "question-opened",
            "peer": payload.executing_peer,
            "id": payload.decision_id,
            "req": encode_frontier_request(payload.request),
            "o": _encode_origin(payload.origin),
            "desc": payload.ticket_description,
        }
    if isinstance(payload, env.QuestionCancelled):
        return {
            "t": "question-cancelled",
            "peer": payload.executing_peer,
            "id": payload.decision_id,
            "o": _encode_origin(payload.origin),
        }
    if isinstance(payload, env.QuestionAnswer):
        return {
            "t": "question-answer",
            "peer": payload.executing_peer,
            "id": payload.decision_id,
            "c": _encode_choice(payload.choice),
            "by": payload.answered_by,
        }
    if isinstance(payload, env.CommitNotice):
        if not isinstance(payload.status, TicketStatus):
            raise CodecError("commit notice with non-status {!r}".format(payload.status))
        return {
            "t": "commit-notice",
            "o": _encode_origin(payload.origin),
            "s": payload.status.value,
        }
    if isinstance(payload, Bundle):
        return {
            "t": "bundle",
            "ps": [encode_payload(inner) for inner in payload.payloads],
        }
    if isinstance(payload, _SCALAR_TYPES):
        # Plain scalars pass through (handy for transport-level tests and
        # diagnostics); everything else must be a declared envelope type.
        return {"t": "raw", "v": payload}
    raise CodecError("not a wire-encodable payload: {!r}".format(payload))


def _decode_payload_body(body: Dict[str, Any]) -> object:
    from ..federation import envelopes as env
    from ..federation.transport import Bundle
    from ..service.tickets import TicketStatus

    tag = body.get("t")
    if tag == "remote-update":
        return env.RemoteUpdate(
            operation=decode_user_operation(body["op"]),
            origin=_decode_origin(body["o"]),
        )
    if tag == "firing":
        return env.ExchangeFiring(
            tgd=decode_tgd(body["tgd"]),
            assignment_items=_decode_assignment_items(body["a"]),
            head_rows=tuple(decode_tuple(row) for row in body["rows"]),
            origin=_decode_origin(body["o"]),
        )
    if tag == "retraction":
        return env.ExchangeRetraction(
            tgd=decode_tgd(body["tgd"]),
            assignment_items=_decode_assignment_items(body["a"]),
            removed_row=decode_tuple(body["row"]),
            origin=_decode_origin(body["o"]),
        )
    if tag == "question-opened":
        return env.QuestionOpened(
            executing_peer=body["peer"],
            decision_id=body["id"],
            request=decode_frontier_request(body["req"]),
            origin=_decode_origin(body["o"]),
            ticket_description=body["desc"],
        )
    if tag == "question-cancelled":
        return env.QuestionCancelled(
            executing_peer=body["peer"],
            decision_id=body["id"],
            origin=_decode_origin(body["o"]),
        )
    if tag == "question-answer":
        return env.QuestionAnswer(
            executing_peer=body["peer"],
            decision_id=body["id"],
            choice=_decode_choice(body["c"]),
            answered_by=body["by"],
        )
    if tag == "commit-notice":
        return env.CommitNotice(
            origin=_decode_origin(body["o"]),
            status=TicketStatus(body["s"]),
        )
    if tag == "bundle":
        return Bundle(tuple(decode_payload(inner) for inner in body["ps"]))
    if tag == "raw":
        return body["v"]
    raise CodecError("unknown payload tag {!r}".format(tag))


# ----------------------------------------------------------------------
# The byte layer
# ----------------------------------------------------------------------
def dumps(structure: object) -> bytes:
    """Serialize a JSON-able structure deterministically (the codec's dialect)."""
    return json.dumps(
        structure, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    ).encode("utf-8")


def loads(data: bytes) -> object:
    try:
        return json.loads(data.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as error:
        raise CodecError("malformed wire bytes: {}".format(error)) from None


def encode_envelope(payload: object) -> bytes:
    """Encode a transport payload into self-describing, versioned bytes."""
    return dumps(
        {"v": WIRE_VERSION, "k": payload_kind(payload), "b": encode_payload(payload)}
    )


def decode_envelope(data: bytes) -> object:
    """Decode wire bytes; unknown versions and kinds are a :class:`CodecError`."""
    structure = loads(data)
    if not isinstance(structure, dict) or "v" not in structure:
        raise CodecError("wire bytes lack the versioned envelope header")
    version = structure["v"]
    if version != WIRE_VERSION:
        raise CodecError(
            "unsupported wire version {!r} (this build speaks {})".format(
                version, WIRE_VERSION
            )
        )
    return decode_payload(structure["b"])


# ----------------------------------------------------------------------
# Null-renaming-aware equality
# ----------------------------------------------------------------------
def _canonicalize_nulls(node: object, renaming: Dict[str, str]) -> object:
    """Rewrite every encoded labeled null to its first-occurrence-order name.

    Traversal is deterministic: lists in order, dict keys sorted — the same
    order :func:`dumps` serializes, so two payloads that differ only in null
    names canonicalize to identical structures.
    """
    if isinstance(node, dict):
        if node.get("t") == "null" and "n" in node and len(node) == 2:
            name = node["n"]
            if name not in renaming:
                renaming[name] = "_{}".format(len(renaming))
            return {"t": "null", "n": renaming[name]}
        return {
            key: _canonicalize_nulls(node[key], renaming)
            for key in sorted(node)
            # Trace contexts are observability metadata, not payload content:
            # two runs of the same workload get different span ids, and
            # equivalence must not depend on whether either run was traced.
            if key != "tr"
        }
    if isinstance(node, list):
        return [_canonicalize_nulls(item, renaming) for item in node]
    return node


def payloads_equivalent(a: object, b: object) -> bool:
    """Structural equality of two payloads up to labeled-null renaming.

    The renaming must be *consistent* (a bijection on null names), which the
    first-occurrence canonicalization gives for free: if the two payloads use
    their nulls in the same positions, the canonical forms coincide; any
    inconsistent reuse makes them differ.
    """
    canonical_a = _canonicalize_nulls(encode_payload(a), {})
    canonical_b = _canonicalize_nulls(encode_payload(b), {})
    return canonical_a == canonical_b
