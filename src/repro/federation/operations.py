"""User operations synthesized by the federation's exchange layer.

When a committed update at one peer affects a cross-peer mapping, the
federation does not reach into the remote store: it packages the effect as a
:class:`~repro.core.update.UserOperation` and submits it through the remote
peer's admission queue, exactly like a client would.  The remote peer's own
chase then takes over — including violations of *its* local mappings, abort
and restart under its optimistic scheduler, and frontier questions (routed
back to the originating peer by the network layer).

Two shapes exist, mirroring the two chase directions:

* :class:`RemoteFiringOperation` — the forward direction.  A cross-peer tgd's
  LHS matched at the source peer; the operation re-checks the RHS against the
  destination's *current* state (the match may have been satisfied by an
  earlier firing or a concurrent update while the envelope was in flight —
  the standard chase's "violation no longer holds" absorption) and inserts
  the instantiated head tuples only if it is still unsatisfied.
* :class:`RemoteRetractionOperation` — the backward direction.  A deletion at
  the RHS-owning peer destroyed the last RHS match for some exported
  assignment; every LHS match of that assignment at the source peer is now an
  RHS-violation.  The repair deletes the first witness tuple of each
  violating match — the same deterministic choice as
  :func:`~repro.workload.closed_loop.conservative_answer` makes at a negative
  frontier (``candidates[0]``), applied without a human because the witness
  choice cannot be routed during exchange.  Cascading local backward repairs
  (and their negative frontiers) still go through the peer's normal chase.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple as PyTuple

from ..core.terms import DataTerm, Variable
from ..core.tgd import Tgd
from ..core.tuples import Tuple
from ..core.update import UserOperation
from ..core.writes import Write, delete, insert
from ..query.compiled import get_plan
from ..storage.interface import DatabaseView


def _assignment_text(assignment: Dict[Variable, DataTerm]) -> str:
    return ", ".join(
        "{}={}".format(variable.name, value)
        for variable, value in sorted(assignment.items(), key=lambda item: item[0].name)
    )


class RemoteFiringOperation(UserOperation):
    """Fire a cross-peer mapping at the peer owning its head relations."""

    def __init__(
        self,
        tgd: Tgd,
        assignment: Dict[Variable, DataTerm],
        head_rows: Sequence[Tuple],
    ):
        self.tgd = tgd
        #: The exported (frontier-variable) assignment of the LHS match.
        self.assignment = dict(assignment)
        #: The RHS atoms instantiated at the source: exported variables bound,
        #: existentials already materialized as source-fresh labeled nulls.
        self.head_rows = tuple(head_rows)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RemoteFiringOperation):
            return NotImplemented
        return (
            self.tgd == other.tgd
            and self.assignment == other.assignment
            and self.head_rows == other.head_rows
        )

    def __hash__(self) -> int:
        return hash(("fire", self.tgd, frozenset(self.assignment.items()), self.head_rows))

    @property
    def is_positive(self) -> bool:
        return True

    def initial_writes(self, view: DatabaseView) -> List[Write]:
        plan = get_plan(self.tgd)
        if plan.rhs.exists_match(view, self.assignment):
            # Satisfied while the envelope was in flight (an earlier firing,
            # a concurrent local update): the violation no longer holds, so
            # the chase absorbs it — no writes, immediate termination.
            return []
        return [insert(row) for row in self.head_rows if not view.contains(row)]

    def target_relations(self):
        return frozenset(row.relation for row in self.head_rows)

    def describe(self) -> str:
        return "fire {} [{}]".format(self.tgd.name, _assignment_text(self.assignment))


class RemoteRetractionOperation(UserOperation):
    """Repair cross-peer RHS-violations at the peer owning the LHS relations."""

    def __init__(self, tgd: Tgd, assignment: Dict[Variable, DataTerm]):
        self.tgd = tgd
        #: The exported assignment whose last RHS match was deleted remotely.
        self.assignment = dict(assignment)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RemoteRetractionOperation):
            return NotImplemented
        return self.tgd == other.tgd and self.assignment == other.assignment

    def __hash__(self) -> int:
        return hash(("retract", self.tgd, frozenset(self.assignment.items())))

    @property
    def is_positive(self) -> bool:
        return False

    def initial_writes(self, view: DatabaseView) -> List[Write]:
        plan = get_plan(self.tgd)
        writes: List[Write] = []
        chosen: Set[Tuple] = set()
        for _, witness in plan.lhs.find_matches(view, self.assignment):
            surviving: PyTuple[Tuple, ...] = tuple(
                row for row in witness if row not in chosen
            )
            if not surviving:
                continue  # an earlier chosen deletion already breaks this match
            target = surviving[0]
            chosen.add(target)
            writes.append(delete(target))
        return writes

    def target_relations(self):
        return get_plan(self.tgd).lhs_relations

    def describe(self) -> str:
        return "retract {} [{}]".format(self.tgd.name, _assignment_text(self.assignment))
