"""Differential convergence: the drained federation vs. the one-repository chase.

Chase results are unique only up to the renaming of labeled nulls — every
terminating chase of the same instance under the same tgds yields a
*universal solution*, and any two universal solutions are homomorphically
equivalent (mapping nulls to terms, fixing constants).  That is therefore the
identity criterion used here: the federation's global committed state and the
single-repository :class:`~repro.core.chase.ChaseEngine` result must each map
homomorphically into the other.  Because a homomorphism fixes constants, this
criterion already forces the *ground* (null-free) parts of the two databases
to be exactly equal — which the checker also asserts directly, as the much
cheaper first pass.

The reference run replays the same user operations serially against one
:class:`~repro.storage.memory.MemoryDatabase` holding the union of all peers'
mappings, with :class:`~repro.core.oracle.AlwaysExpandOracle` standing in for
the humans — the same always-expand policy
:func:`~repro.workload.federated_loop.expanding_answer` applies on the
federated side, so both sides perform plain restricted-chase steps and the
universal-solution argument applies end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set

from ..core.chase import ChaseConfig, ChaseEngine
from ..core.oracle import AlwaysExpandOracle, FrontierOracle
from ..core.terms import DataTerm, LabeledNull, NullFactory
from ..core.tgd import Tgd
from ..core.tuples import Tuple
from ..core.update import UpdateRecord, UserOperation
from ..storage.interface import DatabaseView
from ..storage.memory import FrozenDatabase, MemoryDatabase


# ----------------------------------------------------------------------
# Homomorphic equivalence of instances with labeled nulls
# ----------------------------------------------------------------------
def _facts(view: DatabaseView) -> List[Tuple]:
    facts: List[Tuple] = []
    for relation in view.relations():
        facts.extend(view.tuples(relation))
    return facts


def _ground(facts: Iterable[Tuple]) -> Set[Tuple]:
    return {row for row in facts if not row.null_set()}


def find_homomorphism(
    source: DatabaseView, target: DatabaseView
) -> Optional[Dict[LabeledNull, DataTerm]]:
    """A mapping of *source*'s nulls to *target*'s terms embedding every fact.

    Constants map to themselves; a labeled null may map to any constant or
    null, consistently across its occurrences.  Returns the assignment, or
    ``None`` when no homomorphism exists.  Backtracking search, facts with the
    fewest unresolved nulls first; ground facts reduce to set membership.
    """
    target_index: Dict[str, List[Tuple]] = {}
    target_sets: Dict[str, Set[Tuple]] = {}
    for relation in target.relations():
        rows = list(target.tuples(relation))
        target_index[relation] = rows
        target_sets[relation] = set(rows)

    pending: List[Tuple] = []
    for row in _facts(source):
        if row.null_set():
            pending.append(row)
        elif row not in target_sets.get(row.relation, ()):
            return None  # a ground fact must be present verbatim

    assignment: Dict[LabeledNull, DataTerm] = {}

    def image_or_none(row: Tuple) -> Optional[Tuple]:
        """The fully mapped image of *row*, or ``None`` if nulls are unbound."""
        values = []
        for value in row.values:
            if isinstance(value, LabeledNull):
                bound = assignment.get(value)
                if bound is None:
                    return None
                values.append(bound)
            else:
                values.append(value)
        return Tuple(row.relation, values)

    def candidates_for(row: Tuple) -> List[Tuple]:
        matches: List[Tuple] = []
        for candidate in target_index.get(row.relation, ()):
            consistent = True
            for position, value in enumerate(row.values):
                if isinstance(value, LabeledNull):
                    bound = assignment.get(value)
                    if bound is not None and candidate[position] != bound:
                        consistent = False
                        break
                elif candidate[position] != value:
                    consistent = False
                    break
            if consistent:
                matches.append(candidate)
        return matches

    def solve(remaining: List[Tuple]) -> bool:
        if not remaining:
            return True
        # Most-constrained first: fewest unbound nulls, then fewest candidates.
        def unbound_count(row: Tuple) -> int:
            return sum(1 for null in row.null_set() if null not in assignment)

        remaining.sort(key=unbound_count)
        row = remaining[0]
        rest = remaining[1:]
        mapped = image_or_none(row)
        if mapped is not None:
            if mapped in target_sets.get(mapped.relation, ()):
                return solve(rest)
            return False
        for candidate in candidates_for(row):
            newly_bound: List[LabeledNull] = []
            ok = True
            for position, value in enumerate(row.values):
                if isinstance(value, LabeledNull) and value not in assignment:
                    assignment[value] = candidate[position]
                    newly_bound.append(value)
                elif isinstance(value, LabeledNull):
                    if candidate[position] != assignment[value]:
                        ok = False
                        break
            if ok and solve(rest):
                return True
            for null in newly_bound:
                del assignment[null]
        return False

    if solve(pending):
        return dict(assignment)
    return None


def databases_equivalent(a: DatabaseView, b: DatabaseView) -> bool:
    """Homomorphic equivalence — the identity criterion for chase results."""
    if _ground(_facts(a)) != _ground(_facts(b)):
        return False
    return find_homomorphism(a, b) is not None and find_homomorphism(b, a) is not None


# ----------------------------------------------------------------------
# The single-repository reference
# ----------------------------------------------------------------------
@dataclass
class ReferenceRun:
    """The single-repository chase over the union of mappings."""

    final: FrozenDatabase
    records: List[UpdateRecord] = field(default_factory=list)

    @property
    def frontier_operations(self) -> int:
        return sum(record.frontier_operation_count for record in self.records)

    @property
    def all_terminated(self) -> bool:
        return all(record.terminated for record in self.records)


def reference_chase(
    schema,
    initial: DatabaseView,
    mappings: Sequence[Tgd],
    operations: Sequence[UserOperation],
    oracle: Optional[FrontierOracle] = None,
    max_steps_per_update: int = 50_000,
) -> ReferenceRun:
    """Replay *operations* serially against one repository holding *mappings*."""
    database = MemoryDatabase(schema)
    database.load_from(initial)
    engine = ChaseEngine(
        database,
        list(mappings),
        oracle=oracle if oracle is not None else AlwaysExpandOracle(),
        null_factory=NullFactory.avoiding_view(initial, prefix="ref"),
        config=ChaseConfig(
            max_steps=max_steps_per_update,
            max_frontier_operations=max_steps_per_update,
            track_provenance=False,
        ),
    )
    records = engine.run_all(list(operations))
    return ReferenceRun(final=database.snapshot(), records=records)


# ----------------------------------------------------------------------
# The convergence report
# ----------------------------------------------------------------------
@dataclass
class ConvergenceReport:
    """Side-by-side reconciliation of a drained federation and its reference."""

    equivalent: bool
    ground_equal: bool
    federation_tuples: int
    reference_tuples: int
    #: Abort counts are an *execution* artifact (optimistic interleaving per
    #: peer), not a semantic one; they are reported for reconciliation, not
    #: compared — the serial reference never aborts.
    federation_aborts: int
    federation_frontier_resumes: int
    reference_frontier_operations: int

    def summary(self) -> str:
        return (
            "convergence: {} (ground {}); {} vs {} tuples; "
            "{} federated aborts, {} federated resumes, {} reference frontier ops".format(
                "EQUIVALENT" if self.equivalent else "DIVERGED",
                "equal" if self.ground_equal else "DIFFERENT",
                self.federation_tuples,
                self.reference_tuples,
                self.federation_aborts,
                self.federation_frontier_resumes,
                self.reference_frontier_operations,
            )
        )


def check_convergence(network, reference: ReferenceRun) -> ConvergenceReport:
    """Compare a drained federation's global state against a reference run."""
    if not network.quiescent():
        raise RuntimeError("convergence is only defined on a drained federation")
    federated = network.global_snapshot()
    ground_equal = _ground(_facts(federated)) == _ground(_facts(reference.final))
    equivalent = ground_equal and databases_equivalent(federated, reference.final)
    federation_aborts = 0
    federation_resumes = 0
    for peer in network.peers():
        statistics = peer.service.statistics
        federation_aborts += statistics.aborts
        federation_resumes += statistics.frontier_resumes
    return ConvergenceReport(
        equivalent=equivalent,
        ground_equal=ground_equal,
        federation_tuples=sum(
            federated.count(relation) for relation in federated.relations()
        ),
        reference_tuples=sum(
            reference.final.count(relation) for relation in reference.final.relations()
        ),
        federation_aborts=federation_aborts,
        federation_frontier_resumes=federation_resumes,
        reference_frontier_operations=reference.frontier_operations,
    )
