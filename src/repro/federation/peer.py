"""One federation peer: a full repository service plus exchange bookkeeping.

A :class:`Peer` owns a subset of the federation's relations and wraps its own
:class:`~repro.service.repository.RepositoryService` — its own multiversion
store, dependency tracker, optimistic scheduler, admission queue and frontier
inbox.  The federation talks to it through one *gateway* session (envelope
deliveries are submitted there) and through two hooks:

* a scheduler commit listener that turns every committed update's write set
  into outgoing exchange envelopes (cross-peer firings and retractions, plus
  commit notices for routed user updates), staged in :attr:`Peer.outbox`;
* :meth:`Peer.scan_questions`, which diffs the service's frontier inbox after
  each pump — new questions of *remote-origin* updates are staged for routing
  to the originating peer, questions that vanished without being answered
  (their update aborted) produce cancellations.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Set, Tuple as PyTuple

from ..core.terms import NullFactory
from ..service.inbox import InboxQuestion
from ..service.repository import RepositoryService
from ..service.tickets import RemoteOrigin, TicketStatus
from .envelopes import (
    CommitNotice,
    ExchangeFiring,
    ExchangeRetraction,
    QuestionCancelled,
    QuestionOpened,
)
from .exchange import ExchangeRules, coalesce_envelopes, envelopes_for_commit


class Peer:
    """A named member of the federation."""

    def __init__(
        self,
        name: str,
        service: RepositoryService,
        owned_relations: PyTuple[str, ...],
        rules: ExchangeRules,
        firing_factory: NullFactory,
        coalesce: bool = True,
    ):
        self.name = name
        self.service = service
        self.owned = frozenset(owned_relations)
        self._rules = rules
        self._firing_factory = firing_factory
        #: Relations whose writes can produce exchange envelopes here; write
        #: sets touching none of them skip commit-time exchange entirely.
        self._exchange_relations = rules.exchange_relations(name)
        #: Coalesce each commit batch's envelopes before staging (dedup
        #: absorbed firings, cancel firing/retraction pairs, merge notices).
        self._coalesce = coalesce
        #: The session envelope deliveries are submitted under.
        self.gateway = service.open_session("federation:{}".format(name))
        #: Staged ``(destination, payload)`` pairs; the network flushes them
        #: into the transport at the end of each federation pump.
        self.outbox: List[PyTuple[str, object]] = []
        #: Open service decisions we know about: decision_id -> origin of the
        #: asking ticket (``None`` when the question is answerable locally).
        self._known_questions: Dict[int, Optional[RemoteOrigin]] = {}
        #: Routed decisions answered through a delivered QuestionAnswer (their
        #: disappearance from the inbox is success, not cancellation).
        self._answered_remote: Set[int] = set()
        #: Local ticket ids whose terminal state the origin peer awaits.
        self._notify: Dict[int, RemoteOrigin] = {}
        #: Exchange counters (aggregated by the network's metrics snapshot).
        self.firings_emitted = 0
        self.retractions_emitted = 0
        self.notices_emitted = 0
        #: Envelopes the per-batch coalescing dropped before the wire.
        self.envelopes_coalesced = 0
        #: Monotonic activity sequence, the in-process twin of the socket
        #: peer host's: the network advances it whenever this peer receives
        #: a delivery, makes pump progress, or flushes its outbox.  Unchanged
        #: seq between two observations plus conserved link watermarks means
        #: nothing moved in between.
        self.activity_seq = 0
        service.add_batch_commit_listener(self._on_batch_commit)

    # ------------------------------------------------------------------
    # Commit-time exchange
    # ------------------------------------------------------------------
    def expect_notice(self, ticket_id: int, origin: RemoteOrigin) -> None:
        """Mark a delivered routed update: its commit must be reported home."""
        self._notify[ticket_id] = origin

    def _on_batch_commit(self, commits) -> None:
        """Scheduler batch listener: one staging round per commit batch.

        The whole batch's envelopes are produced first, coalesced together
        (duplicates across the batch's members are exactly what the
        per-commit listener could never see), and only then staged for the
        network's per-destination bundle flush.
        """
        staged: List[PyTuple[str, object]] = []
        for priority, writes in commits:
            self._stage_commit(priority, writes, staged)
        if self._coalesce and len(staged) > 1:
            coalesced = coalesce_envelopes(staged)
            self.envelopes_coalesced += len(staged) - len(coalesced)
            staged = coalesced
        for destination, payload in staged:
            if isinstance(payload, ExchangeFiring):
                self.firings_emitted += 1
            elif isinstance(payload, ExchangeRetraction):
                self.retractions_emitted += 1
            elif isinstance(payload, CommitNotice):
                self.notices_emitted += 1
            self.outbox.append((destination, payload))

    def _stage_commit(
        self,
        priority: int,
        writes,
        staged: List[PyTuple[str, object]],
    ) -> None:
        """Produce one committed update's envelopes into *staged*."""
        ticket = self.service.ticket_for_priority(priority)
        if ticket is not None and ticket.origin is not None:
            origin = ticket.origin
        else:
            origin = RemoteOrigin(
                self.name, ticket.ticket_id if ticket is not None else 0
            )
        context = ticket.trace_context if ticket is not None else None
        if writes and any(
            logged.write.relation in self._exchange_relations for logged in writes
        ):
            view = self.service.scheduler.store.view_for(priority)
            produced = envelopes_for_commit(
                self._rules, self.name, writes, view, self._firing_factory, origin
            )
            if context is not None:
                # Outgoing envelopes continue the committing update's trace,
                # so the receiving peer's chase parents into it.
                produced = [
                    (destination, replace(payload, trace=context))
                    for destination, payload in produced
                ]
            staged.extend(produced)
        if ticket is not None and ticket.ticket_id in self._notify:
            notify_origin = self._notify.pop(ticket.ticket_id)
            notice = CommitNotice(origin=notify_origin, status=TicketStatus.COMMITTED)
            if context is not None:
                notice = replace(notice, trace=context)
            staged.append((notify_origin.peer, notice))

    def scan_failures(self) -> None:
        """Report routed updates that died without committing.

        The commit listener only ever sees commits; a routed update stopped
        by a budget stall ends ``FAILED`` through the service's stall path,
        and its originating peer must still learn the terminal state or its
        federated ticket (and closed-loop client) would wait forever.
        """
        for ticket_id in list(self._notify):
            ticket = self.service.ticket(ticket_id)
            if ticket.status is not TicketStatus.FAILED:
                continue
            origin = self._notify.pop(ticket_id)
            self.notices_emitted += 1
            notice = CommitNotice(origin=origin, status=TicketStatus.FAILED)
            if ticket.trace_context is not None:
                notice = replace(notice, trace=ticket.trace_context)
            self.outbox.append((origin.peer, notice))

    # ------------------------------------------------------------------
    # Question routing
    # ------------------------------------------------------------------
    def mark_answered(self, decision_id: int) -> None:
        """A routed question was answered via the transport; not a cancel."""
        self._answered_remote.add(decision_id)

    def scan_questions(self) -> PyTuple[List[InboxQuestion], List[int]]:
        """Diff the service inbox; stage routing envelopes for remote questions.

        Returns ``(opened_local, vanished_ids)``: the questions newly opened
        for *locally originated* updates (the network files them in this
        peer's federated inbox) and every previously known decision id that
        left the service inbox (the network drops stale local entries; for
        remote-origin ones a :class:`QuestionCancelled` was staged unless the
        question disappeared because we answered it).
        """
        questions = self.service.inbox()
        if not self._known_questions and not questions:
            # Nothing known, nothing open: the diff is empty (the common
            # case on every quiet federation round).
            return [], []
        opened_local: List[InboxQuestion] = []
        open_ids: Set[int] = set()
        for question in questions:
            open_ids.add(question.decision_id)
            if question.decision_id in self._known_questions:
                continue
            origin = question.ticket.origin
            if origin is None or origin.peer == self.name:
                self._known_questions[question.decision_id] = None
                opened_local.append(question)
            else:
                self._known_questions[question.decision_id] = origin
                self.outbox.append(
                    (
                        origin.peer,
                        QuestionOpened(
                            executing_peer=self.name,
                            decision_id=question.decision_id,
                            request=question.request,
                            origin=origin,
                            ticket_description=question.ticket.describe(),
                            trace=question.ticket.trace_context,
                        ),
                    )
                )
        vanished: List[int] = []
        for decision_id in list(self._known_questions):
            if decision_id in open_ids:
                continue
            origin = self._known_questions.pop(decision_id)
            vanished.append(decision_id)
            answered = decision_id in self._answered_remote
            self._answered_remote.discard(decision_id)
            if origin is not None and not answered:
                self.outbox.append(
                    (
                        origin.peer,
                        QuestionCancelled(
                            executing_peer=self.name,
                            decision_id=decision_id,
                            origin=origin,
                        ),
                    )
                )
        return opened_local, vanished

    # ------------------------------------------------------------------
    # Checkpoint (durability across peer restarts)
    # ------------------------------------------------------------------
    def checkpoint(self, path: str, extra: Optional[Dict] = None) -> Dict:
        """Persist this peer's service plus its exchange bookkeeping.

        On top of the service checkpoint (committed store, watermark, pending
        inbox, null-factory and decision-id state) the peer stores its
        *firing* null-factory state — the factory that materializes
        existentials inside outgoing :class:`ExchangeFiring` envelopes, whose
        numbering must also survive a restart or a reborn peer could mint a
        null already living in another peer's store — and the commit-notice
        obligations (``ticket id → origin``) of routed updates still in
        flight, so their originators still learn the terminal state after the
        restart.  The outbox is always empty at checkpoint time in a pumped
        federation (the network flushes it every round); anything in flight
        on the transport survives the restart on the transport itself.

        *extra* lets the caller piggyback its own restart bookkeeping (the
        socket harness's peer host stores its federated-ticket table there);
        the peer's own keys win on collision.
        """
        body = dict(extra or {})
        body.update({
            "peer": self.name,
            "firing_factory": list(self._firing_factory.state()),
            "notify": [
                [ticket_id, {"peer": origin.peer, "ticket": origin.ticket_id}]
                for ticket_id, origin in sorted(self._notify.items())
            ],
        })
        return self.service.checkpoint(path, extra=body)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def owned_snapshot(self) -> Dict[str, frozenset]:
        """The committed contents of this peer's owned relations."""
        snapshot = self.service.snapshot()
        return {
            relation: frozenset(snapshot.tuples(relation)) for relation in self.owned
        }

    def describe(self) -> str:
        return "peer {} ({} relations, {} mappings)".format(
            self.name, len(self.owned), len(self._rules.local_mappings(self.name))
        )
