"""The socket transport: framed codec bytes between real OS processes.

This module is the byte-moving half of the multi-process federation.  Where
:class:`~repro.federation.transport.Transport` simulates a network inside one
process (and stays on as the differential oracle), the classes here put the
same codec dialect on actual sockets:

* :class:`SocketAddress` — a Unix-domain path or a TCP host/port, with a
  codec-JSON body so address maps travel inside peer config files;
* :class:`FrameChannel` — one connected stream socket speaking
  :mod:`repro.codec.framing` frames: ``send_frame`` writes, ``receive``
  drains whatever the kernel has and returns complete frames (partials stay
  buffered in the channel's :class:`~repro.codec.framing.FrameDecoder`);
* :class:`FrameListener` — the accepting side, yielding channels;
* :class:`OutgoingLink` — the sender-side per-destination queue re-creating
  the in-process transport's link semantics on real sockets: optional
  seconds-based delivery delay, seeded reordering of each ready batch, and
  ``hold``/``release`` (partition: frames queue, nothing is lost) plus
  transparent reconnect (a dead destination keeps its frames queued until it
  comes back — exactly how the simulated transport treats a partition).

Everything here is deliberately blocking-socket based: channels use blocking
sockets with a send timeout, and the peer host multiplexes *reads* with a
``selectors`` loop.  Frames are small (a per-destination bundle is one
frame), so blocking ``sendall`` cannot stall meaningfully, and the code
stays free of half-written-frame bookkeeping.
"""

from __future__ import annotations

import os
import random
import socket
import time
from typing import Dict, List, Optional, Tuple

from ..codec.framing import Frame, FrameDecoder, encode_frame

#: Send-side socket timeout: a peer whose kernel buffer stays full this long
#: is treated as dead (frames requeue and the link redials).
SEND_TIMEOUT_SECONDS = 10.0


class SocketTransportError(ConnectionError):
    """A channel operation failed (the peer is gone or the stream broke)."""


class ChannelClosed(SocketTransportError):
    """The remote side closed the stream (EOF)."""


class SocketAddress:
    """Where a peer listens: a Unix-domain path or a TCP endpoint."""

    __slots__ = ("kind", "path", "host", "port")

    def __init__(
        self,
        kind: str,
        path: Optional[str] = None,
        host: Optional[str] = None,
        port: Optional[int] = None,
    ):
        if kind not in ("unix", "tcp"):
            raise ValueError("unknown socket address kind {!r}".format(kind))
        if kind == "unix" and not path:
            raise ValueError("a unix address needs a path")
        if kind == "tcp" and (not host or not port):
            raise ValueError("a tcp address needs host and port")
        self.kind = kind
        self.path = path
        self.host = host
        self.port = port

    @classmethod
    def unix(cls, path: str) -> "SocketAddress":
        return cls("unix", path=path)

    @classmethod
    def tcp(cls, host: str, port: int) -> "SocketAddress":
        return cls("tcp", host=host, port=port)

    def to_body(self) -> Dict[str, object]:
        """The JSON body peer config files carry."""
        if self.kind == "unix":
            return {"kind": "unix", "path": self.path}
        return {"kind": "tcp", "host": self.host, "port": self.port}

    @classmethod
    def from_body(cls, body: Dict[str, object]) -> "SocketAddress":
        if body["kind"] == "unix":
            return cls.unix(str(body["path"]))
        return cls.tcp(str(body["host"]), int(body["port"]))

    def _family(self) -> int:
        return socket.AF_UNIX if self.kind == "unix" else socket.AF_INET

    def _target(self):
        return self.path if self.kind == "unix" else (self.host, self.port)

    def connect(self, timeout: float = 5.0) -> socket.socket:
        """Dial this address; returns a connected blocking socket."""
        sock = socket.socket(self._family(), socket.SOCK_STREAM)
        sock.settimeout(timeout)
        try:
            sock.connect(self._target())
        except OSError:
            sock.close()
            raise
        sock.settimeout(SEND_TIMEOUT_SECONDS)
        if self.kind == "tcp":
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return sock

    def describe(self) -> str:
        if self.kind == "unix":
            return "unix:{}".format(self.path)
        return "tcp:{}:{}".format(self.host, self.port)

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return "SocketAddress({})".format(self.describe())


class FrameChannel:
    """One connected stream socket carrying frames in both directions."""

    def __init__(self, sock: socket.socket, label: str = ""):
        self.sock = sock
        #: Who is on the other end ("" until the hello frame names them).
        self.label = label
        self.decoder = FrameDecoder()
        self.closed = False

    def fileno(self) -> int:
        return self.sock.fileno()

    def send_frame(self, kind: int, payload: bytes) -> None:
        self.send_bytes(encode_frame(kind, payload))

    def send_bytes(self, data: bytes) -> None:
        """Write pre-framed bytes (possibly several frames batched)."""
        if self.closed:
            raise SocketTransportError("channel {} is closed".format(self.label))
        try:
            self.sock.sendall(data)
        except OSError as error:
            self.close()
            raise SocketTransportError(
                "send to {} failed: {}".format(self.label or "peer", error)
            )

    def receive(self) -> List[Frame]:
        """Read once and return every frame that completed.

        Call after a readiness notification: one ``recv`` on a readable
        blocking socket returns promptly.  Raises :class:`ChannelClosed` on
        EOF (the remote side is gone).
        """
        if self.closed:
            raise ChannelClosed("channel {} is closed".format(self.label))
        try:
            data = self.sock.recv(1 << 16)
        except OSError as error:
            self.close()
            raise ChannelClosed(
                "recv from {} failed: {}".format(self.label or "peer", error)
            )
        if not data:
            self.close()
            raise ChannelClosed("{} closed the stream".format(self.label or "peer"))
        return self.decoder.feed(data)

    def close(self) -> None:
        if not self.closed:
            self.closed = True
            try:
                self.sock.close()
            except OSError:  # pragma: no cover - close is best effort
                pass


class FrameListener:
    """The accepting side of a peer: bound, listening, yields channels."""

    def __init__(self, address: SocketAddress, backlog: int = 16):
        self.address = address
        if address.kind == "unix":
            # A stale socket file from a crashed predecessor blocks bind.
            try:
                os.unlink(address.path)
            except OSError:
                pass
        self.sock = socket.socket(address._family(), socket.SOCK_STREAM)
        if address.kind == "tcp":
            self.sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self.sock.bind(address._target())
        self.sock.listen(backlog)

    def fileno(self) -> int:
        return self.sock.fileno()

    def accept(self) -> FrameChannel:
        sock, _ = self.sock.accept()
        sock.settimeout(SEND_TIMEOUT_SECONDS)
        if self.address.kind == "tcp":
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return FrameChannel(sock)

    def close(self) -> None:
        try:
            self.sock.close()
        finally:
            if self.address.kind == "unix":
                try:
                    os.unlink(self.address.path)
                except OSError:
                    pass


class OutgoingLink:
    """Sender-side state of one directed peer link.

    Mirrors the in-process transport's per-link queue: frames queue with a
    due time (``delay`` seconds), a seeded RNG shuffles each ready batch
    (reorder), and ``hold`` parks the whole link (partition — frames are
    *held*, never dropped).  The channel is dialed lazily and redialed after
    failures; frames stay queued across reconnects, so a killed-and-restarted
    destination receives everything once it listens again.
    """

    def __init__(
        self,
        destination: str,
        address: SocketAddress,
        delay: float = 0.0,
        rng: Optional[random.Random] = None,
    ):
        self.destination = destination
        self.address = address
        self.delay = delay
        self.rng = rng
        self.held = False
        #: Queued ``(due_time, frame_bytes)`` pairs, FIFO by append order.
        self.queue: List[Tuple[float, bytes]] = []
        self.channel: Optional[FrameChannel] = None
        #: Earliest next redial (monotonic seconds); backs off on failure.
        self._retry_at = 0.0
        #: Frames actually written to the socket (the drain accounting the
        #: coordinator compares against the destination's received count).
        self.frames_sent = 0

    def enqueue(self, frame_bytes: bytes, now: float) -> None:
        self.queue.append((now + self.delay, frame_bytes))

    @property
    def queued(self) -> int:
        return len(self.queue)

    def stats(self) -> Dict[str, object]:
        """Inflight gauges for the telemetry plane (cheap, no syscalls)."""
        return {
            "queued": len(self.queue),
            "held": self.held,
            "connected": self.channel is not None and not self.channel.closed,
            "frames_sent": self.frames_sent,
        }

    def next_due(self) -> Optional[float]:
        """The earliest due time among queued frames (None when idle/held)."""
        if self.held or not self.queue:
            return None
        return min(due for due, _ in self.queue)

    def _connect(self, hello: Optional[bytes]) -> Optional[FrameChannel]:
        try:
            sock = self.address.connect()
        except OSError:
            return None
        channel = FrameChannel(sock, label=self.destination)
        if hello is not None:
            try:
                channel.send_bytes(hello)
            except SocketTransportError:
                return None
        return channel

    def flush(self, now: float, hello: Optional[bytes] = None) -> int:
        """Send every due frame; returns how many went out.

        *hello* is the identification frame a fresh connection must lead
        with (the receiver learns who is dialing from it).  On any send
        failure the unsent frames stay queued and the link backs off before
        redialing — delivery is at-least-once over reconnects, which is the
        same contract the in-process transport gives a healed partition.
        """
        if self.held or not self.queue:
            return 0
        ready = [entry for entry in self.queue if entry[0] <= now]
        if not ready:
            return 0
        if self.channel is None or self.channel.closed:
            if now < self._retry_at:
                return 0
            self.channel = self._connect(hello)
            if self.channel is None:
                self._retry_at = now + 0.05
                return 0
        if self.rng is not None and len(ready) > 1:
            self.rng.shuffle(ready)
        remaining = [entry for entry in self.queue if entry[0] > now]
        sent = 0
        try:
            # One syscall for the whole ready batch: the receiver's decoder
            # splits the coalesced segment back into frames.
            self.channel.send_bytes(b"".join(frame for _, frame in ready))
            sent = len(ready)
        except SocketTransportError:
            # Nothing (or everything) went out; sendall gives no partial
            # count.  Requeue the whole batch — receivers absorb duplicates
            # idempotently, exactly like redelivery after a heal.
            remaining = ready + remaining
            self._retry_at = now + 0.05
        self.queue = remaining
        self.frames_sent += sent
        return sent

    def reset(self) -> None:
        """Drop the connection (keep the queue); the next flush redials.

        Needed when the *destination* process is replaced: a TCP connection
        to a killed peer can accept one more ``sendall`` into its dead
        buffer without an error (the RST races the write), silently losing
        the frame — and this side never notices, because outgoing links are
        write-only.  Resetting before traffic resumes makes the next flush
        dial the reborn listener instead.
        """
        self.close()
        self._retry_at = 0.0

    def close(self) -> None:
        if self.channel is not None:
            self.channel.close()
            self.channel = None


class StagingWindow:
    """Per-destination send-side payload staging with three flush triggers.

    The adaptive envelope staging window: payloads headed for the same
    destination accumulate here instead of being framed immediately, and the
    buffer flushes when the *first* of three knobs trips —

    * ``rounds`` — K scheduler pump rounds have passed since the buffer
      opened (K=1: flush in the same round it was staged, today's behavior);
    * ``max_bytes`` — B encoded payload bytes are staged (0 disables);
    * ``delay`` — T seconds have passed since the buffer opened (0 disables).

    A wider window lets the coalescer cancel/dedup across more commits and
    puts more payloads in each frame (throughput); a narrow one bounds the
    latency a staged payload can sit (latency).  The window itself is
    mechanism only: the host owns the clock, the round counter, and the
    actual encode/enqueue of flushed batches.
    """

    __slots__ = ("rounds", "max_bytes", "delay", "_batches", "_bytes",
                 "_opened_round", "_deadline", "flushed_batches",
                 "payloads_staged")

    def __init__(self, rounds: int = 1, max_bytes: int = 0, delay: float = 0.0):
        self.rounds = max(1, int(rounds))
        self.max_bytes = max(0, int(max_bytes))
        self.delay = max(0.0, float(delay))
        self._batches: Dict[str, List[object]] = {}
        self._bytes: Dict[str, int] = {}
        self._opened_round: Dict[str, int] = {}
        self._deadline: Dict[str, float] = {}
        self.flushed_batches = 0
        self.payloads_staged = 0

    @property
    def passthrough(self) -> bool:
        """True when the default knobs make staging a no-op window."""
        return self.rounds <= 1 and not self.max_bytes and not self.delay

    def stage(
        self, destination: str, payload: object, round_number: int,
        now: float, size: int = 0,
    ) -> None:
        batch = self._batches.get(destination)
        if batch is None:
            batch = self._batches[destination] = []
            self._bytes[destination] = 0
            self._opened_round[destination] = round_number
            self._deadline[destination] = (
                now + self.delay if self.delay > 0 else float("inf")
            )
        batch.append(payload)
        self._bytes[destination] += size
        self.payloads_staged += 1

    def staged_count(self) -> int:
        """Payloads currently parked in the window (a quiescence input)."""
        return sum(len(batch) for batch in self._batches.values())

    def next_deadline(self) -> Optional[float]:
        """The earliest T-trigger deadline among open buffers (None if none)."""
        deadlines = [due for due in self._deadline.values() if due != float("inf")]
        return min(deadlines) if deadlines else None

    def due(self, round_number: int, now: float, force: bool = False) -> List[str]:
        """Destinations whose window tripped, in staging order."""
        ready: List[str] = []
        for destination, batch in self._batches.items():
            if not batch:
                continue
            if (
                force
                or round_number - self._opened_round[destination] + 1 >= self.rounds
                or (self.max_bytes and self._bytes[destination] >= self.max_bytes)
                or now >= self._deadline[destination]
            ):
                ready.append(destination)
        return ready

    def take(self, destination: str) -> List[object]:
        """Remove and return one destination's staged batch."""
        batch = self._batches.pop(destination, [])
        self._bytes.pop(destination, None)
        self._opened_round.pop(destination, None)
        self._deadline.pop(destination, None)
        if batch:
            self.flushed_batches += 1
        return batch


def monotonic() -> float:
    """The clock links and hosts share (separable for tests)."""
    return time.monotonic()
