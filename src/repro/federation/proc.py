"""The peer process: one federation peer behind a socket, in its own OS process.

This is the other half of the multi-process federation (the coordinator side
lives in :mod:`repro.federation.process_network`).  A :class:`PeerHost` is
what runs *inside* each spawned process: it owns a full
:class:`~repro.federation.peer.Peer` (service, store, scheduler, admission,
inbox) built from a codec-JSON config file, listens on its socket address,
and mirrors — deliberately, line for line — the delivery semantics of
:meth:`repro.federation.network.FederatedNetwork._deliver_payload`, so that a
drained socket federation is the *same* exchange protocol as the in-process
one and the differential oracle applies.

Two kinds of traffic cross the host's sockets, both as
:mod:`repro.codec.framing` frames:

* **envelope frames** between peers — the PR 5 wire codec *is* the protocol:
  one frame wraps one ``encode_envelope`` document, and a per-destination
  flush travels as a single frame carrying one
  :class:`~repro.federation.transport.Bundle` (many payloads, one
  round-trip);
* **control frames** between the coordinator and each peer — submissions,
  question answers, status polls, partition holds, checkpoint/halt and exit
  — with events (ticket terminals, question opened/vanished) pushed back on
  the same connection.

The host is single-threaded and reactive: a ``selectors`` loop blocks on the
sockets, and every wakeup runs deliveries, service pumps, question scans and
outbox flushes to a fixpoint before sleeping again.  When the coordinator's
connection closes — including because the coordinating process was killed —
the host exits, which is what keeps test teardown free of orphan processes.

The module doubles as the ``repro-peer`` console entry point::

    repro-peer --config /path/to/peer-config.json
"""

from __future__ import annotations

import argparse
import os
import selectors
import signal
import sys
import time
import traceback
from random import Random
from typing import Dict, List, Optional, Tuple

from ..codec.framing import FRAME_CONTROL, FRAME_ENVELOPE, encode_frame
from ..codec.wire import (
    WIRE_VERSION,
    CodecError,
    _decode_choice,
    decode_envelope,
    decode_payload,
    decode_schema,
    decode_tgd,
    decode_tuple,
    decode_user_operation,
    dumps,
    encode_envelope,
    encode_frontier_request,
    encode_payload,
    encode_schema,
    encode_tgd,
    encode_tuple,
    encode_user_operation,
    loads,
    payload_kind,
)
from ..core.oracle import OracleError
from ..core.terms import NullFactory
from ..core.update import DeleteOperation, InsertOperation
from ..obs.flight import FlightRecorder
from ..obs.trace import NOOP_TRACER, SpanContext, Tracer
from ..service.admission import AdmissionConfig, AdmissionError
from ..service.repository import RepositoryService
from ..service.tickets import RemoteOrigin
from ..storage.memory import FrozenDatabase
from .envelopes import (
    CommitNotice,
    ExchangeFiring,
    ExchangeRetraction,
    QuestionAnswer,
    QuestionCancelled,
    QuestionOpened,
    RemoteUpdate,
)
from .exchange import ExchangeRules, FederationError, coalesce_envelopes
from .operations import RemoteFiringOperation, RemoteRetractionOperation
from .peer import Peer
from .socket_transport import (
    ChannelClosed,
    FrameChannel,
    FrameListener,
    OutgoingLink,
    SocketAddress,
    SocketTransportError,
    StagingWindow,
    monotonic,
)
from .transport import Bundle

#: The reserved peer name the coordinator identifies itself with.
COORDINATOR = "@coordinator"


# ----------------------------------------------------------------------
# Peer config files (written by the coordinator, read by the peer process)
# ----------------------------------------------------------------------
def encode_admission(admission: Optional[AdmissionConfig]) -> Optional[Dict]:
    if admission is None:
        return None
    return {
        "max_in_flight": admission.max_in_flight,
        "batch_size": admission.batch_size,
        "max_queue_depth": admission.max_queue_depth,
        "compatible_groups": admission.compatible_groups,
    }


def decode_admission(body: Optional[Dict]) -> Optional[AdmissionConfig]:
    if body is None:
        return None
    return AdmissionConfig(
        max_in_flight=int(body["max_in_flight"]),
        batch_size=int(body["batch_size"]),
        max_queue_depth=None
        if body["max_queue_depth"] is None
        else int(body["max_queue_depth"]),
        compatible_groups=bool(body["compatible_groups"]),
    )


def encode_peer_config(
    name: str,
    schema,
    initial,
    mappings,
    ownership: Dict[str, Tuple[str, ...]],
    addresses: Dict[str, SocketAddress],
    tracker: str = "PRECISE",
    admission: Optional[AdmissionConfig] = None,
    max_total_steps: int = 1_000_000,
    group_commit: bool = True,
    coalesce: bool = True,
    link_delay: float = 0.0,
    reorder_seed: Optional[int] = None,
    trace: bool = False,
    trace_path: Optional[str] = None,
    restore: Optional[str] = None,
    telemetry_interval: float = 0.0,
    flight_dir: Optional[str] = None,
    flight_capacity: int = 512,
    stage_rounds: int = 1,
    stage_bytes: int = 0,
    stage_delay: float = 0.0,
) -> bytes:
    """One peer's complete startup description, as canonical codec JSON.

    *initial* is the **union** initial database: the peer filters its own
    store down to owned relations but needs the whole thing for null-factory
    avoidance, exactly like the in-process network's constructor.
    """
    body = {
        "v": WIRE_VERSION,
        "t": "peer-config",
        "name": name,
        "schema": encode_schema(schema),
        "mappings": [encode_tgd(tgd) for tgd in mappings],
        "ownership": [
            [peer, list(relations)] for peer, relations in ownership.items()
        ],
        "initial": {
            relation: [encode_tuple(row) for row in sorted(
                initial.tuples(relation), key=repr
            )]
            for relation in schema.relation_names()
        },
        "addresses": {
            peer: address.to_body() for peer, address in addresses.items()
        },
        "tracker": tracker,
        "admission": encode_admission(admission),
        "max_total_steps": max_total_steps,
        "group_commit": group_commit,
        "coalesce": coalesce,
        "link_delay": link_delay,
        "reorder_seed": reorder_seed,
        "trace": trace,
        "trace_path": trace_path,
        "restore": restore,
        "telemetry_interval": telemetry_interval,
        "flight_dir": flight_dir,
        "flight_capacity": flight_capacity,
        "stage_rounds": stage_rounds,
        "stage_bytes": stage_bytes,
        "stage_delay": stage_delay,
    }
    return dumps(body) + b"\n"


# ----------------------------------------------------------------------
# The host
# ----------------------------------------------------------------------
class PeerHost:
    """One peer's event loop: sockets in, chase in the middle, sockets out."""

    def __init__(self, config: Dict):
        if config.get("v") != WIRE_VERSION:
            raise CodecError(
                "unsupported peer-config version {!r} (this build speaks {})".format(
                    config.get("v"), WIRE_VERSION
                )
            )
        if config.get("t") != "peer-config":
            raise CodecError("not a peer config")
        self.name = config["name"]
        self.schema = decode_schema(config["schema"])
        mappings = [decode_tgd(body) for body in config["mappings"]]
        self._ownership = {
            peer: tuple(relations) for peer, relations in config["ownership"]
        }
        self.owner_of: Dict[str, str] = {}
        for peer, relations in self._ownership.items():
            for relation in relations:
                self.owner_of[relation] = peer
        self.rules = ExchangeRules(mappings, self.owner_of)
        initial = FrozenDatabase(self.schema, {
            relation: frozenset(decode_tuple(body) for body in rows)
            for relation, rows in config["initial"].items()
        })
        self._addresses = {
            peer: SocketAddress.from_body(body)
            for peer, body in config["addresses"].items()
        }
        self._admission = decode_admission(config["admission"])
        self._tracker = config["tracker"]
        self._max_total_steps = config["max_total_steps"]
        self._group_commit = config["group_commit"]
        self._coalesce = config["coalesce"]
        self._trace_path = config.get("trace_path")
        if config.get("trace"):
            # One tracer per process, ids prefixed with the peer name so the
            # coordinator's merged multi-file export cannot collide.
            self.tracer = Tracer(prefix="{}.".format(self.name))
        else:
            # Explicitly the noop even under REPRO_TRACE=1: the inherited
            # environment must not wire peer processes to *unprefixed*
            # process-local tracers whose ids would collide when merged.
            self.tracer = NOOP_TRACER
        self._build_peer(initial, mappings, config.get("restore"))

        # -- sockets -----------------------------------------------------
        self._listener = FrameListener(self._addresses[self.name])
        self._selector = selectors.DefaultSelector()
        self._selector.register(self._listener, selectors.EVENT_READ, self._listener)
        link_delay = float(config.get("link_delay") or 0.0)
        reorder_seed = config.get("reorder_seed")
        self._links: Dict[str, OutgoingLink] = {}
        for peer, address in self._addresses.items():
            if peer == self.name:
                continue
            rng = None
            if reorder_seed is not None:
                # Seed with a string: deterministic across processes (unlike
                # hash()), distinct per directed link.
                rng = Random("{}:{}:{}".format(reorder_seed, self.name, peer))
            self._links[peer] = OutgoingLink(
                peer, address, delay=link_delay, rng=rng
            )
        #: The adaptive envelope staging window (K pump rounds / B bytes /
        #: T seconds, whichever trips first).  Default knobs make it a
        #: passthrough: ``_stage_outbox`` keeps today's immediate-enqueue
        #: path bit for bit.
        self._staging = StagingWindow(
            rounds=int(config.get("stage_rounds") or 1),
            max_bytes=int(config.get("stage_bytes") or 0),
            delay=float(config.get("stage_delay") or 0.0),
        )
        #: Scheduler pump rounds driven so far (the window's K clock).
        self._pump_rounds = 0
        self._hello = encode_frame(
            FRAME_CONTROL, dumps({"t": "hello", "peer": self.name})
        )
        self._coordinator: Optional[FrameChannel] = None
        self._pending_events: List[bytes] = []

        # -- bookkeeping -------------------------------------------------
        #: Frames decoded per source peer (the drain accounting the
        #: coordinator compares with senders' ``frames_sent``).
        self.frames_received: Dict[str, int] = {}
        self.payloads_received = 0
        #: Own federated inbox keys ``(executing_peer, decision_id)``.
        self._inbox: Dict[Tuple[str, int], bool] = {}
        #: Envelope deliveries deferred by a full admission queue.
        self._retry: List[object] = []
        #: Coordinator submissions deferred the same way (flood submission
        #: must be loss-free: admission overflow is backpressure here, not a
        #: client error, because the submitting client is a remote process).
        self._submit_retry: List[Tuple[int, object]] = []
        self.deliveries_deferred = 0
        self.answers_dropped = 0
        self._halted = False
        self._exit = False
        #: Monotonic activity sequence: advances whenever this peer decodes
        #: an envelope frame, pushes frames onto a socket, makes local chase
        #: progress, or executes a coordinator submit/answer.  The
        #: coordinator's watermark drain compares it across observations —
        #: unchanged seq plus conserved per-link sent/received watermarks
        #: means nothing was in flight in between.
        self._activity_seq = 0
        #: The activity seq the last went-idle push reported (-1 = never).
        self._idle_pushed_at = -1

        # -- telemetry + flight recorder --------------------------------
        #: Unsolicited heartbeat cadence in seconds (0 = telemetry off).
        self._telemetry_interval = float(config.get("telemetry_interval") or 0.0)
        self._telemetry_seq = 0
        self._next_telemetry = (
            monotonic() + self._telemetry_interval
            if self._telemetry_interval > 0
            else None
        )
        #: Last absolute metrics snapshot sent, for heartbeat deltas.
        self._last_telemetry_metrics: Dict[str, object] = {}
        flight_dir = config.get("flight_dir") or os.environ.get(
            "REPRO_FLIGHT_DIR"
        )
        self.flight = FlightRecorder(
            flight_dir,
            self.name,
            capacity=int(config.get("flight_capacity") or 512),
        )
        #: How many tracer spans the flight recorder has already captured.
        self._flight_span_index = 0
        # Wire counters join the metrics registry as a producer: the full
        # collect() the status path serves now includes them uniformly
        # (keys: wire_frames_sent, wire_frames_received, ...), so new
        # instruments cannot silently drop off the status path again.
        self.peer.service.metrics.registry.register_producer(
            self._wire_metrics, prefix="wire_"
        )

    # ------------------------------------------------------------------
    # Peer construction / restore
    # ------------------------------------------------------------------
    def _build_peer(self, initial, mappings, restore_path: Optional[str]) -> None:
        local = self.rules.local_mappings(self.name)
        #: fid -> local service ticket (operations executing here).
        self._fed_local: Dict[int, object] = {}
        #: fids already reported terminal to the coordinator.
        self._fed_reported: set = set()
        #: fid -> root span (or None) of operations routed *from* here.
        self._fed_routed: Dict[int, object] = {}
        if restore_path is None:
            contents = {
                relation: frozenset(initial.tuples(relation))
                if self.owner_of[relation] == self.name
                else frozenset()
                for relation in self.schema.relation_names()
            }
            service = RepositoryService(
                FrozenDatabase(self.schema, contents),
                local,
                tracker=self._tracker,
                admission=self._admission,
                max_total_steps=self._max_total_steps,
                group_commit=self._group_commit,
                tracer=self.tracer,
                trace_peer=self.name,
                null_factory=NullFactory.avoiding_view(
                    initial, prefix="{}s".format(self.name)
                ),
            )
            self.peer = Peer(
                name=self.name,
                service=service,
                owned_relations=self._ownership[self.name],
                rules=self.rules,
                firing_factory=NullFactory.avoiding_view(
                    initial, prefix="{}f".format(self.name)
                ),
                coalesce=self._coalesce,
            )
            return
        # Restart-from-checkpoint: the same rebuild the in-process
        # network's restart_peer performs, driven by the checkpoint file.
        restored = RepositoryService.restore(
            restore_path,
            local,
            tracker=self._tracker,
            admission=self._admission,
            max_total_steps=self._max_total_steps,
            group_commit=self._group_commit,
            tracer=self.tracer,
            trace_peer=self.name,
        )
        extra = restored.extra
        self.peer = Peer(
            name=self.name,
            service=restored.service,
            owned_relations=self._ownership[self.name],
            rules=self.rules,
            firing_factory=NullFactory.from_state(extra["firing_factory"]),
            coalesce=self._coalesce,
        )
        for old_ticket_id, origin_body in extra.get("notify", ()):
            replacement = restored.resubmitted.get(old_ticket_id)
            if replacement is not None:
                self.peer.expect_notice(
                    replacement.ticket_id,
                    RemoteOrigin(origin_body["peer"], origin_body["ticket"]),
                )
        host_extra = extra.get("host", {})
        for fid, old_ticket_id in host_extra.get("fed_local", ()):
            replacement = restored.resubmitted.get(old_ticket_id)
            if replacement is not None:
                self._fed_local[int(fid)] = replacement
            # Missing: the ticket finished before the checkpoint, and its
            # terminal event preceded checkpoint-done on the old control
            # connection (FIFO) — the coordinator already knows.
        for fid in host_extra.get("fed_routed", ()):
            self._fed_routed[int(fid)] = None
        self._restore_inbox = [
            (executing, int(decision))
            for executing, decision in host_extra.get("inbox", ())
        ]
        self._restore_retry = [
            decode_payload(body) for body in host_extra.get("retry", ())
        ]
        self._restore_submit_retry = [
            (int(fid), decode_user_operation(body))
            for fid, body in host_extra.get("submit_retry", ())
        ]
        # Wire counters must survive the restart: the coordinator's drain
        # barrier compares every sender's frames_sent against this peer's
        # frames_received, and a reborn peer restarting at zero could never
        # catch up with a survivor's full history.
        self._restore_frames_received = [
            (peer, int(count))
            for peer, count in host_extra.get("frames_received", ())
        ]
        self._restore_frames_sent = [
            (peer, int(count))
            for peer, count in host_extra.get("frames_sent", ())
        ]
        self._restore_payloads_received = int(
            host_extra.get("payloads_received", 0)
        )

    # ------------------------------------------------------------------
    # The loop
    # ------------------------------------------------------------------
    def run(self) -> None:
        # Deliveries the checkpoint caught in the deferred-retry queue.
        for payload in getattr(self, "_restore_retry", ()):
            self._retry.append(payload)
        for entry in getattr(self, "_restore_submit_retry", ()):
            self._submit_retry.append(entry)
        for key in getattr(self, "_restore_inbox", ()):
            self._inbox[tuple(key)] = True
        for peer, count in getattr(self, "_restore_frames_received", ()):
            self.frames_received[peer] = count
        for peer, count in getattr(self, "_restore_frames_sent", ()):
            if peer in self._links:
                self._links[peer].frames_sent = count
        self.payloads_received += getattr(self, "_restore_payloads_received", 0)
        try:
            # SIGTERM (the coordinator's terminate escalation, or an operator)
            # must leave a postmortem: the handler raises so a select blocked
            # without a timeout unblocks (PEP 475 would otherwise retry it).
            signal.signal(signal.SIGTERM, self._on_sigterm)
        except (ValueError, OSError):  # pragma: no cover - non-main thread
            pass
        try:
            while not self._exit:
                for key, _ in self._selector.select(self._select_timeout()):
                    ready = key.data
                    if ready is self._listener:
                        self._accept()
                    else:
                        self._read_channel(ready)
                if not self._halted:
                    self._work()
                    self._flush_staged()
                    self._flush()
                # Heartbeats keep beating while halted: a frozen-for-kill
                # peer is still alive, and the watchdog should know.
                self._telemetry_tick()
                self._idle_push()
        except Exception:
            self._flight_dump(
                "unhandled-exception", error=traceback.format_exc(limit=20)
            )
            raise
        finally:
            self._shutdown()

    def _on_sigterm(self, signum, frame) -> None:
        self._flight_dump("sigterm")
        self._exit = True
        raise SystemExit(0)

    def _select_timeout(self) -> Optional[float]:
        if self._exit:
            return 0.0
        due = []
        if self._next_telemetry is not None:
            due.append(self._next_telemetry)
        if not self._halted:
            due.extend(
                link.next_due()
                for link in self._links.values()
                if link.next_due() is not None
            )
            if self._retry or self._submit_retry:
                # Admission frees on commits; retry shortly even without input.
                due.append(monotonic() + 0.01)
            if self._staging.staged_count():
                deadline = self._staging.next_deadline()
                if deadline is not None:
                    due.append(deadline)
                else:
                    # Round/byte-triggered windows need pump rounds to keep
                    # advancing while the sockets are silent, or a staged
                    # batch could sit forever.
                    due.append(monotonic() + 0.002)
        if not due:
            return None  # only control traffic matters now
        return max(0.0, min(due) - monotonic())

    def _accept(self) -> None:
        channel = self._listener.accept()
        self._selector.register(channel, selectors.EVENT_READ, channel)

    def _read_channel(self, channel: FrameChannel) -> None:
        try:
            frames = channel.receive()
        except ChannelClosed:
            try:
                self._selector.unregister(channel)
            except KeyError:  # pragma: no cover - already gone
                pass
            if channel is self._coordinator:
                # The coordinating process is gone; there is nobody left to
                # drive or drain this peer.  Exiting here is the orphan
                # protection the harness teardown relies on.
                self._flight_dump("orphan-exit")
                self._exit = True
            return
        for frame in frames:
            if frame.kind == FRAME_CONTROL:
                self._handle_control(channel, loads(frame.payload))
            else:
                self._handle_envelope(channel.label, frame.payload)

    # ------------------------------------------------------------------
    # Envelope delivery (mirrors FederatedNetwork._deliver_payload)
    # ------------------------------------------------------------------
    def _handle_envelope(self, source: str, payload_bytes: bytes) -> None:
        self._activity_seq += 1
        self.frames_received[source] = self.frames_received.get(source, 0) + 1
        if self.tracer.enabled:
            before = self.tracer.clock()
            payload = decode_envelope(payload_bytes)
            decode_seconds = self.tracer.clock() - before
            context = getattr(payload, "trace", None)
            if context is not None:
                # The receive half of the wire hop: codec CPU in the attrs,
                # parented into the payload's trace like the in-process
                # transport's wire span.
                self.tracer.record_span(
                    "wire",
                    before,
                    before + decode_seconds,
                    phase="wire",
                    parent=context,
                    peer=self.name,
                    kind=payload_kind(payload),
                    destination=self.name,
                    bytes=len(payload_bytes),
                    decode_seconds=decode_seconds,
                )
        else:
            payload = decode_envelope(payload_bytes)
        if isinstance(payload, Bundle):
            self.payloads_received += len(payload)
            for inner in payload.payloads:
                self._deliver_payload(inner)
        else:
            self.payloads_received += 1
            self._deliver_payload(payload)

    def _deliver_payload(self, payload: object) -> None:
        if isinstance(payload, (RemoteUpdate, ExchangeFiring, ExchangeRetraction)):
            admitted = self._submit_delivery(payload)
            if self.flight.enabled:
                self.flight.record(
                    "delivery",
                    payload=payload_kind(payload),
                    origin=payload.origin.peer,
                    deferred=not admitted,
                )
            if not admitted:
                # Bounded admission queue is full: defer and retry on a
                # later work round (backpressure, never loss).
                self._retry.append(payload)
                self.deliveries_deferred += 1
        elif isinstance(payload, QuestionOpened):
            key = (payload.executing_peer, payload.decision_id)
            self._inbox[key] = True
            self.flight.record(
                "question",
                executing=payload.executing_peer,
                decision=payload.decision_id,
            )
            self._event({
                "t": "question",
                "executing": payload.executing_peer,
                "decision": payload.decision_id,
                "inbox": self.name,
                "request": encode_frontier_request(payload.request),
                "origin": {
                    "peer": payload.origin.peer,
                    "ticket": payload.origin.ticket_id,
                },
                "desc": payload.ticket_description,
                "tr": _encode_trace(payload.trace),
            })
        elif isinstance(payload, QuestionCancelled):
            key = (payload.executing_peer, payload.decision_id)
            if self._inbox.pop(key, None) is not None:
                self._event({
                    "t": "question-gone",
                    "executing": payload.executing_peer,
                    "decision": payload.decision_id,
                    "inbox": self.name,
                })
        elif isinstance(payload, QuestionAnswer):
            try:
                self.peer.service.answer(
                    self.peer.gateway.session_id, payload.decision_id, payload.choice
                )
                self.peer.mark_answered(payload.decision_id)
            except OracleError:
                # The asking update aborted while the answer was in flight;
                # the restart will ask afresh.
                self.answers_dropped += 1
        elif isinstance(payload, CommitNotice):
            fid = payload.origin.ticket_id
            span = self._fed_routed.pop(fid, False)
            if span is not False:
                if span is not None:
                    self.tracer.end_span(span, status=payload.status.value)
                self.flight.record(
                    "notice", fid=fid, status=payload.status.value
                )
                self._event({
                    "t": "ticket", "fid": fid, "status": payload.status.value,
                })
        else:  # pragma: no cover - the payload union is closed
            raise FederationError("undeliverable payload {!r}".format(payload))

    def _submit_delivery(self, payload: object) -> bool:
        """Re-submit one update-bearing payload; False when admission is full."""
        if isinstance(payload, RemoteUpdate):
            operation = payload.operation
        elif isinstance(payload, ExchangeFiring):
            operation = RemoteFiringOperation(
                payload.tgd, payload.assignment(), payload.head_rows
            )
        else:
            operation = RemoteRetractionOperation(payload.tgd, payload.assignment())
        try:
            ticket = self.peer.service.submit(
                self.peer.gateway.session_id,
                operation,
                origin=payload.origin,
                trace=payload.trace,
            )
        except AdmissionError:
            return False
        if isinstance(payload, RemoteUpdate):
            self.peer.expect_notice(ticket.ticket_id, payload.origin)
        return True

    # ------------------------------------------------------------------
    # Control handling
    # ------------------------------------------------------------------
    def _handle_control(self, channel: FrameChannel, body: Dict) -> None:
        kind = body["t"]
        if self.flight.enabled and kind in (
            "submit", "answer", "checkpoint", "exit", "hold", "release"
        ):
            self.flight.record("control", control=kind)
        if kind == "hello":
            channel.label = body["peer"]
            if channel.label == COORDINATOR:
                self._coordinator = channel
                pending, self._pending_events = self._pending_events, []
                for frame in pending:
                    self._send_event_frame(frame)
        elif kind == "submit":
            self._handle_submit(int(body["fid"]), decode_user_operation(body["op"]))
        elif kind == "answer":
            self._handle_answer(body)
        elif kind == "status":
            self._send_control(channel, self._status_reply(body.get("round", 0)))
        elif kind == "hold":
            self._links[body["peer"]].held = True
        elif kind == "release":
            self._links[body["peer"]].held = False
        elif kind == "reset-link":
            # The destination process was replaced: drop the (possibly
            # half-dead) connection so the next flush dials the reborn
            # listener.  Queued frames are kept — delivery stays
            # at-least-once.
            self._links[body["peer"]].reset()
        elif kind == "drop-questions":
            executing = body["executing"]
            for key in [key for key in self._inbox if key[0] == executing]:
                del self._inbox[key]
        elif kind == "checkpoint":
            self._handle_checkpoint(channel, body)
        elif kind == "snapshot":
            self._send_control(channel, {
                "t": "snapshot-reply",
                "relations": {
                    relation: [encode_tuple(row) for row in sorted(rows, key=repr)]
                    for relation, rows in self.peer.owned_snapshot().items()
                },
            })
        elif kind == "trace-export":
            count = self.tracer.export_jsonl(body["path"])
            self._send_control(
                channel, {"t": "trace-exported", "path": body["path"], "spans": count}
            )
        elif kind == "exit":
            self._exit = True
        else:
            raise FederationError("unknown control message {!r}".format(kind))

    def _handle_submit(self, fid: int, operation) -> None:
        self._activity_seq += 1
        if isinstance(operation, (InsertOperation, DeleteOperation)):
            target = self.owner_of[operation.row.relation]
        else:
            target = self.name
        if target == self.name:
            try:
                self._fed_local[fid] = self.peer.service.submit(
                    self.peer.gateway.session_id, operation
                )
            except AdmissionError:
                self._submit_retry.append((fid, operation))
            return
        trace = None
        span = None
        if self.tracer.enabled:
            # Routed submissions root their trace at the origin peer, like
            # FederatedNetwork.submit; the root closes on the commit notice.
            span = self.tracer.start_span(
                "update",
                peer=self.name,
                kind="user",
                op_type=type(operation).__name__,
                op=operation.describe(),
                ticket=fid,
                routed_to=target,
            )
            trace = span.context
        self._fed_routed[fid] = span
        self._enqueue_payload(target, RemoteUpdate(
            operation=operation,
            origin=RemoteOrigin(self.name, fid),
            trace=trace,
        ))

    def _handle_answer(self, body: Dict) -> None:
        self._activity_seq += 1
        executing = body["executing"]
        decision = int(body["decision"])
        key = (executing, decision)
        if self._inbox.pop(key, None) is None:
            # Cancelled (or already answered) while the coordinator's answer
            # was in flight — the in-process equivalent cannot race here, a
            # real federation must tolerate it.
            self.answers_dropped += 1
            return
        choice = _decode_choice(body["choice"])
        if executing == self.name:
            # A locally-executing question: answer straight into the service
            # (no mark_answered — that is only for answers that arrived as
            # envelopes, mirroring FederatedNetwork.answer's local path).
            try:
                self.peer.service.answer(
                    self.peer.gateway.session_id, decision, choice
                )
            except OracleError:
                self.answers_dropped += 1
            return
        self._enqueue_payload(executing, QuestionAnswer(
            executing_peer=executing,
            decision_id=decision,
            choice=choice,
            answered_by=self.name,
            trace=_decode_trace(body.get("tr")),
        ))

    def _handle_checkpoint(self, channel: FrameChannel, body: Dict) -> None:
        # Reach a local fixpoint, then push every queued frame out regardless
        # of simulated link delay or an open staging window: the frames'
        # contents are already decided, and a checkpoint must not strand
        # them in a dying process.
        self._work()
        self._flush_staged(force=True)
        self._flush(force=True)
        host_extra = {
            "fed_local": sorted(
                [fid, ticket.ticket_id]
                for fid, ticket in self._fed_local.items()
                if not ticket.is_done
            ),
            "fed_routed": sorted(self._fed_routed),
            "inbox": sorted([executing, decision] for executing, decision in self._inbox),
            "retry": [encode_payload(payload) for payload in self._retry],
            "submit_retry": sorted(
                [fid, encode_user_operation(operation)]
                for fid, operation in self._submit_retry
            ),
            # Exact at checkpoint time: every link toward this peer is held
            # and this peer is caught up (coordinator's checkpoint protocol),
            # so the counters restored from here continue the same streams.
            "frames_received": sorted(self.frames_received.items()),
            "frames_sent": sorted(
                (peer, link.frames_sent) for peer, link in self._links.items()
            ),
            "payloads_received": self.payloads_received,
        }
        self.peer.checkpoint(body["path"], extra={"host": host_extra})
        if body.get("halt"):
            # Freeze: no more pumps or flushes — the coordinator is about to
            # kill this process, and work done after the checkpoint would
            # fork the state the reborn peer restores.
            self._halted = True
        self._send_control(channel, {"t": "checkpoint-done", "path": body["path"]})

    # ------------------------------------------------------------------
    # The work fixpoint
    # ------------------------------------------------------------------
    def _work(self) -> None:
        while True:
            self._pump_rounds += 1
            progress = False
            if self._retry:
                pending, self._retry = self._retry, []
                for payload in pending:
                    if not self._submit_delivery(payload):
                        self._retry.append(payload)
                if len(self._retry) != len(pending):
                    progress = True
            if self._submit_retry:
                pending_submits, self._submit_retry = self._submit_retry, []
                for fid, operation in pending_submits:
                    try:
                        self._fed_local[fid] = self.peer.service.submit(
                            self.peer.gateway.session_id, operation
                        )
                        progress = True
                    except AdmissionError:
                        self._submit_retry.append((fid, operation))
            report = self.peer.service.pump()
            if report.steps or report.admitted or report.committed:
                progress = True
            opened_local, vanished = self.peer.scan_questions()
            for question in opened_local:
                key = (self.name, question.decision_id)
                self._inbox[key] = True
                context = question.ticket.trace_context
                self._event({
                    "t": "question",
                    "executing": self.name,
                    "decision": question.decision_id,
                    "inbox": self.name,
                    "request": encode_frontier_request(question.request),
                    "origin": {
                        "peer": self.name,
                        "ticket": question.ticket.ticket_id,
                    },
                    "desc": question.ticket.describe(),
                    "tr": _encode_trace(context),
                })
            for decision_id in vanished:
                key = (self.name, decision_id)
                if self._inbox.pop(key, None) is not None:
                    self._event({
                        "t": "question-gone",
                        "executing": self.name,
                        "decision": decision_id,
                        "inbox": self.name,
                    })
            self.peer.scan_failures()
            self._mirror_tickets()
            if opened_local or vanished:
                progress = True
            if self.peer.outbox:
                self._stage_outbox()
                progress = True
            if not progress:
                return
            self._activity_seq += 1

    def _mirror_tickets(self) -> None:
        for fid, ticket in self._fed_local.items():
            if fid in self._fed_reported or not ticket.is_done:
                continue
            self._fed_reported.add(fid)
            self.flight.record(
                "ticket", fid=fid, status=ticket.status.value
            )
            self._event({"t": "ticket", "fid": fid, "status": ticket.status.value})

    def _stage_outbox(self) -> None:
        if not self._staging.passthrough:
            # A real window is open: payloads park per-destination and wait
            # for a K/B/T trigger in _flush_staged.  Byte sizing re-encodes
            # the payload (the flush encodes again) — acceptable for an
            # off-by-default knob, and only when B > 0.
            now = monotonic()
            for destination, payload in self.peer.outbox:
                size = 0
                if self._staging.max_bytes:
                    size = len(encode_envelope(payload))
                self._staging.stage(
                    destination, payload, self._pump_rounds, now, size=size
                )
            self.peer.outbox.clear()
            return
        order: List[str] = []
        by_destination: Dict[str, List[object]] = {}
        for destination, payload in self.peer.outbox:
            if destination not in by_destination:
                order.append(destination)
                by_destination[destination] = []
            by_destination[destination].append(payload)
        self.peer.outbox.clear()
        for destination in order:
            self._enqueue_batch(destination, by_destination[destination])

    def _flush_staged(self, force: bool = False) -> None:
        """Release staged batches whose window tripped (all of them, forced).

        The PR 4 coalescer runs over each released batch: the window's whole
        point is that payloads from *different* commits can now cancel/dedup
        before framing, which per-commit coalescing in the peer cannot see.
        """
        if not self._staging.staged_count():
            return
        now = monotonic()
        for destination in self._staging.due(self._pump_rounds, now, force=force):
            batch = self._staging.take(destination)
            if not batch:
                continue
            if self._coalesce and len(batch) > 1:
                pairs = coalesce_envelopes(
                    [(destination, payload) for payload in batch]
                )
                self.peer.envelopes_coalesced += len(batch) - len(pairs)
                batch = [payload for _, payload in pairs]
            self._enqueue_batch(destination, batch)

    def _enqueue_batch(self, destination: str, batch: List[object]) -> None:
        if len(batch) == 1 or not self._coalesce:
            for payload in batch:
                self._enqueue_payload(destination, payload)
        else:
            trace = None
            for payload in batch:
                trace = getattr(payload, "trace", None)
                if trace is not None:
                    break
            self._enqueue_payload(
                destination, Bundle(tuple(batch), trace=trace)
            )

    def _enqueue_payload(self, destination: str, payload: object) -> None:
        if destination == self.name:  # pragma: no cover - rules never stage this
            raise FederationError("peer {} staged an envelope to itself".format(
                self.name
            ))
        if self.tracer.enabled:
            before = self.tracer.clock()
            encoded = encode_envelope(payload)
            encode_seconds = self.tracer.clock() - before
            context = getattr(payload, "trace", None)
            if context is not None:
                self.tracer.record_span(
                    "wire",
                    before,
                    before + encode_seconds,
                    phase="wire",
                    parent=context,
                    peer=self.name,
                    kind=payload_kind(payload),
                    destination=destination,
                    bytes=len(encoded),
                    encode_seconds=encode_seconds,
                )
        else:
            encoded = encode_envelope(payload)
        self._links[destination].enqueue(
            encode_frame(FRAME_ENVELOPE, encoded), monotonic()
        )

    def _flush(self, force: bool = False) -> None:
        now = float("inf") if force else monotonic()
        before = sum(link.frames_sent for link in self._links.values())
        for link in self._links.values():
            link.flush(now, hello=self._hello)
        if sum(link.frames_sent for link in self._links.values()) != before:
            self._activity_seq += 1

    # ------------------------------------------------------------------
    # Telemetry and the flight recorder
    # ------------------------------------------------------------------
    def _wire_metrics(self) -> Dict[str, object]:
        """Socket-layer counters, published through the metrics registry."""
        return {
            "frames_sent": sum(
                link.frames_sent for link in self._links.values()
            ),
            "frames_received": sum(self.frames_received.values()),
            "payloads_received": self.payloads_received,
            "deliveries_deferred": self.deliveries_deferred,
            "answers_dropped": self.answers_dropped,
            "payloads_staged": self._staging.payloads_staged,
            "staged_flushes": self._staging.flushed_batches,
        }

    def _telemetry_tick(self) -> None:
        """Emit one heartbeat frame and sync the flight recorder when due."""
        if self._next_telemetry is None:
            return
        now = monotonic()
        if now < self._next_telemetry:
            return
        self._next_telemetry = now + self._telemetry_interval
        self._telemetry_seq += 1
        self.flight.record("heartbeat", seq=self._telemetry_seq)
        self._flight_sync()
        if self._coordinator is not None and not self._coordinator.closed:
            # Only a connected coordinator gets heartbeats: queueing them
            # while disconnected would flood stale frames on reconnect.
            frame = encode_frame(
                FRAME_CONTROL, dumps(self._telemetry_body())
            )
            try:
                self._coordinator.send_bytes(frame)
            except SocketTransportError:
                pass

    def _telemetry_body(self) -> Dict:
        """One unsolicited heartbeat: the status shape plus seq + deltas."""
        body = self._status_reply(0)
        del body["round"]
        body["t"] = "telemetry"
        body["seq"] = self._telemetry_seq
        body["wall"] = time.time()
        body["links"] = {
            peer: link.stats() for peer, link in self._links.items()
        }
        # Metrics travel as deltas against the previous heartbeat: numeric
        # keys carry the difference (the timeline re-accumulates them into
        # absolutes), non-numeric keys pass through as-is.
        metrics = body["metrics"]
        delta: Dict[str, object] = {}
        for key, value in metrics.items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                base = self._last_telemetry_metrics.get(key, 0)
                if isinstance(base, (int, float)) and not isinstance(base, bool):
                    delta[key] = value - base
                    continue
            delta[key] = value
        self._last_telemetry_metrics = metrics
        body["metrics"] = delta
        body["metrics_delta"] = True
        return body

    def _is_idle(self) -> bool:
        """The cheap no-snapshot quiescence check the idle push gates on."""
        return (
            self.peer.service.is_quiescent
            and not self.peer.outbox
            and not self._staging.staged_count()
            and not any(link.queued for link in self._links.values())
            and not self._retry
            and not self._submit_retry
        )

    def _idle_push(self) -> None:
        """Push one unsolicited went-idle status delta to the coordinator.

        The event-driven half of the watermark drain: the moment this peer
        settles (service quiescent, nothing staged, queued, or parked) it
        pushes a telemetry frame carrying its final per-link watermarks and
        activity seq, so the coordinator's ``drain()`` blocks on its
        selector instead of pacing status rounds.  One push per activity
        seq — a peer that stays idle stays silent — and it fires regardless
        of ``telemetry_interval``, so the watermark drain works with
        periodic heartbeats off.
        """
        if self._coordinator is None or self._coordinator.closed:
            return
        if self._activity_seq == self._idle_pushed_at:
            return
        if self._halted or not self._is_idle():
            return
        self._idle_pushed_at = self._activity_seq
        self._telemetry_seq += 1
        # Same discipline as the periodic heartbeat: the flight ring syncs
        # to disk *before* the frame goes out, so anything the coordinator
        # learns from this push is already covered by a postmortem dump.
        self.flight.record("heartbeat", seq=self._telemetry_seq, idle=True)
        self._flight_sync()
        frame = encode_frame(FRAME_CONTROL, dumps(self._telemetry_body()))
        try:
            self._coordinator.send_bytes(frame)
        except SocketTransportError:
            pass

    def _flight_sync(self) -> None:
        """Copy tracer spans recorded since the last sync into the flight ring."""
        if not self.flight.enabled:
            return
        spans = self.tracer.spans
        if self._flight_span_index > len(spans):
            self._flight_span_index = 0  # the tracer was cleared
        for span in spans[self._flight_span_index:]:
            self.flight.record_span(span.to_record())
        self._flight_span_index = len(spans)
        self.flight.flush()

    def _flight_dump(self, reason: str, **fields: object) -> None:
        """Postmortem: sync, re-capture the span tail, and dump to disk."""
        if not self.flight.enabled:
            return
        self._flight_sync()
        # Re-emit the recent span tail: spans captured *open* at an earlier
        # heartbeat have closed since, and the dump must carry their final
        # records (merge_spans dedups, preferring the closed record).
        spans = self.tracer.spans
        for span in spans[-64:]:
            self.flight.record_span(span.to_record())
        self.flight.dump(reason, **fields)

    # ------------------------------------------------------------------
    # Events and replies
    # ------------------------------------------------------------------
    def _event(self, body: Dict) -> None:
        frame = encode_frame(FRAME_CONTROL, dumps(body))
        if self._coordinator is None or self._coordinator.closed:
            self._pending_events.append(frame)
            return
        self._send_event_frame(frame)

    def _send_event_frame(self, frame: bytes) -> None:
        try:
            self._coordinator.send_bytes(frame)
        except SocketTransportError:
            self._pending_events.append(frame)

    def _send_control(self, channel: FrameChannel, body: Dict) -> None:
        try:
            channel.send_frame(FRAME_CONTROL, dumps(body))
        except SocketTransportError:  # pragma: no cover - peer died mid-reply
            pass

    def _status_reply(self, round_number: int) -> Dict:
        outbox = len(self.peer.outbox)
        staged = self._staging.staged_count()
        queued = sum(link.queued for link in self._links.values())
        snapshot = self.peer.service.metrics_snapshot()
        quiescent = (
            self.peer.service.is_quiescent
            and not outbox
            and not staged
            and not queued
            and not self._retry
            and not self._submit_retry
        )
        return {
            "t": "status-reply",
            "round": round_number,
            "peer": self.name,
            "quiescent": quiescent,
            "halted": self._halted,
            "outbox": outbox,
            "staged": staged,
            "queued": queued,
            "activity_seq": self._activity_seq,
            "retry": len(self._retry) + len(self._submit_retry),
            "held": sorted(
                peer for peer, link in self._links.items() if link.held
            ),
            "sent": {
                peer: link.frames_sent for peer, link in self._links.items()
            },
            "received": dict(self.frames_received),
            "payloads_received": self.payloads_received,
            "open_questions": len(self._inbox),
            "committed": snapshot["committed"],
            # The *full* registry collect, not a hand-kept key list: every
            # registered instrument and producer (service counters, store
            # gauges, scheduler stats, wire_ counters) rides the status
            # path uniformly.  tests/federation/test_telemetry.py pins the
            # shape so a new instrument cannot silently drop off again.
            "metrics": snapshot,
            "deliveries_deferred": self.deliveries_deferred,
            "answers_dropped": self.answers_dropped,
            "firings_emitted": self.peer.firings_emitted,
            "retractions_emitted": self.peer.retractions_emitted,
            "notices_emitted": self.peer.notices_emitted,
            "envelopes_coalesced": self.peer.envelopes_coalesced,
        }

    def _shutdown(self) -> None:
        # A graceful shutdown still closes the flight record (first-reason
        # wins: a sigterm/orphan-exit/exception dump keeps its reason).
        self._flight_dump("shutdown")
        if self._trace_path and self.tracer.enabled:
            try:
                self.tracer.export_jsonl(self._trace_path)
            except OSError:  # pragma: no cover - export is best effort
                pass
        for link in self._links.values():
            link.close()
        for key in list(self._selector.get_map().values()):
            ready = key.data
            if ready is not self._listener:
                ready.close()
        self._selector.close()
        self._listener.close()


# ----------------------------------------------------------------------
# Control-body trace contexts (same shape as the codec's "tr" field)
# ----------------------------------------------------------------------
def _encode_trace(context: Optional[SpanContext]) -> Optional[Dict[str, str]]:
    if context is None:
        return None
    return {"ti": context.trace_id, "si": context.span_id}


def _decode_trace(body: Optional[Dict[str, str]]) -> Optional[SpanContext]:
    if body is None:
        return None
    return SpanContext(trace_id=body["ti"], span_id=body["si"])


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def main(argv: Optional[List[str]] = None) -> int:
    """``repro-peer``: run one federation peer from a config file."""
    parser = argparse.ArgumentParser(
        prog="repro-peer",
        description="Run one update-exchange federation peer as a process.",
    )
    parser.add_argument(
        "--config",
        required=True,
        help="path to a codec-JSON peer config (written by ProcessFederation)",
    )
    arguments = parser.parse_args(argv)
    with open(arguments.config, "rb") as handle:
        config = loads(handle.read())
    host = PeerHost(config)
    try:
        host.run()
    except Exception:  # pragma: no cover - surfaced via the process log
        traceback.print_exc()
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
