"""The federated network: many repositories, one collaborative exchange.

A :class:`FederatedNetwork` is the multi-peer realization of the paper's
setting: every peer runs its own full update-exchange service (store, tracker,
optimistic scheduler, admission queue, frontier inbox) over the relations it
owns, and the tgd mappings that link peers are driven by commit-time exchange
over a simulated :class:`~repro.federation.transport.Transport`:

* a user operation submitted at a peer executes at the *owner* of its target
  relation — locally, or routed as a :class:`~repro.federation.envelopes.RemoteUpdate`
  through the owner's admission queue;
* when an update commits, its writes fire the cross-peer mappings whose LHS
  the committing peer owns; the resulting head firings (and, for deletions,
  retractions) travel as envelopes and are re-submitted at the destination;
* frontier questions raised while chasing a forwarded update are routed back
  to the *originating* peer's federated inbox, answered there, and the answer
  travels back to resume the parked update;
* :meth:`FederatedNetwork.quiescent` holds when every queue — transport,
  outboxes, admission, scheduler, inboxes — has drained, at which point the
  union of the peers' committed stores is a chase fixpoint of the union
  mapping set (differentially tested against the single-repository engine in
  :mod:`repro.federation.convergence`).

The network is cooperatively scheduled like everything else in this
reproduction: :meth:`pump` performs one federation round (deliver, chase,
route, flush), and :meth:`run_until_quiescent` loops it, optionally answering
open questions with a strategy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple as PyTuple, Union

from ..core.frontier import FrontierOperation, FrontierRequest
from ..core.oracle import OracleError
from ..core.schema import DatabaseSchema
from ..core.terms import NullFactory
from ..core.tgd import Tgd
from ..core.update import DeleteOperation, InsertOperation, UserOperation
from ..obs.metrics import MetricsRegistry
from ..obs.trace import SpanContext, default_tracer
from ..service.admission import AdmissionConfig, AdmissionError
from ..service.repository import RepositoryService
from ..service.tickets import RemoteOrigin, TicketStatus, UpdateTicket
from ..storage.interface import DatabaseView
from ..storage.memory import FrozenDatabase
from .envelopes import (
    CommitNotice,
    ExchangeFiring,
    ExchangeRetraction,
    QuestionAnswer,
    QuestionCancelled,
    QuestionOpened,
    RemoteUpdate,
)
from .exchange import ExchangeRules, FederationError
from .exchange import coalesce_envelopes as _coalesce_batch
from .operations import RemoteFiringOperation, RemoteRetractionOperation
from .peer import Peer
from .transport import Bundle, Envelope, Transport


@dataclass
class FederatedTicket:
    """The network-level handle of one user submission."""

    ticket_id: int
    peer: str
    target: str
    operation: UserOperation
    status: TicketStatus = TicketStatus.QUEUED
    #: The executing service's ticket (set immediately for local execution;
    #: remote execution is tracked through commit notices instead, so the
    #: originating peer only learns of the commit once the notice crosses the
    #: transport — partitions delay knowledge, as they should).
    local_ticket: Optional[UpdateTicket] = None
    #: Root tracing span of a *routed* submission (local submissions root
    #: their trace in the executing service's ticket instead).
    trace_span: Optional[object] = field(default=None, repr=False)

    @property
    def is_remote(self) -> bool:
        return self.peer != self.target

    @property
    def is_done(self) -> bool:
        return self.status in (TicketStatus.COMMITTED, TicketStatus.FAILED)

    def describe(self) -> str:
        return "federated ticket #{} {}@{} -> {}: {}".format(
            self.ticket_id,
            self.status.value,
            self.peer,
            self.target,
            self.operation.describe(),
        )


@dataclass(frozen=True)
class FederatedQuestion:
    """One open frontier question as seen from a peer's federated inbox."""

    executing_peer: str
    decision_id: int
    request: FrontierRequest
    origin: RemoteOrigin
    description: str
    #: Trace context of the parked update (``None`` when tracing is off).
    trace: Optional[SpanContext] = field(default=None, compare=False)

    @property
    def key(self) -> PyTuple[str, int]:
        return (self.executing_peer, self.decision_id)

    def alternatives(self) -> List[FrontierOperation]:
        return self.request.alternatives()


@dataclass
class FederationPumpReport:
    """What one federation round did."""

    delivered: int = 0
    steps: int = 0
    committed: int = 0
    flushed: int = 0
    questions_opened: int = 0


#: ``strategy(question) -> choice`` used by :meth:`run_until_quiescent`.
AnswerStrategy = Callable[[FederatedQuestion], Union[FrontierOperation, int]]


class FederatedNetwork:
    """A set of named peers exchanging updates over a simulated transport."""

    def __init__(
        self,
        schema: DatabaseSchema,
        initial: DatabaseView,
        mappings: Sequence[Tgd],
        ownership: Dict[str, Sequence[str]],
        tracker: str = "PRECISE",
        transport: Optional[Transport] = None,
        admission: Union[AdmissionConfig, Dict[str, AdmissionConfig], None] = None,
        max_total_steps: int = 1_000_000,
        coalesce_envelopes: bool = True,
        group_commit: bool = True,
        tracer=None,
        stage_rounds: int = 1,
    ):
        self.schema = schema
        self._tracer = tracer if tracer is not None else default_tracer()
        owner_of: Dict[str, str] = {}
        for peer_name, relations in ownership.items():
            for relation in relations:
                if relation not in schema:
                    raise FederationError(
                        "peer {!r} claims unknown relation {!r}".format(
                            peer_name, relation
                        )
                    )
                if relation in owner_of:
                    raise FederationError(
                        "relation {!r} claimed by both {!r} and {!r}".format(
                            relation, owner_of[relation], peer_name
                        )
                    )
                owner_of[relation] = peer_name
        unowned = [name for name in schema.relation_names() if name not in owner_of]
        if unowned:
            raise FederationError(
                "no peer owns relation(s) {}".format(sorted(unowned))
            )
        self.owner_of = owner_of
        self.rules = ExchangeRules(mappings, owner_of)
        self.transport = transport if transport is not None else Transport()
        if tracer is not None:
            # An explicitly traced network traces its transport too (a
            # transport built separately defaults to the process tracer).
            self.transport.tracer = tracer
        #: Construction parameters kept for peer restarts (see
        #: :meth:`restart_peer`): a reborn peer's service is rebuilt with the
        #: same tracker, admission policy and budgets as its predecessor.
        self._ownership: Dict[str, PyTuple[str, ...]] = {
            name: tuple(relations) for name, relations in ownership.items()
        }
        self._tracker_spec = tracker
        self._admission_spec = admission
        self._max_total_steps = max_total_steps
        self._group_commit = group_commit
        #: Coalesce commit batches' envelopes and flush per-destination
        #: bundles; ``False`` restores per-envelope staging and sends (the
        #: reference behavior the coalescing differential tests compare to).
        self.coalesce_envelopes = coalesce_envelopes
        #: The in-process staging window (pump rounds only — byte/deadline
        #: triggers belong to the socket world's real clocks).  K=1 is the
        #: passthrough default: every round's outbox flushes that round,
        #: bit-identical with the pre-window behavior.  K>1 parks outbox
        #: payloads for K pump rounds and re-coalesces the cross-round
        #: window before flushing.
        self._stage_rounds = max(1, int(stage_rounds))
        self._staged: Dict[str, List[PyTuple[str, object]]] = {}
        self._staged_at: Dict[str, int] = {}
        self._pump_round = 0
        self._peers: Dict[str, Peer] = {}
        for peer_name, relations in ownership.items():
            contents = {
                relation: frozenset(initial.tuples(relation))
                if owner_of[relation] == peer_name
                else frozenset()
                for relation in schema.relation_names()
            }
            if isinstance(admission, dict):
                # Heterogeneous federations: each peer may run its own
                # admission policy (slow archive, fast edge).
                peer_admission = admission.get(peer_name)
            else:
                peer_admission = admission
            service = RepositoryService(
                FrozenDatabase(schema, contents),
                self.rules.local_mappings(peer_name),
                tracker=tracker,
                admission=peer_admission,
                max_total_steps=max_total_steps,
                group_commit=group_commit,
                tracer=self._tracer,
                trace_peer=peer_name,
                # Peer-unique null prefixes: two peers' chases must never mint
                # the same labeled null, or shipping a head row would silently
                # identify two unrelated unknowns at the destination.
                null_factory=NullFactory.avoiding_view(
                    initial, prefix="{}s".format(peer_name)
                ),
            )
            self._peers[peer_name] = Peer(
                name=peer_name,
                service=service,
                owned_relations=tuple(relations),
                rules=self.rules,
                firing_factory=NullFactory.avoiding_view(
                    initial, prefix="{}f".format(peer_name)
                ),
                coalesce=coalesce_envelopes,
            )
        self._inboxes: Dict[str, Dict[PyTuple[str, int], FederatedQuestion]] = {
            name: {} for name in self._peers
        }
        self._tickets: Dict[int, FederatedTicket] = {}
        self._unresolved: List[FederatedTicket] = []
        self._next_ticket_id = 1
        #: Federation-level counters, registered into one registry whose
        #: ``collect()`` is the whole :meth:`metrics` snapshot (transport and
        #: per-peer service metrics fold in as producers; the key set and
        #: order are bit-compatible with the pre-registry dict merging).
        self.registry = MetricsRegistry()
        self.registry.gauge("peers").set_function(lambda: len(self._peers))
        self._updates_routed = self.registry.counter("updates_routed")
        self._firings_delivered = self.registry.counter("firings_delivered")
        self._retractions_delivered = self.registry.counter("retractions_delivered")
        self._questions_routed = self.registry.counter("questions_routed")
        self._answers_routed = self.registry.counter("answers_routed")
        self._answers_dropped = self.registry.counter("answers_dropped")
        self._cancellations = self.registry.counter("question_cancellations")
        #: Envelope deliveries re-queued because the destination's bounded
        #: admission queue was full (retried on later pumps).
        self._deliveries_deferred = self.registry.counter("deliveries_deferred")
        self.registry.gauge("firings_emitted").set_function(
            lambda: sum(p.firings_emitted for p in self._peers.values())
        )
        self.registry.gauge("retractions_emitted").set_function(
            lambda: sum(p.retractions_emitted for p in self._peers.values())
        )
        self.registry.gauge("envelopes_coalesced").set_function(
            lambda: sum(p.envelopes_coalesced for p in self._peers.values())
        )
        self.registry.register_producer(lambda: self.transport.metrics())
        self.registry.register_producer(self._peer_service_metrics)

    # ------------------------------------------------------------------
    # Counter compatibility properties (instruments live in the registry)
    # ------------------------------------------------------------------
    @property
    def updates_routed(self) -> int:
        return self._updates_routed.value

    @property
    def firings_delivered(self) -> int:
        return self._firings_delivered.value

    @property
    def retractions_delivered(self) -> int:
        return self._retractions_delivered.value

    @property
    def questions_routed(self) -> int:
        return self._questions_routed.value

    @property
    def answers_routed(self) -> int:
        return self._answers_routed.value

    @property
    def answers_dropped(self) -> int:
        return self._answers_dropped.value

    @property
    def cancellations(self) -> int:
        return self._cancellations.value

    @property
    def deliveries_deferred(self) -> int:
        return self._deliveries_deferred.value

    @property
    def tracer(self):
        """The tracer the whole federation records into."""
        return self._tracer

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def peer(self, name: str) -> Peer:
        """Look a peer up by name."""
        try:
            return self._peers[name]
        except KeyError:
            raise FederationError("unknown peer {!r}".format(name))

    def peers(self) -> List[Peer]:
        """Every peer, in declaration order."""
        return list(self._peers.values())

    def peer_names(self) -> List[str]:
        """The peer names, in declaration order."""
        return list(self._peers)

    def partition(self, a: str, b: str) -> None:
        """Cut the link between two peers (messages queue, nothing is lost)."""
        self.peer(a), self.peer(b)  # validate names
        self.transport.partition(a, b)

    def heal(self, a: str, b: str) -> None:
        """Reconnect two peers; held envelopes flow again on the next pump."""
        self.transport.heal(a, b)

    # ------------------------------------------------------------------
    # Peer checkpoint and restart
    # ------------------------------------------------------------------
    def checkpoint_peer(self, name: str, path: str) -> None:
        """Persist one peer's restartable state (see :meth:`Peer.checkpoint`)."""
        self.peer(name).checkpoint(path)

    def restart_peer(self, name: str, path: str) -> Peer:
        """Kill peer *name* and rebuild it from a checkpoint file.

        The old peer object (service, store, scheduler, sessions) is simply
        dropped — that *is* the crash.  The replacement is restored from the
        checkpoint: committed store as its initial state, pending operations
        re-submitted with their federation origins, null-factory and
        decision-id numbering resumed, commit-notice obligations re-linked to
        the re-submitted tickets.  Envelopes in flight on the transport are
        untouched and deliver to the reborn peer as usual (delivery
        re-submits through its admission queue, so nothing cares that the
        service behind the name changed).

        Open federated questions whose *executing* peer was the killed one
        are dropped from every inbox: their decisions died with the old
        service, and the re-submitted updates will re-ask them under fresh
        decision ids.  Federated tickets that were executing locally at the
        killed peer are re-pointed at their re-submitted service tickets.
        """
        old = self.peer(name)
        restored = RepositoryService.restore(
            path,
            self.rules.local_mappings(name),
            tracker=self._tracker_spec,
            admission=self._admission_spec.get(name)
            if isinstance(self._admission_spec, dict)
            else self._admission_spec,
            max_total_steps=self._max_total_steps,
            group_commit=self._group_commit,
        )
        extra = restored.extra
        reborn = Peer(
            name=name,
            service=restored.service,
            owned_relations=self._ownership[name],
            rules=self.rules,
            firing_factory=NullFactory.from_state(extra["firing_factory"]),
            coalesce=self.coalesce_envelopes,
        )
        for old_ticket_id, origin_body in extra.get("notify", ()):
            replacement = restored.resubmitted.get(old_ticket_id)
            if replacement is not None:
                reborn.expect_notice(
                    replacement.ticket_id,
                    RemoteOrigin(origin_body["peer"], origin_body["ticket"]),
                )
        self._peers[name] = reborn
        # Questions executed by the dead service are unanswerable; drop them
        # everywhere (the reborn peer re-asks under fresh decision ids).
        for inbox in self._inboxes.values():
            for key in [key for key in inbox if key[0] == name]:
                del inbox[key]
        # Re-point federated tickets that were executing at the killed peer
        # onto their re-submitted successors (committed ones already mirrored).
        for ticket in self._tickets.values():
            if ticket.target != name or ticket.local_ticket is None:
                continue
            if ticket.is_done:
                continue
            replacement = restored.resubmitted.get(ticket.local_ticket.ticket_id)
            if replacement is not None:
                ticket.local_ticket = replacement
        # The old peer's sessions are gone; nothing else references it.
        del old
        return reborn

    # ------------------------------------------------------------------
    # Submission and routing
    # ------------------------------------------------------------------
    def _route(self, peer_name: str, operation: UserOperation) -> str:
        if isinstance(operation, (InsertOperation, DeleteOperation)):
            return self.owner_of[operation.row.relation]
        # Null replacements (and anything exotic) execute where submitted:
        # a labeled null's occurrences are confined to the peer that minted
        # it under this exchange model.
        return peer_name

    def submit(self, peer_name: str, operation: UserOperation) -> FederatedTicket:
        """Submit a user operation at *peer_name*; it executes at the owner."""
        peer = self.peer(peer_name)
        target = self._route(peer_name, operation)
        ticket = FederatedTicket(
            ticket_id=self._next_ticket_id,
            peer=peer_name,
            target=target,
            operation=operation,
        )
        self._next_ticket_id += 1
        self._tickets[ticket.ticket_id] = ticket
        self._unresolved.append(ticket)
        if target == peer_name:
            try:
                ticket.local_ticket = peer.service.submit(
                    peer.gateway.session_id, operation
                )
            except AdmissionError:
                # Local admission overflow is the submitting client's error;
                # unregister the stillborn ticket and let the caller back off.
                del self._tickets[ticket.ticket_id]
                self._unresolved.remove(ticket)
                raise
        else:
            self._updates_routed.inc()
            trace = None
            if self._tracer.enabled:
                # Routed submissions root their trace here at the origin (the
                # executing service's ticket span becomes a child); the root
                # closes when the commit notice makes it back.
                ticket.trace_span = self._tracer.start_span(
                    "update",
                    peer=peer_name,
                    kind="user",
                    op_type=type(operation).__name__,
                    op=operation.describe(),
                    ticket=ticket.ticket_id,
                    routed_to=target,
                )
                trace = ticket.trace_span.context
            self.transport.send(
                peer_name,
                target,
                RemoteUpdate(
                    operation=operation,
                    origin=RemoteOrigin(peer_name, ticket.ticket_id),
                    trace=trace,
                ),
            )
        return ticket

    def ticket(self, ticket_id: int) -> FederatedTicket:
        """Look a federated ticket up by id."""
        try:
            return self._tickets[ticket_id]
        except KeyError:
            raise FederationError("unknown federated ticket #{}".format(ticket_id))

    # ------------------------------------------------------------------
    # The federation round
    # ------------------------------------------------------------------
    def pump(self) -> FederationPumpReport:
        """One federation round: deliver, chase every peer, route, flush."""
        report = FederationPumpReport()
        self._pump_round += 1
        for envelope in self.transport.pump():
            self.peer(envelope.destination).activity_seq += 1
            self._deliver(envelope)
            report.delivered += 1
        for peer in self._peers.values():
            service_report = peer.service.pump()
            if service_report.steps or service_report.committed:
                peer.activity_seq += 1
            report.steps += service_report.steps
            report.committed += len(service_report.committed)
        for peer in self._peers.values():
            opened_local, vanished = peer.scan_questions()
            inbox = self._inboxes[peer.name]
            for question in opened_local:
                federated = FederatedQuestion(
                    executing_peer=peer.name,
                    decision_id=question.decision_id,
                    request=question.request,
                    origin=RemoteOrigin(peer.name, question.ticket.ticket_id),
                    description=question.ticket.describe(),
                    trace=question.ticket.trace_context,
                )
                inbox[federated.key] = federated
                report.questions_opened += 1
            for decision_id in vanished:
                inbox.pop((peer.name, decision_id), None)
            peer.scan_failures()
        self._mirror_local_tickets()
        for peer in self._peers.values():
            if not peer.outbox:
                continue
            peer.activity_seq += 1
            if self._stage_rounds > 1:
                window = self._staged.setdefault(peer.name, [])
                if not window:
                    self._staged_at[peer.name] = self._pump_round
                window.extend(peer.outbox)
                peer.outbox.clear()
                continue
            self._flush_pairs(peer, peer.outbox, report)
            peer.outbox.clear()
        if self._stage_rounds > 1:
            for name, window in self._staged.items():
                if not window:
                    continue
                if (
                    self._pump_round - self._staged_at[name] + 1
                    < self._stage_rounds
                ):
                    continue
                peer = self._peers[name]
                if self.coalesce_envelopes and len(window) > 1:
                    # The window's whole point: payloads staged across
                    # *different* rounds coalesce together before the wire.
                    coalesced = _coalesce_batch(window)
                    peer.envelopes_coalesced += len(window) - len(coalesced)
                    window = coalesced
                peer.activity_seq += 1
                self._flush_pairs(peer, window, report)
                self._staged[name] = []
        return report

    def _flush_pairs(
        self,
        peer: Peer,
        pairs: List[PyTuple[str, object]],
        report: FederationPumpReport,
    ) -> None:
        if self.coalesce_envelopes:
            # Per-destination bundle flush: every payload staged for the
            # same peer this round shares one envelope (one queue slot,
            # one delay, one delivery).
            order: List[str] = []
            by_destination: Dict[str, List[object]] = {}
            for destination, payload in pairs:
                if destination not in by_destination:
                    order.append(destination)
                    by_destination[destination] = []
                by_destination[destination].append(payload)
                report.flushed += 1
            for destination in order:
                self.transport.send_bundle(
                    peer.name, destination, by_destination[destination]
                )
        else:
            for destination, payload in pairs:
                self.transport.send(peer.name, destination, payload)
                report.flushed += 1

    def _deliver(self, envelope: Envelope) -> None:
        payload = envelope.payload
        if isinstance(payload, Bundle):
            # Bundles unpack in order, so delivery is indistinguishable from
            # the payloads having arrived back-to-back on a FIFO link.
            for inner in payload.payloads:
                self._deliver_payload(envelope.source, envelope.destination, inner)
        else:
            self._deliver_payload(envelope.source, envelope.destination, payload)

    def _deliver_payload(self, source: str, destination: str, payload: object) -> None:
        peer = self.peer(destination)
        if isinstance(payload, (RemoteUpdate, ExchangeFiring, ExchangeRetraction)):
            if isinstance(payload, RemoteUpdate):
                operation = payload.operation
            elif isinstance(payload, ExchangeFiring):
                operation = RemoteFiringOperation(
                    payload.tgd, payload.assignment(), payload.head_rows
                )
            else:
                operation = RemoteRetractionOperation(
                    payload.tgd, payload.assignment()
                )
            try:
                ticket = peer.service.submit(
                    peer.gateway.session_id,
                    operation,
                    origin=payload.origin,
                    trace=payload.trace,
                )
            except AdmissionError:
                # The destination's bounded admission queue is full.  Nothing
                # may be lost: put the payload back on the wire (bare, even if
                # it arrived bundled) and try again on a later pump (transport
                # backpressure, not a crash).
                self.transport.send(source, destination, payload)
                self._deliveries_deferred.inc()
                return
            if isinstance(payload, RemoteUpdate):
                peer.expect_notice(ticket.ticket_id, payload.origin)
            elif isinstance(payload, ExchangeFiring):
                self._firings_delivered.inc()
            else:
                self._retractions_delivered.inc()
        elif isinstance(payload, QuestionOpened):
            federated = FederatedQuestion(
                executing_peer=payload.executing_peer,
                decision_id=payload.decision_id,
                request=payload.request,
                origin=payload.origin,
                description=payload.ticket_description,
                trace=payload.trace,
            )
            self._inboxes[destination][federated.key] = federated
            self._questions_routed.inc()
        elif isinstance(payload, QuestionCancelled):
            removed = self._inboxes[destination].pop(
                (payload.executing_peer, payload.decision_id), None
            )
            if removed is not None:
                self._cancellations.inc()
        elif isinstance(payload, QuestionAnswer):
            try:
                peer.service.answer(
                    peer.gateway.session_id, payload.decision_id, payload.choice
                )
                peer.mark_answered(payload.decision_id)
            except OracleError:
                # The asking update aborted (its question was cancelled) while
                # the answer was in flight; the restart will ask afresh.
                self._answers_dropped.inc()
        elif isinstance(payload, CommitNotice):
            ticket = self._tickets.get(payload.origin.ticket_id)
            if ticket is not None:
                ticket.status = payload.status
                if ticket.trace_span is not None:
                    self._tracer.end_span(
                        ticket.trace_span, status=payload.status.value
                    )
        else:  # pragma: no cover - the payload union is closed
            raise FederationError("undeliverable payload {!r}".format(payload))

    def _mirror_local_tickets(self) -> None:
        still_unresolved: List[FederatedTicket] = []
        for ticket in self._unresolved:
            if ticket.local_ticket is not None:
                ticket.status = ticket.local_ticket.status
            if not ticket.is_done:
                still_unresolved.append(ticket)
        self._unresolved = still_unresolved

    # ------------------------------------------------------------------
    # The federated inbox
    # ------------------------------------------------------------------
    def inbox(self, peer_name: str) -> List[FederatedQuestion]:
        """The open questions answerable at *peer_name*, oldest first."""
        self.peer(peer_name)
        questions = self._inboxes[peer_name]
        if not questions:
            return []
        return [question for _, question in sorted(questions.items())]

    def answer(
        self,
        peer_name: str,
        question: FederatedQuestion,
        choice: Union[FrontierOperation, int],
    ) -> None:
        """A client at *peer_name* answers one of its open federated questions.

        Local questions resume immediately; remote ones travel back to the
        executing peer as a :class:`QuestionAnswer` envelope (and are subject
        to the same delays and partitions as everything else).
        """
        inbox = self._inboxes[self.peer(peer_name).name]
        if question.key not in inbox:
            raise FederationError(
                "question {} is not open at peer {!r}".format(question.key, peer_name)
            )
        del inbox[question.key]
        if question.executing_peer == peer_name:
            peer = self.peer(peer_name)
            try:
                peer.service.answer(
                    peer.gateway.session_id, question.decision_id, choice
                )
            except OracleError:
                self._answers_dropped.inc()
        else:
            self._answers_routed.inc()
            self.transport.send(
                peer_name,
                question.executing_peer,
                QuestionAnswer(
                    executing_peer=question.executing_peer,
                    decision_id=question.decision_id,
                    choice=choice,
                    answered_by=peer_name,
                    trace=question.trace,
                ),
            )

    # ------------------------------------------------------------------
    # Quiescence and draining
    # ------------------------------------------------------------------
    def quiescent(self) -> bool:
        """``True`` when no queue anywhere can produce further work."""
        if self.transport.in_flight:
            return False
        for peer in self._peers.values():
            if peer.outbox or self._staged.get(peer.name):
                return False
            if not peer.service.is_quiescent:
                return False
        return True

    def watermark_quiescent(self) -> bool:
        """The conservation form of :meth:`quiescent`.

        Same distributed condition, decided the way the socket federation's
        watermark drain decides it: per-directed-link send watermarks equal
        to their delivery watermarks (``sent - delivered`` is the queue
        length, so conservation ⇔ nothing in flight) plus every peer idle
        with nothing staged.  :meth:`run_until_quiescent` asserts this
        agrees with :meth:`quiescent` on every round — a built-in
        differential between the two formulations.
        """
        if not self.transport.watermarks_conserved():
            return False
        for peer in self._peers.values():
            if peer.outbox or self._staged.get(peer.name):
                return False
            if not peer.service.is_quiescent:
                return False
        return True

    def run_until_quiescent(
        self,
        answer_strategy: Optional[AnswerStrategy] = None,
        max_rounds: int = 10_000,
    ) -> int:
        """Pump until the federation drains; returns the number of rounds.

        With *answer_strategy*, every open federated question is answered by
        (a client of) the peer whose inbox holds it, each round.  Without one,
        the loop still drains workloads that never park.  Raises
        ``RuntimeError`` when *max_rounds* pass without quiescence — e.g.
        while a partition still holds envelopes.
        """
        for round_number in range(1, max_rounds + 1):
            self.pump()
            if answer_strategy is not None:
                for peer_name in self._peers:
                    for question in self.inbox(peer_name):
                        self.answer(peer_name, question, answer_strategy(question))
            settled = self.watermark_quiescent()
            if settled != self.quiescent():
                raise FederationError(
                    "watermark quiescence ({}) disagrees with queue-scan "
                    "quiescence ({}) on round {}".format(
                        settled, not settled, round_number
                    )
                )
            if settled:
                return round_number
        raise RuntimeError(
            "federation failed to drain within {} rounds "
            "(transport in flight: {}, partitions: {})".format(
                max_rounds, self.transport.in_flight, self.transport.partitions()
            )
        )

    # ------------------------------------------------------------------
    # Global state
    # ------------------------------------------------------------------
    def global_snapshot(self) -> FrozenDatabase:
        """The union of every peer's committed owned relations."""
        contents: Dict[str, frozenset] = {}
        for relation in self.schema.relation_names():
            owner = self.peer(self.owner_of[relation])
            contents[relation] = frozenset(
                owner.service.scheduler.committed_view().tuples(relation)
            )
        return FrozenDatabase(self.schema, contents)

    def tickets(self) -> List[FederatedTicket]:
        """Every federated ticket, in submission order."""
        return [self._tickets[ticket_id] for ticket_id in sorted(self._tickets)]

    def _peer_service_metrics(self) -> Dict[str, object]:
        """Per-peer service metrics producer (looks peers up live, so a
        peer reborn by :meth:`restart_peer` reports its new service)."""
        data: Dict[str, object] = {}
        for name, peer in self._peers.items():
            snapshot = peer.service.metrics_snapshot()
            for key in (
                "committed",
                "parks",
                "resumes",
                "restarts",
                "store_log_entries",
                "store_versions",
            ):
                data["peer_{}_{}".format(name, key)] = snapshot[key]
        return data

    def metrics(self) -> Dict[str, object]:
        """Aggregated federation, transport and per-peer service metrics."""
        return self.registry.collect()
