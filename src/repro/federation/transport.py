"""The simulated inter-peer transport: FIFO links with delay, reorder, partition.

Peers of a :class:`~repro.federation.network.FederatedNetwork` never call each
other directly; every exchange envelope crosses this in-process fabric.  Each
ordered pair of peers has its own FIFO queue; a message becomes deliverable
``delay`` pumps after it was sent (per-link delays can override the default),
an optional seeded reorderer shuffles each pump's deliverable batch (letting
late messages overtake earlier ones), and a partitioned link *holds* its
messages — nothing is ever dropped — until :meth:`Transport.heal` reconnects
the pair.

The fabric carries **bytes**, not objects: by default every payload is
encoded through the wire codec (:mod:`repro.codec`) at :meth:`Transport.send`
and decoded at delivery, so nothing crosses a link that could not equally
cross a socket — every federation differential run therefore proves
wire-serializability of the whole exchange protocol for free.  The in-process
object mode of PR 3 survives as ``wire=False`` (and the
``REPRO_WIRE_TRANSPORT=0`` environment override) for byte-vs-object
differential comparisons; the *ordering and timing* semantics are identical
in both modes.
"""

from __future__ import annotations

import itertools
import os
import random
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Deque, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple as PyTuple

from ..codec.wire import decode_envelope, encode_envelope, payload_kind
from ..obs.trace import Span, SpanContext, default_tracer


@dataclass(frozen=True)
class Bundle:
    """Several payloads travelling as one envelope (a per-destination flush).

    The transport treats the bundle as a single message — one queue slot, one
    delivery, one delay — which is exactly the point: a commit batch's worth
    of exchange envelopes to the same destination pays the per-message fixed
    costs once.  Receivers unpack and process the payloads in order, so a
    bundle is semantically identical to sending its payloads back-to-back on
    a FIFO link (and *stronger* under reordering: the bundle cannot be
    interleaved).
    """

    payloads: PyTuple[object, ...]
    #: Trace context of the first traced member (``None`` when tracing is
    #: off); ``compare=False`` keeps bundle equality content-only.
    trace: Optional[SpanContext] = field(default=None, compare=False)

    def __len__(self) -> int:
        return len(self.payloads)


@dataclass(frozen=True)
class Envelope:
    """One message in flight between two peers.

    On a byte transport (the default) the queued envelope's ``payload`` is
    the encoded ``bytes`` and ``payload_kind`` names the wire kind; the
    envelopes :meth:`Transport.pump` hands back carry the *decoded* payload
    (receivers never see bytes).
    """

    seq: int
    source: str
    destination: str
    payload: object
    #: Transport tick at which the message was sent.
    sent_at: int
    #: Earliest transport tick at which the message may be delivered.
    due_at: int
    #: Wire kind of the payload ("" on an object transport).
    payload_kind: str = ""

    def describe(self) -> str:
        return "envelope #{} {} -> {}: {}".format(
            self.seq,
            self.source,
            self.destination,
            self.payload_kind or type(self.payload).__name__,
        )


class Transport:
    """In-process message fabric with per-link FIFO queues.

    * ``delay`` — pumps a message waits before it is deliverable (default 0:
      the next pump delivers it).
    * ``reorder_seed`` — when set, each pump's deliverable batch is shuffled
      with a seeded RNG **and** due messages may overtake earlier not-yet-due
      ones on the same link; when unset, links are strictly FIFO.
    * :meth:`partition` / :meth:`heal` — a partitioned pair's messages are
      queued, not lost; healing releases them on the next pump.
    """

    def __init__(
        self,
        delay: int = 0,
        reorder_seed: Optional[int] = None,
        wire: Optional[bool] = None,
        tracer=None,
    ):
        if delay < 0:
            raise ValueError("delay cannot be negative")
        self._default_delay = delay
        self._link_delay: Dict[PyTuple[str, str], int] = {}
        self._queues: Dict[PyTuple[str, str], Deque[Envelope]] = {}
        self._partitioned: Set[FrozenSet[str]] = set()
        self._rng = random.Random(reorder_seed) if reorder_seed is not None else None
        self._seq = itertools.count(1)
        self._tick = 0
        if wire is None:
            wire = os.environ.get("REPRO_WIRE_TRANSPORT", "1") != "0"
        #: Byte transport: encode every payload through the wire codec on
        #: send and decode it on delivery (the default; see the module doc).
        self.wire = wire
        self.tracer = tracer if tracer is not None else default_tracer()
        #: Counters for the metrics snapshot.
        self.sent = 0
        self.delivered = 0
        #: Per-directed-link send/receive watermarks (the in-process twin of
        #: the socket federation's frames_sent / frames_received vectors):
        #: for every link, ``sent - delivered`` equals its queue length, so
        #: the conservation check "all watermarks equal" is exactly
        #: "nothing in flight".
        self.link_sent: Dict[PyTuple[str, str], int] = {}
        self.link_delivered: Dict[PyTuple[str, str], int] = {}
        self.bundles_sent = 0
        self.payloads_sent = 0
        self.wire_bytes_sent = 0
        #: Wire bytes attributed per payload kind (empty on object transports).
        self.wire_bytes_by_kind: Dict[str, int] = {}
        #: Codec CPU seconds, metered only while tracing is enabled.
        self.encode_seconds = 0.0
        self.decode_seconds = 0.0
        #: Envelope seq -> open ``wire`` span (ended at delivery).
        self._wire_spans: Dict[int, Span] = {}

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def set_delay(self, source: str, destination: str, delay: int) -> None:
        """Override the delivery delay of one directed link."""
        if delay < 0:
            raise ValueError("delay cannot be negative")
        self._link_delay[(source, destination)] = delay

    def delay_of(self, source: str, destination: str) -> int:
        """The delivery delay currently configured for a directed link."""
        return self._link_delay.get((source, destination), self._default_delay)

    def partition(self, a: str, b: str) -> None:
        """Cut the (bidirectional) link between *a* and *b*; messages queue up."""
        self._partitioned.add(frozenset((a, b)))

    def heal(self, a: str, b: str) -> None:
        """Reconnect *a* and *b*; held messages deliver on the next pumps."""
        self._partitioned.discard(frozenset((a, b)))

    def is_partitioned(self, a: str, b: str) -> bool:
        """``True`` while the pair cannot exchange messages."""
        return frozenset((a, b)) in self._partitioned

    def partitions(self) -> List[FrozenSet[str]]:
        """The currently cut pairs."""
        return list(self._partitioned)

    # ------------------------------------------------------------------
    # Sending and pumping
    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """The current transport tick (advanced by :meth:`pump`)."""
        return self._tick

    def send(self, source: str, destination: str, payload: object) -> Envelope:
        """Enqueue *payload* on the ``source -> destination`` link.

        On a byte transport the payload is wire-encoded *now* — the sender's
        live objects never enter the queue, so mutating them after ``send``
        cannot reach the receiver, exactly as over a real socket.
        """
        if source == destination:
            raise ValueError("a peer does not message itself over the transport")
        kind = ""
        queued: object = payload
        encode_seconds = 0.0
        if self.wire:
            kind = payload_kind(payload)
            if self.tracer.enabled:
                before = self.tracer.clock()
                queued = encode_envelope(payload)
                encode_seconds = self.tracer.clock() - before
                self.encode_seconds += encode_seconds
            else:
                queued = encode_envelope(payload)
            self.wire_bytes_sent += len(queued)
            self.wire_bytes_by_kind[kind] = (
                self.wire_bytes_by_kind.get(kind, 0) + len(queued)
            )
        envelope = Envelope(
            seq=next(self._seq),
            source=source,
            destination=destination,
            payload=queued,
            sent_at=self._tick,
            due_at=self._tick + 1 + self.delay_of(source, destination),
            payload_kind=kind,
        )
        self._queues.setdefault((source, destination), deque()).append(envelope)
        self.sent += 1
        link = (source, destination)
        self.link_sent[link] = self.link_sent.get(link, 0) + 1
        self.payloads_sent += len(payload) if isinstance(payload, Bundle) else 1
        if self.tracer.enabled:
            context = getattr(payload, "trace", None)
            if context is not None:
                self._wire_spans[envelope.seq] = self.tracer.start_span(
                    "wire",
                    phase="wire",
                    parent=context,
                    peer=source,
                    kind=kind or type(payload).__name__,
                    destination=destination,
                    bytes=len(queued) if self.wire else 0,
                    encode_seconds=encode_seconds,
                )
        return envelope

    def send_bundle(
        self, source: str, destination: str, payloads: Iterable[object]
    ) -> Optional[Envelope]:
        """Flush *payloads* to one destination as a single bundled envelope.

        An empty iterable sends nothing; a single payload is sent bare (no
        bundle wrapper to unpack); several payloads travel as one
        :class:`Bundle`.  Returns the envelope sent, if any.
        """
        batch = list(payloads)
        if not batch:
            return None
        if len(batch) == 1:
            return self.send(source, destination, batch[0])
        self.bundles_sent += 1
        trace = None
        if self.tracer.enabled:
            # The bundle inherits the first traced member's context so the
            # whole flush appears as one wire hop in that update's trace
            # (every member still carries its own context for the receiver).
            for payload in batch:
                trace = getattr(payload, "trace", None)
                if trace is not None:
                    break
        return self.send(source, destination, Bundle(tuple(batch), trace=trace))

    def pump(self) -> List[Envelope]:
        """Advance one tick and return the envelopes delivered this tick.

        Per link, the deliverable prefix (every due message up to the first
        not-yet-due one) is taken in FIFO order; with reordering enabled, all
        due messages are taken regardless of position and the combined batch
        is shuffled.  Partitioned links deliver nothing.
        """
        self._tick += 1
        deliverable: List[Envelope] = []
        for link, queue in self._queues.items():
            if not queue:
                continue
            if self._partitioned and frozenset(link) in self._partitioned:
                continue
            if self._rng is not None:
                kept: Deque[Envelope] = deque()
                while queue:
                    envelope = queue.popleft()
                    if envelope.due_at <= self._tick:
                        deliverable.append(envelope)
                    else:
                        kept.append(envelope)
                queue.extend(kept)
            else:
                while queue and queue[0].due_at <= self._tick:
                    deliverable.append(queue.popleft())
        if self._rng is not None and len(deliverable) > 1:
            self._rng.shuffle(deliverable)
        self.delivered += len(deliverable)
        for envelope in deliverable:
            link = (envelope.source, envelope.destination)
            self.link_delivered[link] = self.link_delivered.get(link, 0) + 1
        if self.wire:
            # Decode at the delivery boundary: receivers get fresh objects
            # reconstructed from the bytes, never the sender's instances.
            if self.tracer.enabled:
                decoded: List[Envelope] = []
                for envelope in deliverable:
                    before = self.tracer.clock()
                    payload = decode_envelope(envelope.payload)
                    decode_seconds = self.tracer.clock() - before
                    self.decode_seconds += decode_seconds
                    span = self._wire_spans.pop(envelope.seq, None)
                    if span is not None:
                        self.tracer.end_span(span, decode_seconds=decode_seconds)
                    decoded.append(replace(envelope, payload=payload))
                deliverable = decoded
            else:
                deliverable = [
                    replace(envelope, payload=decode_envelope(envelope.payload))
                    for envelope in deliverable
                ]
        elif self.tracer.enabled:
            for envelope in deliverable:
                span = self._wire_spans.pop(envelope.seq, None)
                if span is not None:
                    self.tracer.end_span(span)
        return deliverable

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def in_flight(self) -> int:
        """Messages queued anywhere (including those held by partitions)."""
        return sum(len(queue) for queue in self._queues.values())

    @property
    def held_by_partition(self) -> int:
        """Messages currently held on partitioned links (a gauge)."""
        return sum(
            len(queue)
            for link, queue in self._queues.items()
            if frozenset(link) in self._partitioned
        )

    def pending(self, source: str, destination: str) -> int:
        """Messages queued on one directed link."""
        return len(self._queues.get((source, destination), ()))

    def watermarks_conserved(self) -> bool:
        """True when every directed link's deliveries caught up with sends."""
        return all(
            self.link_delivered.get(link, 0) == sent
            for link, sent in self.link_sent.items()
        )

    def metrics(self) -> Dict[str, int]:
        """Flat counters for the federation metrics snapshot."""
        data = {
            "transport_sent": self.sent,
            "transport_delivered": self.delivered,
            "transport_in_flight": self.in_flight,
            "transport_partitioned_pairs": len(self._partitioned),
            "transport_bundles_sent": self.bundles_sent,
            "transport_payloads_sent": self.payloads_sent,
            "transport_wire": int(self.wire),
            "transport_wire_bytes_sent": self.wire_bytes_sent,
        }
        for kind in sorted(self.wire_bytes_by_kind):
            key = "transport_wire_bytes_" + kind.replace("-", "_")
            data[key] = self.wire_bytes_by_kind[kind]
        return data
