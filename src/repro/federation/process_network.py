"""The process federation: real peer processes, coordinated over sockets.

:class:`ProcessFederation` is the multi-process counterpart of
:class:`~repro.federation.network.FederatedNetwork`: the same schema /
initial-state / mappings / ownership description, but every peer runs as its
own OS process (spawned from the ``repro-peer`` entry point in
:mod:`repro.federation.proc`) and the peers exchange envelopes directly over
TCP or Unix-domain sockets, one :mod:`repro.codec.framing` frame per
per-destination bundle.  The coordinator never touches an envelope: it only
speaks the control protocol — submissions in, ticket/question events out,
status polls for the drain barrier — so the exchange protocol on the peer
links is exactly the wire codec the in-process transport already speaks, and
the in-process federation stays available as the differential oracle.

The public surface intentionally shadows the in-process network where the
concept carries over: ``submit`` / ``ticket`` / ``inbox`` / ``answer`` /
``drain`` (the process world's ``run_until_quiescent``) / ``partition`` /
``heal`` / ``checkpoint_peer`` / ``kill_peer`` / ``restart_peer`` /
``global_snapshot``.  Differences are forced by distribution: submission is
asynchronous (admission backpressure happens inside the owning peer, not in
the submitting client), and quiescence is a distributed condition —
``drain`` declares the federation quiescent only when every peer reports
itself idle, every directed link's receive counter has caught up with its
send counter, and the whole picture repeats unchanged on a second poll.

Teardown is strict by design: :meth:`close` walks exit-request → ``wait`` →
``terminate`` → ``kill`` and then :meth:`assert_reaped` verifies no child
outlived the federation, which is what keeps failing tests from leaking
orphan processes or socket files.
"""

from __future__ import annotations

import json
import os
import selectors
import shutil
import socket
import subprocess
import sys
import tempfile
import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..codec.framing import FRAME_CONTROL
from ..codec.wire import (
    _encode_choice,
    decode_frontier_request,
    decode_tuple,
    dumps,
    encode_user_operation,
    loads,
)
from ..core.update import DeleteOperation, InsertOperation, UserOperation
from ..service.tickets import RemoteOrigin, TicketStatus
from ..storage.memory import FrozenDatabase
from .exchange import FederationError
from .network import AnswerStrategy, FederatedQuestion
from ..obs.timeline import TelemetryTimeline
from ..obs.trace import SpanContext
from .proc import COORDINATOR, encode_peer_config
from .socket_transport import ChannelClosed, FrameChannel, SocketAddress


class ProcessFederationError(FederationError):
    """A coordination failure: a peer died, timed out, or misbehaved."""


class ProcessTicket:
    """The coordinator-side handle of one submitted user operation."""

    __slots__ = ("fid", "peer", "target", "operation", "status")

    def __init__(self, fid: int, peer: str, target: str, operation: UserOperation):
        self.fid = fid
        self.peer = peer
        self.target = target
        self.operation = operation
        self.status = TicketStatus.QUEUED

    @property
    def is_done(self) -> bool:
        return self.status in (TicketStatus.COMMITTED, TicketStatus.FAILED)

    def describe(self) -> str:
        return "process ticket #{} {}@{} -> {}: {}".format(
            self.fid,
            self.status.value,
            self.peer,
            self.target,
            self.operation.describe(),
        )


class _PeerHandle:
    """Everything the coordinator tracks per peer process."""

    __slots__ = (
        "name",
        "address",
        "config_path",
        "log_path",
        "process",
        "channel",
        "replies",
        "last_status",
    )

    def __init__(self, name: str, address: SocketAddress):
        self.name = name
        self.address = address
        self.config_path: Optional[str] = None
        self.log_path: Optional[str] = None
        self.process: Optional[subprocess.Popen] = None
        self.channel: Optional[FrameChannel] = None
        #: Replies keyed by message type, drained by the await helpers.
        self.replies: Dict[str, List[Dict]] = {}
        self.last_status: Optional[Dict] = None


class ProcessFederation:
    """Many peer *processes*, one federation, driven over control sockets."""

    def __init__(
        self,
        schema,
        initial,
        mappings: Sequence,
        ownership: Dict[str, Sequence[str]],
        tracker: str = "PRECISE",
        admission=None,
        max_total_steps: int = 1_000_000,
        coalesce_envelopes: bool = True,
        group_commit: bool = True,
        link_delay: float = 0.0,
        reorder_seed: Optional[int] = None,
        trace: Optional[bool] = None,
        transport: str = "unix",
        workdir: Optional[str] = None,
        startup_timeout: float = 20.0,
        telemetry_interval: float = 0.25,
        stalled_after: float = 1.5,
        dead_after: float = 2.0,
        flight: bool = True,
        flight_dir: Optional[str] = None,
        stage_rounds: int = 1,
        stage_bytes: int = 0,
        stage_delay: float = 0.0,
        drain_mode: Optional[str] = None,
    ):
        self.schema = schema
        self._initial = initial
        self._mappings = list(mappings)
        self._ownership = {
            name: tuple(relations) for name, relations in ownership.items()
        }
        owner_of: Dict[str, str] = {}
        for peer_name, relations in self._ownership.items():
            for relation in relations:
                if relation not in schema:
                    raise FederationError(
                        "peer {!r} claims unknown relation {!r}".format(
                            peer_name, relation
                        )
                    )
                if relation in owner_of:
                    raise FederationError(
                        "relation {!r} claimed by both {!r} and {!r}".format(
                            relation, owner_of[relation], peer_name
                        )
                    )
                owner_of[relation] = peer_name
        unowned = [name for name in schema.relation_names() if name not in owner_of]
        if unowned:
            raise FederationError(
                "no peer owns relation(s) {}".format(sorted(unowned))
            )
        self.owner_of = owner_of
        self._tracker = tracker
        self._admission = admission
        self._max_total_steps = max_total_steps
        self._coalesce = coalesce_envelopes
        self._group_commit = group_commit
        self._link_delay = link_delay
        self._reorder_seed = reorder_seed
        if trace is None:
            # Same opt-in as everywhere else: REPRO_TRACE=1 turns the whole
            # federation on (each peer process gets its own prefixed tracer).
            trace = os.environ.get("REPRO_TRACE") == "1"
        self._trace = trace
        self._startup_timeout = startup_timeout
        # -- send-side staging window + drain protocol -------------------
        self._stage_rounds = int(stage_rounds)
        self._stage_bytes = int(stage_bytes)
        self._stage_delay = float(stage_delay)
        #: Default drain protocol (None = env REPRO_DRAIN, else watermark).
        self._drain_mode = drain_mode
        self._owns_workdir = workdir is None
        self.workdir = workdir or tempfile.mkdtemp(prefix="repro-fed-")
        os.makedirs(self.workdir, exist_ok=True)
        # -- the live telemetry plane -----------------------------------
        self._telemetry_interval = float(telemetry_interval)
        #: Postmortem flight dumps land here (param > env > workdir/flight).
        self._flight_dir = None
        if flight:
            self._flight_dir = (
                flight_dir
                or os.environ.get("REPRO_FLIGHT_DIR")
                or os.path.join(self.workdir, "flight")
            )
        #: Federation-wide time series + liveness watchdog over heartbeats.
        self.timeline = TelemetryTimeline(
            interval=self._telemetry_interval,
            stalled_after=stalled_after,
            dead_after=dead_after,
        )
        for name in self._ownership:
            self.timeline.register_peer(name)
        self._last_liveness: Dict[str, str] = {}
        #: Decomposition record of the most recent drain() (None before one).
        self.last_drain: Optional[Dict] = None
        #: The watermark drain's working set: the latest status-shaped body
        #: per peer that carried an ``activity_seq`` (unsolicited went-idle
        #: pushes, heartbeats, and status replies all qualify).  Kept apart
        #: from the timeline's merged view on purpose — kill/restart *clears*
        #: a peer's entry, because a reborn peer resets its activity seq and
        #: a stale pre-restart view could coincidentally match it.
        self._watermarks: Dict[str, Dict] = {}
        self._spool_path = os.path.join(self.workdir, "telemetry.jsonl")
        try:
            self._spool_handle = open(self._spool_path, "a")
        except OSError:  # pragma: no cover - unwritable workdir
            self._spool_handle = None
        self._spool({
            "rec": "meta",
            "interval": self._telemetry_interval,
            "stalled_after": stalled_after,
            "dead_after": dead_after,
            "peers": sorted(self._ownership),
            "wall": time.time(),
        })
        self._addresses = self._assign_addresses(transport)
        self._handles: Dict[str, _PeerHandle] = {
            name: _PeerHandle(name, self._addresses[name])
            for name in self._ownership
        }
        self._selector = selectors.DefaultSelector()
        self._inboxes: Dict[str, Dict[Tuple[str, int], FederatedQuestion]] = {
            name: {} for name in self._ownership
        }
        self._tickets: Dict[int, ProcessTicket] = {}
        self._next_fid = 1
        self._next_round = 1
        self._closed = False
        #: Peers whose control EOF is expected (killed or exiting).
        self._expect_eof: set = set()
        try:
            for name in self._ownership:
                self._spawn(name, restore=None)
            for name in self._ownership:
                self._connect(name)
        except Exception:
            self.close()
            raise

    # ------------------------------------------------------------------
    # Spawning and connecting
    # ------------------------------------------------------------------
    def _assign_addresses(self, transport: str) -> Dict[str, SocketAddress]:
        if transport == "unix":
            return {
                name: SocketAddress.unix(
                    os.path.join(self.workdir, "peer-{}.sock".format(name))
                )
                for name in self._ownership
            }
        if transport != "tcp":
            raise ProcessFederationError(
                "unknown transport {!r} (use 'unix' or 'tcp')".format(transport)
            )
        addresses: Dict[str, SocketAddress] = {}
        probes = []
        try:
            for name in self._ownership:
                # Bind port 0 and keep the socket open while picking the
                # rest, so the kernel cannot hand two peers the same port.
                probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
                probe.bind(("127.0.0.1", 0))
                probes.append(probe)
                addresses[name] = SocketAddress.tcp(
                    "127.0.0.1", probe.getsockname()[1]
                )
        finally:
            for probe in probes:
                probe.close()
        return addresses

    def _spawn(self, name: str, restore: Optional[str]) -> None:
        handle = self._handles[name]
        trace_path = None
        if self._trace:
            trace_path = os.path.join(
                self.workdir, "trace-{}.jsonl".format(name)
            )
        config = encode_peer_config(
            name=name,
            schema=self.schema,
            initial=self._initial,
            mappings=self._mappings,
            ownership=self._ownership,
            addresses=self._addresses,
            tracker=self._tracker,
            admission=self._admission.get(name)
            if isinstance(self._admission, dict)
            else self._admission,
            max_total_steps=self._max_total_steps,
            group_commit=self._group_commit,
            coalesce=self._coalesce,
            link_delay=self._link_delay,
            reorder_seed=self._reorder_seed,
            trace=self._trace,
            trace_path=trace_path,
            restore=restore,
            telemetry_interval=self._telemetry_interval,
            flight_dir=self._flight_dir,
            stage_rounds=self._stage_rounds,
            stage_bytes=self._stage_bytes,
            stage_delay=self._stage_delay,
        )
        config_path = os.path.join(self.workdir, "peer-{}.json".format(name))
        with open(config_path, "wb") as handle_file:
            handle_file.write(config)
        handle.config_path = config_path
        handle.log_path = os.path.join(self.workdir, "peer-{}.log".format(name))
        environment = dict(os.environ)
        package_root = os.path.dirname(
            os.path.dirname(os.path.abspath(__import__("repro").__file__))
        )
        existing = environment.get("PYTHONPATH")
        environment["PYTHONPATH"] = (
            package_root if not existing
            else package_root + os.pathsep + existing
        )
        with open(handle.log_path, "ab") as log:
            # Import-and-call rather than ``-m``: the package __init__ pulls
            # the proc module in, so runpy would warn about re-executing it.
            handle.process = subprocess.Popen(
                [sys.executable, "-c",
                 "import sys; from repro.federation.proc import main; "
                 "sys.exit(main())",
                 "--config", config_path],
                stdout=log,
                stderr=log,
                env=environment,
            )

    def _connect(self, name: str) -> None:
        handle = self._handles[name]
        deadline = time.monotonic() + self._startup_timeout
        while True:
            if handle.process.poll() is not None:
                raise ProcessFederationError(
                    "peer {!r} exited during startup (code {}); see {}".format(
                        name, handle.process.returncode, handle.log_path
                    )
                )
            try:
                sock = handle.address.connect(timeout=1.0)
                break
            except OSError:
                if time.monotonic() > deadline:
                    raise ProcessFederationError(
                        "peer {!r} did not start listening within {}s".format(
                            name, self._startup_timeout
                        )
                    )
                time.sleep(0.02)
        channel = FrameChannel(sock, label=name)
        channel.send_frame(
            FRAME_CONTROL, dumps({"t": "hello", "peer": COORDINATOR})
        )
        handle.channel = channel
        self._selector.register(channel, selectors.EVENT_READ, handle)
        self._expect_eof.discard(name)

    # ------------------------------------------------------------------
    # Event pumping and the telemetry plane
    # ------------------------------------------------------------------
    def _spool(self, record: Dict) -> None:
        """Append one record to the telemetry spool (what repro-top tails)."""
        if self._spool_handle is None:
            return
        try:
            self._spool_handle.write(json.dumps(record, sort_keys=True) + "\n")
            self._spool_handle.flush()
        except (OSError, ValueError):  # pragma: no cover - best effort
            pass

    def _observe_telemetry(self, peer: str, body: Dict, kind: str) -> None:
        if "activity_seq" in body:
            self._watermarks[peer] = body
        self.timeline.observe(peer, body, kind=kind)
        self._spool({
            "rec": "telemetry",
            "peer": peer,
            "kind": kind,
            "wall": time.time(),
            "body": body,
        })

    def liveness(self) -> Dict[str, Dict]:
        """The watchdog's verdict per peer; spools state transitions."""
        report = self.timeline.liveness()
        for name, entry in report.items():
            if self._last_liveness.get(name) != entry["state"]:
                self._last_liveness[name] = entry["state"]
                self._spool({
                    "rec": "liveness",
                    "peer": name,
                    "state": entry["state"],
                    "reason": entry.get("reason"),
                    "age": entry.get("age"),
                    "wall": time.time(),
                })
        return report

    def poll(self, timeout: float = 0.0) -> int:
        """Process pending control traffic; returns handled message count."""
        handled = 0
        for key, _ in self._selector.select(timeout):
            handle = key.data
            try:
                frames = handle.channel.receive()
            except ChannelClosed:
                self._selector.unregister(handle.channel)
                handle.channel = None
                if handle.name not in self._expect_eof:
                    # A vanished peer is a liveness fact, not a coordinator
                    # crash: the watchdog reports it dead right here (well
                    # before any drain timeout), and the peer's flight dump
                    # plus its log carry the why.
                    self.timeline.mark_dead(
                        handle.name,
                        "eof(exit={})".format(handle.process.poll()),
                    )
                continue
            for frame in frames:
                self._dispatch(handle, loads(frame.payload))
                handled += 1
        self.liveness()
        return handled

    def _dispatch(self, handle: _PeerHandle, body: Dict) -> None:
        kind = body["t"]
        if kind == "telemetry":
            self._observe_telemetry(body["peer"], body, "telemetry")
        elif kind == "ticket":
            ticket = self._tickets.get(int(body["fid"]))
            if ticket is not None and not ticket.is_done:
                ticket.status = TicketStatus(body["status"])
        elif kind == "question":
            question = FederatedQuestion(
                executing_peer=body["executing"],
                decision_id=int(body["decision"]),
                request=decode_frontier_request(body["request"]),
                origin=RemoteOrigin(
                    body["origin"]["peer"], body["origin"]["ticket"]
                ),
                description=body["desc"],
                trace=_decode_trace(body.get("tr")),
            )
            self._inboxes[body["inbox"]][question.key] = question
        elif kind == "question-gone":
            self._inboxes[body["inbox"]].pop(
                (body["executing"], int(body["decision"])), None
            )
        else:
            # A reply (status-reply, checkpoint-done, snapshot-reply,
            # trace-exported): parked for whoever is awaiting it.
            handle.replies.setdefault(kind, []).append(body)

    def _await_reply(
        self, name: str, kind: str, deadline: float, matches=None
    ) -> Dict:
        handle = self._handles[name]
        while True:
            queued = handle.replies.get(kind, [])
            for index, body in enumerate(queued):
                if matches is None or matches(body):
                    return queued.pop(index)
            if time.monotonic() > deadline:
                raise ProcessFederationError(
                    "timed out waiting for {} from peer {!r}".format(kind, name)
                )
            self.poll(0.05)

    def _send(self, name: str, body: Dict) -> None:
        handle = self._handles[name]
        if handle.channel is None:
            raise ProcessFederationError(
                "peer {!r} has no control channel".format(name)
            )
        handle.channel.send_frame(FRAME_CONTROL, dumps(body))

    # ------------------------------------------------------------------
    # Submission, questions, answers (the FederatedNetwork surface)
    # ------------------------------------------------------------------
    def peer_names(self) -> List[str]:
        return list(self._ownership)

    def _route(self, peer_name: str, operation: UserOperation) -> str:
        if isinstance(operation, (InsertOperation, DeleteOperation)):
            return self.owner_of[operation.row.relation]
        return peer_name

    def submit(self, peer_name: str, operation: UserOperation) -> ProcessTicket:
        """Submit a user operation at *peer_name* (asynchronous: the ticket
        reaches a terminal status when the peer's event says so)."""
        if peer_name not in self._handles:
            raise FederationError("unknown peer {!r}".format(peer_name))
        ticket = ProcessTicket(
            fid=self._next_fid,
            peer=peer_name,
            target=self._route(peer_name, operation),
            operation=operation,
        )
        self._next_fid += 1
        self._tickets[ticket.fid] = ticket
        self._send(peer_name, {
            "t": "submit",
            "fid": ticket.fid,
            "op": encode_user_operation(operation),
        })
        return ticket

    def ticket(self, fid: int) -> ProcessTicket:
        try:
            return self._tickets[fid]
        except KeyError:
            raise FederationError("unknown federated ticket #{}".format(fid))

    def tickets(self) -> List[ProcessTicket]:
        return [self._tickets[fid] for fid in sorted(self._tickets)]

    def inbox(self, peer_name: str) -> List[FederatedQuestion]:
        """The open questions answerable at *peer_name*, oldest first."""
        if peer_name not in self._inboxes:
            raise FederationError("unknown peer {!r}".format(peer_name))
        questions = self._inboxes[peer_name]
        if not questions:
            return []
        return [question for _, question in sorted(questions.items())]

    def answer(self, peer_name: str, question: FederatedQuestion, choice) -> None:
        """Answer one of *peer_name*'s open federated questions."""
        inbox = self._inboxes[peer_name]
        if question.key not in inbox:
            raise FederationError(
                "question {} is not open at peer {!r}".format(
                    question.key, peer_name
                )
            )
        del inbox[question.key]
        self._send(peer_name, {
            "t": "answer",
            "executing": question.executing_peer,
            "decision": question.decision_id,
            "choice": _encode_choice(choice),
            "tr": _encode_trace(question.trace),
        })

    # ------------------------------------------------------------------
    # Drain (the distributed run_until_quiescent)
    # ------------------------------------------------------------------
    def _status_round(self, names: Sequence[str], deadline: float) -> Dict[str, Dict]:
        round_number = self._next_round
        self._next_round += 1
        for name in names:
            self._send(name, {"t": "status", "round": round_number})
        replies: Dict[str, Dict] = {}
        for name in names:
            replies[name] = self._await_reply(
                name,
                "status-reply",
                deadline,
                matches=lambda body: body.get("round") == round_number,
            )
            self._handles[name].last_status = replies[name]
            # Status replies feed the timeline too: a drain round proves the
            # peer alive, and its absolute counters refresh the merged view,
            # so post-drain metrics() is at least as fresh as the last round.
            self._observe_telemetry(name, replies[name], "status")
        return replies

    @staticmethod
    def _round_settled(replies: Dict[str, Dict]) -> bool:
        """One status round's global-quiescence test."""
        for reply in replies.values():
            if not reply["quiescent"]:
                return False
        for name, reply in replies.items():
            for destination, sent in reply["sent"].items():
                if destination not in replies:
                    continue
                received = replies[destination]["received"].get(name, 0)
                # At-least-once delivery: a resend after a reconnect can push
                # received *past* sent, never below it at quiescence.
                if received < sent:
                    return False
        return True

    @staticmethod
    def _round_fingerprint(replies: Dict[str, Dict]):
        return {
            name: (
                reply["committed"],
                tuple(sorted(reply["sent"].items())),
                tuple(sorted(reply["received"].items())),
                reply["open_questions"],
            )
            for name, reply in sorted(replies.items())
        }

    def drain(
        self,
        answer_strategy: Optional[AnswerStrategy] = None,
        timeout: float = 60.0,
        mode: Optional[str] = None,
    ) -> int:
        """Poll, answer, and wait until the federation is drained.

        Two protocols decide the same distributed condition; *mode* (then
        the constructor's ``drain_mode``, then ``REPRO_DRAIN``, default
        ``watermark``) picks which one runs:

        * ``watermark`` — conservation-based, event-driven.  Peers push an
          unsolicited went-idle status delta the moment they settle; the
          coordinator blocks on its selector until every live peer's view
          is quiescent with every link's frames-sent equal to the
          destination's frames-received, then issues exactly one confirming
          status round.  Drained iff the confirm round is settled and no
          peer's monotonic ``activity_seq`` advanced since its view was
          observed — an unchanged seq brackets the gap, so no frame can
          have moved in between.
        * ``poll`` — the original paced barrier, kept as the differential
          oracle: status rounds until quiescence holds across two
          *consecutive* rounds with an identical counter fingerprint.

        Returns the number of status rounds.  Each call leaves a
        latency-decomposition record (round count, per-round wall seconds,
        settle reason, mode, time-to-idle) on ``self.last_drain`` and the
        telemetry timeline's ``drains`` list.
        """
        mode = (
            mode
            or self._drain_mode
            or os.environ.get("REPRO_DRAIN")
            or "watermark"
        )
        if mode not in ("watermark", "poll"):
            raise ProcessFederationError(
                "unknown drain mode {!r} (use 'watermark' or 'poll')".format(mode)
            )
        # Settle state never survives across drain calls: a previous drain
        # that died mid-round (peer-lost, timeout) can leave status replies
        # parked that no awaiter will ever claim.
        self._reset_drain_state()
        if mode == "poll":
            return self._drain_poll(answer_strategy, timeout)
        return self._drain_watermark(answer_strategy, timeout)

    def _reset_drain_state(self) -> None:
        """Drop status replies a previous (aborted) drain left parked."""
        for handle in self._handles.values():
            handle.replies.pop("status-reply", None)

    def _drain_poll(
        self,
        answer_strategy: Optional[AnswerStrategy],
        timeout: float,
    ) -> int:
        deadline = time.monotonic() + timeout
        started = time.monotonic()
        round_seconds: List[float] = []
        rounds = 0
        settled_fingerprint = None
        try:
            while True:
                # Recomputed per round: a peer that died mid-drain (watchdog
                # marked it dead, channel gone) drops out instead of hanging
                # every subsequent status round until the deadline.
                names = [
                    name for name, handle in self._handles.items()
                    if handle.channel is not None
                ]
                self.poll(0.01)
                if answer_strategy is not None:
                    for peer_name in names:
                        for question in self.inbox(peer_name):
                            self.answer(
                                peer_name, question, answer_strategy(question)
                            )
                round_started = time.monotonic()
                replies = self._status_round(names, deadline)
                round_seconds.append(time.monotonic() - round_started)
                rounds += 1
                if self._round_settled(replies):
                    fingerprint = self._round_fingerprint(replies)
                    if settled_fingerprint == fingerprint:
                        open_questions = sum(
                            len(self._inboxes[name]) for name in names
                        )
                        if answer_strategy is not None and open_questions:
                            settled_fingerprint = None
                            continue
                        self._record_drain(
                            rounds, started, round_seconds,
                            "two-round-fingerprint", "poll",
                        )
                        return rounds
                    settled_fingerprint = fingerprint
                else:
                    settled_fingerprint = None
                if time.monotonic() > deadline:
                    self._record_drain(
                        rounds, started, round_seconds, "timeout", "poll"
                    )
                    raise RuntimeError(
                        self._drain_timeout_message(timeout, replies)
                    )
        except ProcessFederationError:
            # A status round hung on a dead/stalled peer: record what the
            # drain managed before surfacing the coordination failure.
            self._record_drain(
                rounds, started, round_seconds, "peer-lost", "poll"
            )
            raise

    def _drain_watermark(
        self,
        answer_strategy: Optional[AnswerStrategy],
        timeout: float,
    ) -> int:
        deadline = time.monotonic() + timeout
        started = time.monotonic()
        round_seconds: List[float] = []
        rounds = 0
        time_to_idle: Optional[float] = None
        try:
            while True:
                self.poll(0.0)
                # Live names *after* the poll: an EOF processed just now
                # must not leave us sending a status frame to a dead channel.
                names = [
                    name for name, handle in self._handles.items()
                    if handle.channel is not None
                ]
                if answer_strategy is not None:
                    for peer_name in names:
                        for question in self.inbox(peer_name):
                            self.answer(
                                peer_name, question, answer_strategy(question)
                            )
                views = {
                    name: self._watermarks[name]
                    for name in names
                    if name in self._watermarks
                }
                if len(views) < len(names) or not self._round_settled(views):
                    # Not a candidate yet.  A peer with no observation at
                    # all (fresh spawn, cleared by restart) needs one paced
                    # round to seed its view; otherwise block on the
                    # selector until a went-idle push (or heartbeat) moves
                    # some view — the event-driven wait that replaces poll
                    # mode's fixed-cadence rounds.
                    if len(views) < len(names):
                        round_started = time.monotonic()
                        self._status_round(names, deadline)
                        round_seconds.append(time.monotonic() - round_started)
                        rounds += 1
                    else:
                        time_to_idle = None
                        self.poll(
                            min(0.25, max(0.0, deadline - time.monotonic()))
                        )
                    if time.monotonic() > deadline:
                        self._record_drain(
                            rounds, started, round_seconds, "timeout",
                            "watermark",
                        )
                        raise RuntimeError(
                            self._drain_timeout_message(timeout, views)
                        )
                    continue
                # Candidate: every live peer's last observation is idle and
                # the per-link watermarks conserve.  One confirming status
                # round decides it — if no activity seq moved between each
                # view and its confirm reply, nothing was in flight when the
                # views were taken, so the settled confirm is the truth.
                if time_to_idle is None:
                    time_to_idle = time.monotonic() - started
                trigger = {
                    name: view["activity_seq"] for name, view in views.items()
                }
                round_started = time.monotonic()
                replies = self._status_round(names, deadline)
                round_seconds.append(time.monotonic() - round_started)
                rounds += 1
                if self._round_settled(replies) and all(
                    replies[name]["activity_seq"] == trigger[name]
                    for name in names
                ):
                    open_questions = sum(
                        len(self._inboxes[name]) for name in names
                    )
                    if answer_strategy is not None and open_questions:
                        continue
                    self._record_drain(
                        rounds, started, round_seconds, "watermark-idle",
                        "watermark", time_to_idle,
                    )
                    return rounds
                # The candidate was stale (activity since the views were
                # taken); the confirm replies just refreshed every view, so
                # the next iteration re-evaluates from them.
                time_to_idle = None
                if time.monotonic() > deadline:
                    self._record_drain(
                        rounds, started, round_seconds, "timeout", "watermark"
                    )
                    raise RuntimeError(
                        self._drain_timeout_message(timeout, replies)
                    )
        except ProcessFederationError:
            self._record_drain(
                rounds, started, round_seconds, "peer-lost", "watermark"
            )
            raise

    def _drain_timeout_message(self, timeout: float, replies: Dict[str, Dict]) -> str:
        return (
            "process federation failed to drain within {}s: "
            "liveness={} {}".format(
                timeout,
                {
                    name: entry["state"]
                    for name, entry in self.liveness().items()
                },
                {
                    name: {
                        key: reply.get(key)
                        for key in (
                            "quiescent", "outbox", "queued",
                            "retry", "held", "sent", "received",
                        )
                    }
                    for name, reply in replies.items()
                },
            )
        )

    def _record_drain(
        self,
        rounds: int,
        started: float,
        round_seconds: List[float],
        settle_reason: str,
        mode: str,
        time_to_idle: Optional[float] = None,
    ) -> None:
        record = {
            "rounds": rounds,
            "seconds": time.monotonic() - started,
            "round_seconds": [round(value, 6) for value in round_seconds],
            "settle_reason": settle_reason,
            "mode": mode,
        }
        if time_to_idle is not None:
            record["time_to_idle_seconds"] = round(time_to_idle, 6)
        self.last_drain = record
        self.timeline.record_drain(record)
        self._spool({"rec": "drain", "wall": time.time(), "drain": record})

    # ------------------------------------------------------------------
    # Partitions
    # ------------------------------------------------------------------
    def partition(self, a: str, b: str) -> None:
        """Cut the link between two peers (frames queue, nothing is lost)."""
        self._send(a, {"t": "hold", "peer": b})
        self._send(b, {"t": "hold", "peer": a})

    def heal(self, a: str, b: str) -> None:
        """Reconnect two peers; held frames flow on their next flush."""
        self._send(a, {"t": "release", "peer": b})
        self._send(b, {"t": "release", "peer": a})

    # ------------------------------------------------------------------
    # Checkpoint, kill, restart
    # ------------------------------------------------------------------
    def checkpoint_peer(
        self, name: str, path: str, halt: bool = False, timeout: float = 60.0
    ) -> None:
        """Checkpoint peer *name* with the traffic toward it quiesced.

        Every other peer first holds its link toward the victim, and the
        coordinator waits until the victim has consumed everything already
        on the wire (its receive counters catch up with the others' send
        counters) and gone idle — the same "no envelope addressed to the
        victim is in flight" instant the in-process ``checkpoint_peer``
        trivially has.  With ``halt=True`` the victim freezes after writing
        the checkpoint (used by the kill flow, so no work postdates the
        state the reborn process restores); without it the holds are
        released and the federation resumes.
        """
        deadline = time.monotonic() + timeout
        others = [
            other for other in self._handles
            if other != name and self._handles[other].channel is not None
        ]
        for other in others:
            self._send(other, {"t": "hold", "peer": name})
        while True:
            replies = self._status_round(others + [name], deadline)
            victim = replies[name]
            caught_up = all(
                victim["received"].get(other, 0)
                >= replies[other]["sent"].get(name, 0)
                for other in others
            )
            # The victim need not be fully quiescent (parked questions are
            # checkpointable state, as in-process), but nothing addressed to
            # it may be in flight and nothing may be stuck in its own queues.
            if (
                caught_up
                and not victim["outbox"]
                and not victim["queued"]
                and not victim["retry"]
            ):
                break
            if time.monotonic() > deadline:
                raise RuntimeError(
                    "could not quiesce traffic toward {!r} within {}s".format(
                        name, timeout
                    )
                )
            self.poll(0.01)
        self._send(name, {"t": "checkpoint", "path": path, "halt": halt})
        self._await_reply(
            name, "checkpoint-done", deadline,
            matches=lambda body: body.get("path") == path,
        )
        if not halt:
            for other in others:
                self._send(other, {"t": "release", "peer": name})

    def kill_peer(self, name: str, timeout: float = 10.0, force: bool = False) -> None:
        """Terminate a peer process (its unsaved state *is* the crash).

        The default SIGTERM gives the victim's flight recorder a last dump;
        ``force=True`` sends SIGKILL — no dump marker, only what the
        recorder already flushed at its last heartbeat survives.
        """
        handle = self._handles[name]
        self._expect_eof.add(name)
        # A dead peer's last observation is no longer a watermark: its
        # reborn process restarts the activity seq, and a stale view could
        # coincidentally match the fresh one.
        self._watermarks.pop(name, None)
        if handle.channel is not None:
            self._selector.unregister(handle.channel)
            handle.channel.close()
            handle.channel = None
        if handle.process is not None and handle.process.poll() is None:
            if force:
                handle.process.kill()
            else:
                handle.process.terminate()
            try:
                handle.process.wait(timeout=timeout)
            except subprocess.TimeoutExpired:  # pragma: no cover - stuck child
                handle.process.kill()
                handle.process.wait(timeout=timeout)
        self.timeline.mark_dead(name, "killed")
        self.liveness()

    def restart_peer(self, name: str, path: str) -> None:
        """Spawn a fresh process for *name* restoring the checkpoint *path*.

        Mirrors the in-process ``restart_peer`` epilogue: questions whose
        executing service died are dropped everywhere (the re-submitted
        updates re-ask under fresh decision ids), and the holds the kill
        flow placed toward the victim are released so held frames deliver
        to the reborn process.
        """
        if self._handles[name].process is not None:
            if self._handles[name].process.poll() is None:
                raise ProcessFederationError(
                    "peer {!r} is still running; kill_peer first".format(name)
                )
        self._watermarks.pop(name, None)
        self._spawn(name, restore=path)
        self._connect(name)
        # The reborn process starts a fresh heartbeat stream.
        self.timeline.revive(name)
        self.liveness()
        for inbox in self._inboxes.values():
            for key in [key for key in inbox if key[0] == name]:
                del inbox[key]
        for other, handle in self._handles.items():
            if other == name or handle.channel is None:
                continue
            self._send(other, {"t": "drop-questions", "executing": name})
            # Reset before release: a stale TCP connection to the dead
            # process can swallow one sendall without an error, so the link
            # must redial the reborn listener before any frame flushes.
            self._send(other, {"t": "reset-link", "peer": name})
            self._send(other, {"t": "release", "peer": name})

    # ------------------------------------------------------------------
    # Global state
    # ------------------------------------------------------------------
    def global_snapshot(self) -> FrozenDatabase:
        """The union of every peer's committed owned relations."""
        deadline = time.monotonic() + self._startup_timeout
        names = [
            name for name, handle in self._handles.items()
            if handle.channel is not None
        ]
        for name in names:
            self._send(name, {"t": "snapshot"})
        owned: Dict[str, Dict[str, frozenset]] = {}
        for name in names:
            reply = self._await_reply(name, "snapshot-reply", deadline)
            owned[name] = {
                relation: frozenset(decode_tuple(row) for row in rows)
                for relation, rows in reply["relations"].items()
            }
        contents: Dict[str, frozenset] = {}
        for relation in self.schema.relation_names():
            contents[relation] = owned[self.owner_of[relation]][relation]
        return FrozenDatabase(self.schema, contents)

    def metrics(self) -> Dict[str, Dict]:
        """The freshest status-shaped document per peer.

        Served from the telemetry timeline: the merged view of the latest
        unsolicited heartbeat *or* drain-time status reply, whichever came
        last.  Freshness semantics: after ``drain()`` the numbers are at
        least as fresh as the final status round (status replies feed the
        timeline too); between drains they are at most one heartbeat
        interval old; with telemetry off the values are exactly the old
        drain-time ``last_status``.  Keys are bit-compatible with the raw
        status reply; peers that have reported nothing yet are omitted.
        """
        merged: Dict[str, Dict] = {}
        for name, handle in self._handles.items():
            view = self.timeline.latest(name)
            if view is None and handle.last_status is not None:
                view = dict(handle.last_status)
            if view is not None:
                merged[name] = view
        return merged

    def export_traces(self) -> List[str]:
        """Ask every live peer to export its spans; returns the JSONL paths."""
        deadline = time.monotonic() + self._startup_timeout
        paths: List[str] = []
        names = [
            name for name, handle in self._handles.items()
            if handle.channel is not None
        ]
        for name in names:
            path = os.path.join(self.workdir, "trace-{}.jsonl".format(name))
            self._send(name, {"t": "trace-export", "path": path})
        for name in names:
            reply = self._await_reply(name, "trace-exported", deadline)
            paths.append(reply["path"])
        return paths

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------
    def close(self, timeout: float = 10.0) -> None:
        """Stop every peer process: exit request, then escalate; idempotent."""
        if self._closed:
            return
        self._closed = True
        for name, handle in self._handles.items():
            self._expect_eof.add(name)
            if handle.channel is not None:
                try:
                    handle.channel.send_frame(FRAME_CONTROL, dumps({"t": "exit"}))
                except (OSError, ConnectionError):
                    pass
        deadline = time.monotonic() + timeout
        for handle in self._handles.values():
            if handle.process is None:
                continue
            remaining = max(0.1, deadline - time.monotonic())
            try:
                handle.process.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                handle.process.terminate()
                try:
                    handle.process.wait(timeout=2.0)
                except subprocess.TimeoutExpired:  # pragma: no cover
                    handle.process.kill()
                    handle.process.wait()
        for handle in self._handles.values():
            if handle.channel is not None:
                try:
                    self._selector.unregister(handle.channel)
                except KeyError:  # pragma: no cover - already unregistered
                    pass
                handle.channel.close()
                handle.channel = None
        self._selector.close()
        if self._spool_handle is not None:
            try:
                self._spool_handle.close()
            except OSError:  # pragma: no cover - close is best effort
                pass
            self._spool_handle = None
        for address in self._addresses.values():
            if address.kind == "unix":
                try:
                    os.unlink(address.path)
                except OSError:
                    pass
        if self._owns_workdir:
            shutil.rmtree(self.workdir, ignore_errors=True)

    def assert_reaped(self) -> None:
        """Raise unless every child exited and no socket file survives."""
        alive = [
            name for name, handle in self._handles.items()
            if handle.process is not None and handle.process.poll() is None
        ]
        if alive:
            raise AssertionError(
                "peer process(es) still alive after close: {}".format(alive)
            )
        leaked = [
            address.path
            for address in self._addresses.values()
            if address.kind == "unix" and os.path.exists(address.path)
        ]
        if leaked:
            raise AssertionError(
                "socket file(s) leaked after close: {}".format(leaked)
            )

    def __enter__(self) -> "ProcessFederation":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def _encode_trace(context: Optional[SpanContext]) -> Optional[Dict[str, str]]:
    if context is None:
        return None
    return {"ti": context.trace_id, "si": context.span_id}


def _decode_trace(body: Optional[Dict[str, str]]) -> Optional[SpanContext]:
    if body is None:
        return None
    return SpanContext(trace_id=body["ti"], span_id=body["si"])
