"""The federation layer: multi-peer update exchange over a simulated transport.

This package realizes the paper's actual setting — *collaborative* update
exchange between many autonomous peers joined by tgd mappings — on top of the
single-repository service layer.  Each :class:`~repro.federation.peer.Peer`
runs its own :class:`~repro.service.repository.RepositoryService` over the
relations it owns; cross-peer mappings are driven by commit-time exchange
envelopes crossing an in-process
:class:`~repro.federation.transport.Transport` with configurable delay,
reordering and partition/heal controls; frontier questions raised by
forwarded updates route back to the originating peer's inbox.  When every
queue drains (:meth:`~repro.federation.network.FederatedNetwork.quiescent`),
the union of the peers' committed stores is differentially checked against
the single-repository chase over the union of mappings
(:mod:`repro.federation.convergence`).

Layering: ``service`` (one peer's repository) → **federation** (this
package) → ``workload`` (multi-peer scenario generation and drivers).
"""

from .convergence import (
    ConvergenceReport,
    ReferenceRun,
    check_convergence,
    databases_equivalent,
    find_homomorphism,
    reference_chase,
)
from .envelopes import (
    CommitNotice,
    ExchangeFiring,
    ExchangeRetraction,
    QuestionAnswer,
    QuestionCancelled,
    QuestionOpened,
    RemoteUpdate,
)
from .exchange import (
    CrossMapping,
    ExchangeRules,
    FederationError,
    coalesce_envelopes,
    envelopes_for_commit,
)
from .network import (
    FederatedNetwork,
    FederatedQuestion,
    FederatedTicket,
    FederationPumpReport,
)
from .operations import RemoteFiringOperation, RemoteRetractionOperation
from .peer import Peer
from .process_network import (
    ProcessFederation,
    ProcessFederationError,
    ProcessTicket,
)
from .socket_transport import (
    ChannelClosed,
    FrameChannel,
    FrameListener,
    OutgoingLink,
    SocketAddress,
    SocketTransportError,
)
from .transport import Bundle, Envelope, Transport

__all__ = [
    "Bundle",
    "ChannelClosed",
    "CommitNotice",
    "ConvergenceReport",
    "CrossMapping",
    "Envelope",
    "ExchangeFiring",
    "ExchangeRetraction",
    "ExchangeRules",
    "FederatedNetwork",
    "FederatedQuestion",
    "FederatedTicket",
    "FederationError",
    "FederationPumpReport",
    "FrameChannel",
    "FrameListener",
    "OutgoingLink",
    "Peer",
    "ProcessFederation",
    "ProcessFederationError",
    "ProcessTicket",
    "QuestionAnswer",
    "QuestionCancelled",
    "QuestionOpened",
    "ReferenceRun",
    "RemoteFiringOperation",
    "RemoteRetractionOperation",
    "RemoteUpdate",
    "SocketAddress",
    "SocketTransportError",
    "Transport",
    "check_convergence",
    "coalesce_envelopes",
    "databases_equivalent",
    "envelopes_for_commit",
    "find_homomorphism",
    "reference_chase",
]
