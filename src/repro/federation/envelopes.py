"""Exchange envelope payloads: what peers actually say to each other.

Every payload is a small immutable value carried by a transport
:class:`~repro.federation.transport.Envelope`.  The update-bearing payloads
(:class:`RemoteUpdate`, :class:`ExchangeFiring`, :class:`ExchangeRetraction`)
are re-submitted through the destination peer's admission queue on delivery;
the question-routing payloads implement the paper's collaboration loop across
peers — a frontier question raised while chasing a forwarded update travels
back to the peer whose users caused it, and the answer travels forward again.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Tuple as PyTuple, Union

from ..core.frontier import FrontierOperation, FrontierRequest
from ..core.terms import DataTerm, Variable
from ..core.tgd import Tgd
from ..core.tuples import Tuple
from ..core.update import UserOperation
from ..obs.trace import SpanContext
from ..service.tickets import RemoteOrigin, TicketStatus

#: Hashable form of an exported variable assignment.
AssignmentItems = FrozenSet[PyTuple[Variable, DataTerm]]


def freeze_assignment(assignment: Dict[Variable, DataTerm]) -> AssignmentItems:
    """The hashable (frozenset-of-items) form of an assignment."""
    return frozenset(assignment.items())


@dataclass(frozen=True)
class RemoteUpdate:
    """A user operation routed to the peer owning its target relation."""

    operation: UserOperation
    origin: RemoteOrigin
    #: Originating update's trace context (``None`` when tracing is off).
    #: ``compare=False`` keeps equality/hashing — and with them golden
    #: decode comparisons and coalescing dedup — independent of tracing.
    trace: Optional[SpanContext] = field(default=None, compare=False)


@dataclass(frozen=True)
class ExchangeFiring:
    """Forward exchange: a cross-peer mapping's LHS matched at the source."""

    tgd: Tgd
    assignment_items: AssignmentItems
    head_rows: PyTuple[Tuple, ...]
    origin: RemoteOrigin
    #: Originating update's trace context (``None`` when tracing is off).
    #: ``compare=False`` keeps equality/hashing — and with them golden
    #: decode comparisons and coalescing dedup — independent of tracing.
    trace: Optional[SpanContext] = field(default=None, compare=False)

    def assignment(self) -> Dict[Variable, DataTerm]:
        return dict(self.assignment_items)


@dataclass(frozen=True)
class ExchangeRetraction:
    """Backward exchange: a deletion destroyed the last RHS match remotely."""

    tgd: Tgd
    assignment_items: AssignmentItems
    removed_row: Tuple
    origin: RemoteOrigin
    #: Originating update's trace context (``None`` when tracing is off).
    #: ``compare=False`` keeps equality/hashing — and with them golden
    #: decode comparisons and coalescing dedup — independent of tracing.
    trace: Optional[SpanContext] = field(default=None, compare=False)

    def assignment(self) -> Dict[Variable, DataTerm]:
        return dict(self.assignment_items)


@dataclass(frozen=True)
class QuestionOpened:
    """A forwarded update parked on a frontier question; route it home."""

    executing_peer: str
    decision_id: int
    request: FrontierRequest
    origin: RemoteOrigin
    ticket_description: str
    #: Originating update's trace context (``None`` when tracing is off).
    #: ``compare=False`` keeps equality/hashing — and with them golden
    #: decode comparisons and coalescing dedup — independent of tracing.
    trace: Optional[SpanContext] = field(default=None, compare=False)


@dataclass(frozen=True)
class QuestionCancelled:
    """The parked update aborted (and restarted); the question is moot."""

    executing_peer: str
    decision_id: int
    origin: RemoteOrigin
    #: Originating update's trace context (``None`` when tracing is off).
    #: ``compare=False`` keeps equality/hashing — and with them golden
    #: decode comparisons and coalescing dedup — independent of tracing.
    trace: Optional[SpanContext] = field(default=None, compare=False)


@dataclass(frozen=True)
class QuestionAnswer:
    """A client at the originating peer answered a routed question."""

    executing_peer: str
    decision_id: int
    choice: Union[FrontierOperation, int]
    answered_by: str
    #: Originating update's trace context (``None`` when tracing is off).
    #: ``compare=False`` keeps equality/hashing — and with them golden
    #: decode comparisons and coalescing dedup — independent of tracing.
    trace: Optional[SpanContext] = field(default=None, compare=False)


@dataclass(frozen=True)
class CommitNotice:
    """A routed user update reached a terminal state at its executing peer."""

    origin: RemoteOrigin
    status: TicketStatus
    #: Originating update's trace context (``None`` when tracing is off).
    #: ``compare=False`` keeps equality/hashing — and with them golden
    #: decode comparisons and coalescing dedup — independent of tracing.
    trace: Optional[SpanContext] = field(default=None, compare=False)


ExchangePayload = Union[
    RemoteUpdate,
    ExchangeFiring,
    ExchangeRetraction,
    QuestionOpened,
    QuestionCancelled,
    QuestionAnswer,
    CommitNotice,
]
