"""Partitioning the union mapping set across peers, and commit-time exchange.

The paper's setting is many autonomous peers joined by tgd mappings.  Here a
*federation schema* assigns every relation to exactly one owning peer; a
mapping is **local** when both of its sides are owned by the same peer (that
peer's repository chases it natively) and **cross-peer** when its LHS
relations are owned by one peer and its RHS relations by another.  A mapping
whose single side straddles two owners is rejected — it has no home to
evaluate the side's join, which is exactly the restriction the paper's
peer-to-peer mappings obey.

Cross-peer propagation happens at commit time.  The owning scheduler reports
each committed update's write set (see
:meth:`~repro.concurrency.optimistic.OptimisticScheduler.add_commit_listener`);
:func:`envelopes_for_commit` turns it into exchange payloads:

* an inserted row seeds the cross mapping's violation query over the source
  peer's committed snapshot (the RHS relations are empty there, so the query
  returns exactly the new LHS matches), and each new exported assignment
  becomes an :class:`~repro.federation.envelopes.ExchangeFiring` carrying the
  instantiated head rows — existentials materialized as peer-fresh nulls;
* a deleted row at the RHS-owning peer is matched against the mapping's RHS
  over the pre-delete state; exported assignments that thereby lost their
  *last* RHS match become
  :class:`~repro.federation.envelopes.ExchangeRetraction` payloads for the
  LHS owner.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Set, Tuple as PyTuple

from ..core.terms import NullFactory, Variable
from ..core.tgd import Tgd
from ..core.writes import WriteKind
from ..query.compiled import get_plan
from ..query.violation_query import violation_queries_for_write_row
from ..service.tickets import RemoteOrigin
from ..storage.interface import DatabaseView
from ..storage.overlay import OverlayView
from ..storage.versioned import VersionedWrite
from .envelopes import (
    CommitNotice,
    ExchangeFiring,
    ExchangeRetraction,
    freeze_assignment,
)


class FederationError(ValueError):
    """Raised for unroutable mappings or inconsistent ownership declarations."""


@dataclass(frozen=True)
class CrossMapping:
    """A tgd whose LHS lives on one peer and whose RHS lives on another."""

    tgd: Tgd
    source: str
    target: str


class ExchangeRules:
    """The routed view of a union mapping set under a relation-ownership map."""

    def __init__(self, mappings: Sequence[Tgd], owner_of: Dict[str, str]):
        self.owner_of = dict(owner_of)
        self.local: Dict[str, List[Tgd]] = {}
        self.cross: List[CrossMapping] = []
        self._outgoing: Dict[str, Dict[str, List[CrossMapping]]] = {}
        self._incoming: Dict[str, Dict[str, List[CrossMapping]]] = {}
        for tgd in mappings:
            source = self._single_owner(tgd, tgd.lhs_relations(), "LHS")
            target = self._single_owner(tgd, tgd.rhs_relations(), "RHS")
            if source == target:
                self.local.setdefault(source, []).append(tgd)
                continue
            cross = CrossMapping(tgd=tgd, source=source, target=target)
            self.cross.append(cross)
            outgoing = self._outgoing.setdefault(source, {})
            for relation in tgd.lhs_relations():
                outgoing.setdefault(relation, []).append(cross)
            incoming = self._incoming.setdefault(target, {})
            for relation in tgd.rhs_relations():
                incoming.setdefault(relation, []).append(cross)

    def _single_owner(
        self, tgd: Tgd, relations: FrozenSet[str], side: str
    ) -> str:
        owners = set()
        for relation in relations:
            owner = self.owner_of.get(relation)
            if owner is None:
                raise FederationError(
                    "mapping {} mentions relation {!r} that no peer owns".format(
                        tgd.name, relation
                    )
                )
            owners.add(owner)
        if len(owners) != 1:
            raise FederationError(
                "mapping {} has its {} spread over peers {} — each mapping "
                "side must be owned by a single peer to be routable".format(
                    tgd.name, side, sorted(owners)
                )
            )
        return owners.pop()

    def local_mappings(self, peer: str) -> List[Tgd]:
        """The mappings peer *peer* chases natively."""
        return list(self.local.get(peer, ()))

    def exchange_relations(self, peer: str) -> FrozenSet[str]:
        """Relations of *peer* whose writes can produce exchange envelopes.

        The union of the peer's outgoing (LHS) and incoming (RHS) cross-
        mapping relations.  A committed write set touching none of them can
        be skipped by the commit-time exchange without evaluating anything —
        the common case for purely local cascades.
        """
        relations = set(self._outgoing.get(peer, ()))
        relations.update(self._incoming.get(peer, ()))
        return frozenset(relations)

    def outgoing(self, peer: str, relation: str) -> Sequence[CrossMapping]:
        """Cross mappings fired by writes of *peer* into *relation* (LHS side)."""
        return self._outgoing.get(peer, {}).get(relation, ())

    def incoming(self, peer: str, relation: str) -> Sequence[CrossMapping]:
        """Cross mappings retracted by deletes of *peer* from *relation* (RHS side)."""
        return self._incoming.get(peer, {}).get(relation, ())

    def union(self) -> List[Tgd]:
        """Every mapping, local and cross (the single-repository reference set)."""
        result: List[Tgd] = []
        for tgds in self.local.values():
            result.extend(tgds)
        result.extend(cross.tgd for cross in self.cross)
        return result


def _instantiate_head(
    tgd: Tgd, exported: Dict[Variable, object], null_factory: NullFactory
) -> PyTuple:
    """The RHS atoms under *exported*, existentials as fresh labeled nulls."""
    plan = get_plan(tgd)
    full = dict(exported)
    for variable in plan.sorted_existentials:
        full[variable] = null_factory.fresh()
    return tuple(atom.instantiate(full) for atom in tgd.rhs)


def envelopes_for_commit(
    rules: ExchangeRules,
    peer: str,
    writes: Sequence[VersionedWrite],
    view: DatabaseView,
    null_factory: NullFactory,
    origin: RemoteOrigin,
) -> List[PyTuple[str, object]]:
    """The ``(destination, payload)`` pairs one committed update produces.

    *view* must be the committed snapshot the update's own chase saw (the
    commit listener provides exactly that); *origin* identifies the federated
    update that ultimately caused this commit, so questions raised while
    chasing the resulting envelopes route all the way back.
    """
    payloads: List[PyTuple[str, object]] = []
    fired: Set[PyTuple[Tgd, frozenset]] = set()
    retracted: Set[PyTuple[Tgd, frozenset]] = set()
    for logged in writes:
        write = logged.write
        added = write.added_row()
        if added is not None:
            for cross in rules.outgoing(peer, added.relation):
                plan = get_plan(cross.tgd)
                for query in violation_queries_for_write_row(
                    cross.tgd, added, removed=False
                ):
                    for row in query.evaluate(view):
                        exported = plan.exported(row.assignment())
                        key = (cross.tgd, freeze_assignment(exported))
                        if key in fired:
                            continue
                        fired.add(key)
                        payloads.append(
                            (
                                cross.target,
                                ExchangeFiring(
                                    tgd=cross.tgd,
                                    assignment_items=key[1],
                                    head_rows=_instantiate_head(
                                        cross.tgd, exported, null_factory
                                    ),
                                    origin=origin,
                                ),
                            )
                        )
        if write.kind is not WriteKind.DELETE:
            continue
        removed = write.removed_row()
        if removed is None:
            continue
        for cross in rules.incoming(peer, removed.relation):
            plan = get_plan(cross.tgd)
            restored = OverlayView(view, added={removed})
            for atom in plan.rhs_atoms_by_relation.get(removed.relation, ()):
                bound = atom.match(removed)
                if bound is None:
                    continue
                for assignment, witness in plan.rhs.find_matches(restored, bound):
                    if removed not in witness:
                        continue
                    exported = {
                        variable: value
                        for variable, value in assignment.items()
                        if variable in plan.frontier_variables
                    }
                    if plan.rhs.exists_match(view, exported):
                        continue  # another RHS match survives the delete
                    key = (cross.tgd, freeze_assignment(exported))
                    if key in retracted:
                        continue
                    retracted.add(key)
                    payloads.append(
                        (
                            cross.source,
                            ExchangeRetraction(
                                tgd=cross.tgd,
                                assignment_items=key[1],
                                removed_row=removed,
                                origin=origin,
                            ),
                        )
                    )
    return payloads


def coalesce_envelopes(
    staged: Sequence[PyTuple[str, object]],
) -> List[PyTuple[str, object]]:
    """Coalesce one commit batch's staged ``(destination, payload)`` pairs.

    Three in-order rewrites, each preserving the destination's observable
    outcome (delivery is per-link FIFO, and a batch is flushed as one bundle,
    so "deliver the coalesced sequence" ≡ "deliver the original sequence"):

    * **Dedup absorbed firings.**  A second firing of the same
      ``(tgd, exported assignment)`` to the same destination would be
      absorbed on arrival (its RHS match already exists) — drop it.  Its
      head rows may carry differently-named fresh nulls, but chase results
      are identities only up to null renaming, so keeping the first is
      enough.
    * **Cancel firing→retraction pairs.**  A firing followed (within the
      batch) by a retraction of the same key nets to nothing remotely: the
      firing's head rows would be inserted and then retracted before anything
      else could observe them.  Both drop; a *later* firing of the key is
      re-emitted fresh.  Under the current routing this rule is *defensive*:
      a tgd's firings go to its RHS owner and its retractions to its LHS
      owner, and :class:`ExchangeRules` guarantees those differ, so no peer
      can stage both sides of a key today — the rule keeps the rewrite sound
      for any future payload source that can.
    * **Merge commit notices.**  Several notices for the same origin collapse
      to the last (terminal states do not regress; duplicates simply
      re-deliver knowledge the origin already has).

    Question-routing payloads and remote updates pass through untouched —
    their per-message identity matters (answers and cancellations reference
    individual decisions).
    """
    kept: List[Optional[PyTuple[str, object]]] = []
    live_firing: Dict[PyTuple[str, Tgd, frozenset], int] = {}
    seen_retraction: Set[PyTuple[str, Tgd, frozenset]] = set()
    notice_at: Dict[PyTuple[str, RemoteOrigin], int] = {}
    for destination, payload in staged:
        if isinstance(payload, ExchangeFiring):
            key = (destination, payload.tgd, payload.assignment_items)
            if key in live_firing:
                continue  # duplicate: would be absorbed on arrival
            live_firing[key] = len(kept)
            kept.append((destination, payload))
        elif isinstance(payload, ExchangeRetraction):
            key = (destination, payload.tgd, payload.assignment_items)
            index = live_firing.pop(key, None)
            if index is not None:
                kept[index] = None  # the pair cancels
                continue
            if key in seen_retraction:
                continue
            seen_retraction.add(key)
            kept.append((destination, payload))
        elif isinstance(payload, CommitNotice):
            key = (destination, payload.origin)
            previous = notice_at.get(key)
            if previous is not None:
                kept[previous] = None  # merged into this (later) notice
            notice_at[key] = len(kept)
            kept.append((destination, payload))
        else:
            kept.append((destination, payload))
    return [entry for entry in kept if entry is not None]
