"""Admission control: bounding the number of concurrently running updates.

The optimistic scheduler aborts more the more updates run at once (its abort
rate grows with the number of in-flight read logs a write can invalidate), so
the service does not hand every submission to the scheduler immediately.
Submissions wait in a FIFO :class:`AdmissionQueue` and are admitted in batches
of :attr:`AdmissionConfig.batch_size`, keeping at most
:attr:`AdmissionConfig.max_in_flight` updates executing concurrently.

With :attr:`AdmissionConfig.compatible_groups` the controller admits
*compatible groups*: each batch is the longest FIFO prefix of waiting tickets
whose operations seed pairwise-disjoint relations (the chase can still
cascade anywhere, but updates starting on the same relation are the ones most
likely to invalidate each other's reads immediately).  FIFO order is
preserved — an incompatible ticket ends the batch, it is never overtaken —
and operations whose write set is unknowable up front are admitted in a group
of their own.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, FrozenSet, List, Optional, Set

from .tickets import UpdateTicket


class AdmissionError(RuntimeError):
    """Raised when a submission cannot be accepted (queue overflow)."""


@dataclass(frozen=True)
class AdmissionConfig:
    """Tunables of the admission controller."""

    #: Maximum number of updates executing in the scheduler at once
    #: (running or parked; parked updates still hold read logs).
    max_in_flight: int = 8
    #: Maximum number of admissions per service pump.
    batch_size: int = 4
    #: Maximum admission-queue depth; ``None`` means unbounded.
    max_queue_depth: Optional[int] = None
    #: Admit compatible groups: stop each admission batch at the first queued
    #: ticket whose target relations overlap one already taken this batch.
    compatible_groups: bool = False

    def __post_init__(self) -> None:
        if self.max_in_flight < 1:
            raise ValueError("max_in_flight must be at least 1")
        if self.batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        if self.max_queue_depth is not None and self.max_queue_depth < 0:
            raise ValueError("max_queue_depth cannot be negative")


class AdmissionQueue:
    """FIFO queue of tickets awaiting admission to the scheduler."""

    def __init__(self, config: Optional[AdmissionConfig] = None):
        self.config = config if config is not None else AdmissionConfig()
        self._queue: Deque[UpdateTicket] = deque()

    @property
    def depth(self) -> int:
        """Number of tickets waiting for admission."""
        return len(self._queue)

    def enqueue(self, ticket: UpdateTicket) -> None:
        """Append *ticket*; raises :class:`AdmissionError` on overflow."""
        limit = self.config.max_queue_depth
        if limit is not None and len(self._queue) >= limit:
            raise AdmissionError(
                "admission queue is full ({} waiting)".format(len(self._queue))
            )
        self._queue.append(ticket)

    def take(self, in_flight: int) -> List[UpdateTicket]:
        """Tickets to admit now, given *in_flight* updates already executing.

        Takes at most ``batch_size`` tickets and never lets the total exceed
        ``max_in_flight``; with ``compatible_groups`` the batch additionally
        stops at the first ticket incompatible with the group taken so far.
        """
        slots = min(
            self.config.batch_size, self.config.max_in_flight - in_flight
        )
        admitted: List[UpdateTicket] = []
        if not self.config.compatible_groups:
            while slots > 0 and self._queue:
                admitted.append(self._queue.popleft())
                slots -= 1
            return admitted
        taken: Set[str] = set()
        while slots > 0 and self._queue:
            relations: Optional[FrozenSet[str]] = self._queue[0].operation.target_relations()
            if admitted and (relations is None or relations & taken):
                break
            admitted.append(self._queue.popleft())
            slots -= 1
            if relations is None:
                break  # unknowable write set: a group of its own
            taken |= relations
        return admitted

    def peek_all(self) -> List[UpdateTicket]:
        """The queued tickets, oldest first (for inspection)."""
        return list(self._queue)
