"""The update-exchange service layer: Youtopia as a long-running system.

This package turns the batch-oriented optimistic scheduler into the
collaborative service the paper describes (and the ROADMAP's production
north star requires): client sessions submit updates through an
admission-controlled queue, nondeterministic repairs park their updates in an
asynchronous frontier inbox until some client answers, and snapshot reads are
served from the committed watermark of the multiversion store without ever
blocking writers.

Layering: ``core`` (chase, oracles) → ``storage`` (multiversion store) →
``concurrency`` (optimistic scheduler) → **service** (this package) →
``workload`` (closed-loop drivers, experiments).
"""

from .admission import AdmissionConfig, AdmissionError, AdmissionQueue
from .inbox import FrontierInbox, InboxQuestion
from .metrics import ServiceMetrics, percentile
from .repository import PumpReport, RepositoryService, ServiceError
from .session import ClientSession, SessionError
from .tickets import RemoteOrigin, TicketStatus, UpdateTicket

__all__ = [
    "RemoteOrigin",
    "AdmissionConfig",
    "AdmissionError",
    "AdmissionQueue",
    "ClientSession",
    "FrontierInbox",
    "InboxQuestion",
    "PumpReport",
    "RepositoryService",
    "ServiceError",
    "ServiceMetrics",
    "SessionError",
    "TicketStatus",
    "UpdateTicket",
    "percentile",
]
