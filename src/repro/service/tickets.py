"""Update tickets: the service-side lifecycle of one submitted operation.

A ticket is created the moment a client submits a :class:`~repro.core.update.UserOperation`
and survives admission, execution, abort-restarts (the scheduler assigns a new
priority; the ticket keeps its identity), parking on frontier questions, and
finally commit.  Tickets are what clients poll and what the service metrics
aggregate over.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from ..core.update import UserOperation


class TicketStatus(enum.Enum):
    """Where a submitted update currently is in the service pipeline."""

    #: In the admission queue, not yet handed to the scheduler.
    QUEUED = "queued"
    #: Admitted: the scheduler is interleaving its chase steps.
    RUNNING = "running"
    #: Parked on an unanswered frontier question in the inbox.
    WAITING_FRONTIER = "waiting-frontier"
    #: Terminated and durable: no lower-priority update can abort it anymore.
    COMMITTED = "committed"
    #: Stopped by a budget without completing (kept for post-mortems).
    FAILED = "failed"


@dataclass(frozen=True)
class RemoteOrigin:
    """Where a federated update ultimately came from.

    The federation layer submits exchange envelopes through a destination
    peer's admission queue like any client would; the resulting ticket carries
    the *originating* peer and that peer's federated ticket id, so frontier
    questions raised while chasing the forwarded update can be routed back to
    the humans who caused it.
    """

    peer: str
    ticket_id: int

    def describe(self) -> str:
        return "{}#{}".format(self.peer, self.ticket_id)


@dataclass
class UpdateTicket:
    """One submitted operation, tracked across restarts and frontier waits."""

    ticket_id: int
    session_id: int
    operation: UserOperation
    status: TicketStatus = TicketStatus.QUEUED
    #: Federation provenance (``None`` for ordinary local submissions).
    origin: Optional[RemoteOrigin] = None
    #: Current scheduler priority (changes on abort-restart; ``None`` while queued).
    priority: Optional[int] = None
    #: Number of executions started for this ticket (1 + restarts).
    attempts: int = 0
    #: Frontier decision id the ticket is parked on (``None`` unless parked).
    decision_id: Optional[int] = None
    #: Times the ticket parked on a frontier question.
    parks: int = 0
    #: Clock readings (service clock; ``None`` until the event happened).
    submitted_at: float = 0.0
    admitted_at: Optional[float] = None
    committed_at: Optional[float] = None
    parked_at: Optional[float] = None
    #: Total time spent parked, accumulated over every park/resume cycle.
    frontier_wait_seconds: float = 0.0
    #: Root tracing span for this ticket's lifecycle (``None`` when tracing
    #: is off); an :class:`~repro.obs.trace.Span`, typed loosely so the
    #: service layer stays importable without the tracer.
    trace_span: Optional[object] = field(default=None, repr=False)
    #: The currently open queue/park wait span, if any.
    wait_span: Optional[object] = field(default=None, repr=False)

    @property
    def trace_context(self):
        """The ticket's portable trace context (``None`` when untraced)."""
        if self.trace_span is None:
            return None
        return self.trace_span.context

    @property
    def is_done(self) -> bool:
        """``True`` once the ticket reached a terminal status."""
        return self.status in (TicketStatus.COMMITTED, TicketStatus.FAILED)

    @property
    def is_parked(self) -> bool:
        """``True`` while the ticket waits on a frontier answer."""
        return self.status is TicketStatus.WAITING_FRONTIER

    def queue_wait_seconds(self) -> Optional[float]:
        """Time from submission to admission (``None`` while still queued)."""
        if self.admitted_at is None:
            return None
        return self.admitted_at - self.submitted_at

    def turnaround_seconds(self) -> Optional[float]:
        """Time from submission to commit (``None`` until committed)."""
        if self.committed_at is None:
            return None
        return self.committed_at - self.submitted_at

    def describe(self) -> str:
        """One-line description for logs and the CLI."""
        suffix = ""
        if self.origin is not None:
            suffix = " (from {})".format(self.origin.describe())
        return "ticket #{} [{}] session {}: {}{}".format(
            self.ticket_id,
            self.status.value,
            self.session_id,
            self.operation.describe(),
            suffix,
        )
