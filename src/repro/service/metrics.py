"""Service-level metrics: throughput, abort rate, frontier-wait percentiles.

The scheduler's :class:`~repro.concurrency.aborts.RunStatistics` counts chase
work; this module layers the serving view on top: committed updates per
second, queue and frontier wait distributions, and per-session attribution.
``snapshot()`` merges both so one dictionary feeds dashboards, benchmarks and
the CLI.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence

from ..concurrency.aborts import RunStatistics

#: Number of most-recent latency samples kept per distribution.  Bounding the
#: windows keeps a long-running service's memory flat and each snapshot's
#: percentile sort O(window log window) instead of O(lifetime).
WAIT_SAMPLE_WINDOW = 4096


def percentile(values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile (0.0 for an empty sequence)."""
    ordered = sorted(values)
    if not ordered:
        return 0.0
    if fraction <= 0:
        return ordered[0]
    if fraction >= 1:
        return ordered[-1]
    rank = max(0, min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1)))))
    return ordered[rank]


@dataclass
class ServiceMetrics:
    """Live aggregator of everything the service observes."""

    started_at: float
    submitted: int = 0
    admitted: int = 0
    committed: int = 0
    failed: int = 0
    parks: int = 0
    resumes: int = 0
    restarts: int = 0
    #: Wall-clock frontier waits of recently resumed parks, in seconds.
    frontier_waits: Deque[float] = field(
        default_factory=lambda: deque(maxlen=WAIT_SAMPLE_WINDOW)
    )
    #: Submission-to-admission waits of recently admitted tickets, in seconds.
    queue_waits: Deque[float] = field(
        default_factory=lambda: deque(maxlen=WAIT_SAMPLE_WINDOW)
    )
    #: Submission-to-commit turnaround of recently committed tickets, in seconds.
    turnarounds: Deque[float] = field(
        default_factory=lambda: deque(maxlen=WAIT_SAMPLE_WINDOW)
    )

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_submit(self) -> None:
        self.submitted += 1

    def record_admit(self, queue_wait: float) -> None:
        self.admitted += 1
        self.queue_waits.append(queue_wait)

    def record_park(self) -> None:
        self.parks += 1

    def record_resume(self, wait_seconds: float) -> None:
        self.resumes += 1
        self.frontier_waits.append(wait_seconds)

    def record_restart(self) -> None:
        self.restarts += 1

    def record_commit(self, turnaround: float) -> None:
        self.committed += 1
        self.turnarounds.append(turnaround)

    def record_failure(self) -> None:
        self.failed += 1

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    def throughput(self, now: float) -> float:
        """Committed updates per wall-clock second since the service started."""
        elapsed = now - self.started_at
        if elapsed <= 0:
            return 0.0
        return self.committed / elapsed

    def abort_rate(self, statistics: RunStatistics) -> float:
        """Aborts per update execution (restarts included in the denominator)."""
        executed = max(1, statistics.updates_executed)
        return statistics.aborts / executed

    def frontier_wait_p50(self) -> float:
        """Median frontier wait, seconds (0.0 when nothing parked yet)."""
        return percentile(self.frontier_waits, 0.5)

    def frontier_wait_p95(self) -> float:
        """95th-percentile frontier wait, seconds."""
        return percentile(self.frontier_waits, 0.95)

    def snapshot(
        self, statistics: RunStatistics, now: float, store: Optional[object] = None
    ) -> Dict[str, float]:
        """One flat dictionary merging service and scheduler counters.

        When *store* (a :class:`~repro.storage.versioned.VersionedDatabase`)
        is supplied, its live size gauges are included — the write-log length
        and version count bound the per-step work of rollback, conflict
        checking and compaction, so operators watching a long-running service
        want them on the same dashboard as throughput and abort rate.
        """
        data = {
            "submitted": self.submitted,
            "admitted": self.admitted,
            "committed": self.committed,
            "failed": self.failed,
            "parks": self.parks,
            "resumes": self.resumes,
            "restarts": self.restarts,
            "elapsed_seconds": now - self.started_at,
            "throughput_per_second": self.throughput(now),
            "abort_rate": self.abort_rate(statistics),
            "frontier_wait_p50_seconds": self.frontier_wait_p50(),
            "frontier_wait_p95_seconds": self.frontier_wait_p95(),
            "queue_wait_p50_seconds": percentile(self.queue_waits, 0.5),
            "queue_wait_p95_seconds": percentile(self.queue_waits, 0.95),
            "turnaround_p50_seconds": percentile(self.turnarounds, 0.5),
            "turnaround_p95_seconds": percentile(self.turnarounds, 0.95),
        }
        if store is not None:
            data["store_log_entries"] = store.log_size()
            data["store_versions"] = store.version_count()
            data["store_tuples"] = store.tuple_count()
            data["store_index_entries"] = store.index_entry_count()
            data["store_compactions"] = store.compactions
        for key, value in statistics.as_dict().items():
            data["scheduler_" + key] = value
        return data
