"""Service-level metrics: throughput, abort rate, frontier-wait percentiles.

The scheduler's :class:`~repro.concurrency.aborts.RunStatistics` counts chase
work; this module layers the serving view on top: committed updates per
second, queue and frontier wait distributions, and per-session attribution.
``snapshot()`` merges both so one dictionary feeds dashboards, benchmarks and
the CLI.

Since the observability layer landed, :class:`ServiceMetrics` is backed by a
:class:`~repro.obs.metrics.MetricsRegistry` — counters, wait histograms and
derived gauges are registry instruments, and ``snapshot()`` is just
``registry.collect()`` plus the scheduler/store producers.  Every key the
pre-registry snapshot exposed is preserved bit-compatibly, and the counter
attributes (``metrics.parks`` etc.) remain readable as plain ints.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..concurrency.aborts import RunStatistics
from ..obs.metrics import MetricsRegistry
from ..obs.stats import mean, percentile  # noqa: F401  (re-exported for compatibility)

#: Number of most-recent latency samples kept per distribution.  Bounding the
#: windows keeps a long-running service's memory flat and each snapshot's
#: percentile sort O(window log window) instead of O(lifetime).
WAIT_SAMPLE_WINDOW = 4096


class ServiceMetrics:
    """Live aggregator of everything the service observes.

    A thin facade over a :class:`~repro.obs.metrics.MetricsRegistry`: the
    seven lifecycle counters, three bounded wait histograms and the derived
    gauges (elapsed, throughput, abort rate) are registry instruments
    registered in snapshot-key order, so ``registry.collect()`` reproduces
    the historical snapshot layout exactly.
    """

    def __init__(self, started_at: float, registry: Optional[MetricsRegistry] = None):
        self.started_at = started_at
        self.registry = registry if registry is not None else MetricsRegistry()
        reg = self.registry
        self._submitted = reg.counter("submitted")
        self._admitted = reg.counter("admitted")
        self._committed = reg.counter("committed")
        self._failed = reg.counter("failed")
        self._parks = reg.counter("parks")
        self._resumes = reg.counter("resumes")
        self._restarts = reg.counter("restarts")
        self._elapsed = reg.gauge("elapsed_seconds")
        self._throughput = reg.gauge("throughput_per_second")
        self._abort_rate = reg.gauge("abort_rate")
        self.frontier_waits = reg.histogram("frontier_wait", window=WAIT_SAMPLE_WINDOW)
        self.queue_waits = reg.histogram("queue_wait", window=WAIT_SAMPLE_WINDOW)
        self.turnarounds = reg.histogram("turnaround", window=WAIT_SAMPLE_WINDOW)

    # ------------------------------------------------------------------
    # Compatibility attributes (tests and callers read these as ints)
    # ------------------------------------------------------------------
    @property
    def submitted(self) -> int:
        return self._submitted.value

    @property
    def admitted(self) -> int:
        return self._admitted.value

    @property
    def committed(self) -> int:
        return self._committed.value

    @property
    def failed(self) -> int:
        return self._failed.value

    @property
    def parks(self) -> int:
        return self._parks.value

    @property
    def resumes(self) -> int:
        return self._resumes.value

    @property
    def restarts(self) -> int:
        return self._restarts.value

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_submit(self) -> None:
        self._submitted.inc()

    def record_admit(self, queue_wait: float) -> None:
        self._admitted.inc()
        self.queue_waits.observe(queue_wait)

    def record_park(self) -> None:
        self._parks.inc()

    def record_resume(self, wait_seconds: float) -> None:
        self._resumes.inc()
        self.frontier_waits.observe(wait_seconds)

    def record_restart(self) -> None:
        self._restarts.inc()

    def record_commit(self, turnaround: float) -> None:
        self._committed.inc()
        self.turnarounds.observe(turnaround)

    def record_failure(self) -> None:
        self._failed.inc()

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    def throughput(self, now: float) -> float:
        """Committed updates per wall-clock second since the service started."""
        elapsed = now - self.started_at
        if elapsed <= 0:
            return 0.0
        return self.committed / elapsed

    def abort_rate(self, statistics: RunStatistics) -> float:
        """Aborts per update execution (restarts included in the denominator)."""
        executed = max(1, statistics.updates_executed)
        return statistics.aborts / executed

    def frontier_wait_p50(self) -> float:
        """Median frontier wait, seconds (0.0 when nothing parked yet)."""
        return self.frontier_waits.percentile(0.5)

    def frontier_wait_p95(self) -> float:
        """95th-percentile frontier wait, seconds."""
        return self.frontier_waits.percentile(0.95)

    def snapshot(
        self, statistics: RunStatistics, now: float, store: Optional[object] = None
    ) -> Dict[str, float]:
        """One flat dictionary merging service and scheduler counters.

        When *store* (a :class:`~repro.storage.versioned.VersionedDatabase`)
        is supplied, its live size gauges are included — the write-log length
        and version count bound the per-step work of rollback, conflict
        checking and compaction, so operators watching a long-running service
        want them on the same dashboard as throughput and abort rate.

        The registry may already hold store/scheduler producers (registered
        by :class:`~repro.service.repository.RepositoryService`); the guards
        below keep the direct arguments from double-producing those keys.
        """
        self._elapsed.set(now - self.started_at)
        self._throughput.set(self.throughput(now))
        self._abort_rate.set(self.abort_rate(statistics))
        data = self.registry.collect()
        if store is not None and "store_log_entries" not in data:
            data.update(store_metrics(store))
        if "scheduler_algorithm" not in data:
            for key, value in statistics.as_dict().items():
                data["scheduler_" + key] = value
        return data


def store_metrics(store: object) -> Dict[str, float]:
    """The versioned store's size gauges, snapshot-key named."""
    return {
        "store_log_entries": store.log_size(),
        "store_versions": store.version_count(),
        "store_tuples": store.tuple_count(),
        "store_index_entries": store.index_entry_count(),
        "store_compactions": store.compactions,
    }
