"""The update-exchange service: sessions, admission, inbox, snapshot reads.

This is the long-running serving layer over the optimistic scheduler
(Algorithm 4).  Where the batch drivers submit a pre-assembled workload and
simulate humans with a synchronous oracle, the :class:`RepositoryService`
models the collaborative system the paper describes: clients open sessions,
submit updates at their own pace, and answer frontier questions at human
timescales while the scheduler keeps interleaving everyone else's chase steps.

The service is cooperatively scheduled and single-threaded, like the rest of
this reproduction: callers drive it by calling :meth:`RepositoryService.pump`,
which admits queued submissions (subject to admission control), lets the
scheduler take chase steps until every in-flight update is terminated or
parked, and reconciles ticket states.  Nothing ever busy-waits: a parked
update consumes no steps until a client answers its question.

Reads are served from the multiversion store without blocking writers:
:meth:`RepositoryService.read` snapshots the committed watermark (every
priority at or below it is committed, aborted writes are rolled back), so
clients never observe in-flight chase work.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Union

from ..concurrency.aborts import RunStatistics
from ..concurrency.dependencies import DependencyTracker, make_tracker
from ..concurrency.optimistic import OptimisticScheduler, SchedulerStalled
from ..concurrency.policies import SchedulingPolicy
from ..core.frontier import FrontierOperation
from ..core.oracle import DeferredOracle
from ..core.terms import NullFactory
from ..core.tgd import Tgd
from ..core.tuples import Tuple
from ..core.update import UpdateStatus, UserOperation
from ..obs.trace import SpanContext, default_tracer
from ..storage.interface import DatabaseView
from ..storage.memory import FrozenDatabase
from ..storage.versioned import VersionedDatabase
from .admission import AdmissionConfig, AdmissionQueue
from .inbox import FrontierInbox, InboxQuestion
from .metrics import ServiceMetrics, store_metrics
from .session import ClientSession, SessionError
from .tickets import RemoteOrigin, TicketStatus, UpdateTicket


class ServiceError(RuntimeError):
    """Raised for invalid service requests (unknown tickets, bad answers...)."""


@dataclass
class PumpReport:
    """What one service pump did (returned by :meth:`RepositoryService.pump`)."""

    #: Tickets admitted from the queue into the scheduler.
    admitted: List[UpdateTicket] = field(default_factory=list)
    #: Chase steps the scheduler took.
    steps: int = 0
    #: Tickets that reached ``COMMITTED`` during this pump.
    committed: List[UpdateTicket] = field(default_factory=list)
    #: Questions that entered the inbox during this pump.
    parked: List[InboxQuestion] = field(default_factory=list)


@dataclass
class RestoredService:
    """What :meth:`RepositoryService.restore` hands back."""

    #: The freshly built service, seeded with the checkpoint's committed state.
    service: "RepositoryService"
    #: Old ticket id (at checkpoint time) → the re-submitted ticket.
    resubmitted: Dict[int, "UpdateTicket"] = field(default_factory=dict)
    #: The opaque extra dict the checkpointing caller stored.
    extra: Dict = field(default_factory=dict)


class RepositoryService:
    """A multi-client update-exchange service over one Youtopia repository."""

    def __init__(
        self,
        initial: DatabaseView,
        mappings: Sequence[Tgd],
        tracker: Union[DependencyTracker, str] = "PRECISE",
        policy: Optional[SchedulingPolicy] = None,
        admission: Optional[AdmissionConfig] = None,
        max_total_steps: int = 1_000_000,
        clock: Callable[[], float] = time.perf_counter,
        null_factory: Optional[NullFactory] = None,
        group_commit: bool = True,
        durable_dir: Optional[str] = None,
        first_decision_id: int = 1,
        tracer=None,
        trace_peer: str = "",
        sql_chase: Optional[object] = None,
    ):
        if isinstance(tracker, str):
            tracker = make_tracker(tracker)
        self._clock = clock
        self._tracer = tracer if tracer is not None else default_tracer()
        self._trace_peer = trace_peer
        store = VersionedDatabase(initial.schema)
        store.load_initial(initial)
        if durable_dir is not None:
            # Durable mode: mirror the write log to codec-encoded segment
            # files so "snapshot below the watermark + surviving segments"
            # always reproduces this repository (see repro.storage.durable).
            from ..storage.durable import WriteLogSegments

            store.attach_segments(WriteLogSegments(durable_dir))
        self._oracle = DeferredOracle(start=first_decision_id)
        if null_factory is None:
            null_factory = NullFactory.avoiding_view(initial, prefix="s")
        self._null_factory = null_factory
        self._scheduler = OptimisticScheduler(
            store=store,
            mappings=mappings,
            tracker=tracker,
            oracle=self._oracle,
            policy=policy,
            null_factory=null_factory,
            max_total_steps=max_total_steps,
            prune_committed=True,
            group_commit=group_commit,
            tracer=self._tracer,
            trace_peer=trace_peer,
            sql_chase=sql_chase,
        )
        self._scheduler.add_restart_listener(self._on_restart)
        self._queue = AdmissionQueue(admission)
        self._inbox = FrontierInbox(self._oracle)
        self.metrics = ServiceMetrics(started_at=self._clock())
        # The store and scheduler publish into the service registry as
        # producers, so one ``collect()`` yields the whole historical
        # snapshot (``snapshot()`` skips its direct arguments when these
        # keys are already produced).
        self.metrics.registry.register_producer(
            lambda: store_metrics(self._scheduler.store)
        )
        self.metrics.registry.register_producer(
            lambda: self._scheduler.refresh_statistics().as_dict(),
            prefix="scheduler_",
        )
        # The SQL-chase evaluator's counters ride the same collect().  The
        # one that matters operationally is ``python_fallbacks``: violation
        # sweeps whose parameter count exceeded the SQLite host-parameter
        # budget and silently fell back to the Python evaluator.  Keys are
        # emitted (as zeros) even with SQL chase off so the snapshot key set
        # is identical either way — the pinned-key tests and the federation
        # bit-identical-metrics differentials rely on that.
        self.metrics.registry.register_producer(
            self._sql_chase_metrics, prefix="sql_chase_"
        )
        self._sessions: Dict[int, ClientSession] = {}
        self._tickets: Dict[int, UpdateTicket] = {}
        self._by_priority: Dict[int, UpdateTicket] = {}
        #: Ticket ids admitted and not yet committed/failed (they hold
        #: admission slots); kept as a set so pump cost does not grow with
        #: the total number of tickets ever served.
        self._in_flight: Set[int] = set()
        self._next_session_id = 1
        self._next_ticket_id = 1

    # ------------------------------------------------------------------
    # Sessions
    # ------------------------------------------------------------------
    def open_session(self, name: str) -> ClientSession:
        """Connect a client; returns its session handle."""
        session = ClientSession(
            session_id=self._next_session_id, name=name, opened_at=self._clock()
        )
        self._next_session_id += 1
        self._sessions[session.session_id] = session
        return session

    def session(self, session_id: int) -> ClientSession:
        """Look a session up; unknown or closed sessions are a :class:`SessionError`."""
        session = self._sessions.get(session_id)
        if session is None:
            raise SessionError("unknown session #{}".format(session_id))
        if session.closed:
            raise SessionError("session #{} is closed".format(session_id))
        return session

    def close_session(self, session_id: int) -> ClientSession:
        """Disconnect a client; its in-flight tickets keep running to commit."""
        session = self.session(session_id)
        session.closed = True
        return session

    def sessions(self) -> List[ClientSession]:
        """Every session ever opened, in id order."""
        return [self._sessions[sid] for sid in sorted(self._sessions)]

    # ------------------------------------------------------------------
    # Submission and admission
    # ------------------------------------------------------------------
    def submit(
        self,
        session_id: int,
        operation: UserOperation,
        origin: Optional[RemoteOrigin] = None,
        trace: Optional[SpanContext] = None,
    ) -> UpdateTicket:
        """Accept an update from a client; it waits for admission in FIFO order.

        *origin* marks updates forwarded by the federation layer; their
        frontier questions are routed back to the originating peer instead of
        this repository's own inbox clients.  *trace* is the originating
        update's span context when this submission continues a remote trace
        (carried over the wire on the exchange envelope).
        """
        session = self.session(session_id)
        ticket = UpdateTicket(
            ticket_id=self._next_ticket_id,
            session_id=session_id,
            operation=operation,
            origin=origin,
            submitted_at=self._clock(),
        )
        self._next_ticket_id += 1
        self._queue.enqueue(ticket)  # may raise AdmissionError; ticket discarded
        self._tickets[ticket.ticket_id] = ticket
        session.tickets.append(ticket)
        self.metrics.record_submit()
        if self._tracer.enabled:
            ticket.trace_span = self._tracer.start_span(
                "update",
                parent=trace,
                peer=self._trace_peer,
                kind="remote" if origin is not None else "user",
                op_type=type(operation).__name__,
                op=operation.describe(),
                ticket=ticket.ticket_id,
            )
            ticket.wait_span = self._tracer.start_span(
                "queue", phase="queue", parent=ticket.trace_span, peer=self._trace_peer
            )
        return ticket

    def ticket(self, ticket_id: int) -> UpdateTicket:
        """Look a ticket up by id."""
        try:
            return self._tickets[ticket_id]
        except KeyError:
            raise ServiceError("unknown ticket #{}".format(ticket_id))

    def _in_flight_count(self) -> int:
        return len(self._in_flight)

    def _admit(self, ticket: UpdateTicket) -> None:
        now = self._clock()
        if ticket.wait_span is not None:
            self._tracer.end_span(ticket.wait_span)
            ticket.wait_span = None
        priority = self._scheduler.submit(ticket.operation, trace=ticket.trace_context)
        ticket.priority = priority
        ticket.status = TicketStatus.RUNNING
        ticket.admitted_at = now
        ticket.attempts = 1
        self._by_priority[priority] = ticket
        self._in_flight.add(ticket.ticket_id)
        self.metrics.record_admit(now - ticket.submitted_at)

    # ------------------------------------------------------------------
    # The serving loop
    # ------------------------------------------------------------------
    def pump(self, max_steps: Optional[int] = None) -> PumpReport:
        """Admit, step, reconcile: one turn of the service's cooperative loop.

        If the scheduler exhausts its lifetime step budget mid-pump, the
        affected tickets are marked ``FAILED`` (freeing their admission
        slots), everything that did commit is still reconciled, and the
        :class:`~repro.concurrency.optimistic.SchedulerStalled` is re-raised
        for the operator.
        """
        report = PumpReport()
        for ticket in self._queue.take(self._in_flight_count()):
            self._admit(ticket)
            report.admitted.append(ticket)
        if not report.admitted and self._scheduler.is_idle:
            # Idle fast path: no admission and nothing runnable means no
            # steps, no commits and no new questions since the last pump —
            # reconciliation would be a no-op scan.  Federation networks pump
            # every peer every round, so idle pumps are the common case.
            return report
        try:
            report.steps = self._scheduler.pump(max_steps)
        except SchedulerStalled:
            self._reconcile(report)
            self._fail_budget_exhausted()
            raise
        self._reconcile(report)
        return report

    def _fail_budget_exhausted(self) -> None:
        for execution in self._scheduler.executions():
            if execution.status is not UpdateStatus.BUDGET_EXHAUSTED:
                continue
            ticket = self._by_priority.pop(execution.priority, None)
            if ticket is None or ticket.is_done:
                continue
            if ticket.decision_id is not None:
                # The stall cancelled the underlying decision; withdraw the
                # inbox question too so operators don't see answerable ghosts.
                self._inbox.cancel(ticket.decision_id)
                ticket.decision_id = None
                ticket.parked_at = None
            ticket.status = TicketStatus.FAILED
            self._in_flight.discard(ticket.ticket_id)
            self.metrics.record_failure()
            if ticket.wait_span is not None:
                self._tracer.end_span(ticket.wait_span)
                ticket.wait_span = None
            if ticket.trace_span is not None:
                self._tracer.end_span(ticket.trace_span, status="failed")

    def run_until_blocked(self, max_pumps: int = 10_000) -> List[PumpReport]:
        """Pump until the service needs outside input (answers or submissions).

        Returns the reports of every pump performed.  On return, either all
        work is done or every remaining in-flight update is parked on an open
        inbox question.
        """
        reports: List[PumpReport] = []
        for _ in range(max_pumps):
            report = self.pump()
            reports.append(report)
            if self._queue.depth == 0 and self._scheduler.is_idle:
                break
            if not report.steps and not report.admitted:
                # No progress possible: every admission slot is held by a
                # parked update and only an answer can free one.
                break
        return reports

    def _reconcile(self, report: PumpReport) -> None:
        now = self._clock()
        for priority in self._scheduler.drain_newly_committed():
            ticket = self._by_priority.pop(priority, None)
            if ticket is None:
                continue
            ticket.status = TicketStatus.COMMITTED
            ticket.committed_at = now
            self._in_flight.discard(ticket.ticket_id)
            self.metrics.record_commit(now - ticket.submitted_at)
            if ticket.trace_span is not None:
                self._tracer.end_span(ticket.trace_span, status="committed")
            report.committed.append(ticket)
        for execution in self._scheduler.parked_executions():
            ticket = self._by_priority.get(execution.priority)
            if ticket is None or execution.pending_decision is None:
                continue
            decision = execution.pending_decision
            if ticket.decision_id == decision.decision_id:
                continue  # already filed in a previous pump
            ticket.status = TicketStatus.WAITING_FRONTIER
            ticket.decision_id = decision.decision_id
            ticket.parked_at = now
            ticket.parks += 1
            self.metrics.record_park()
            if ticket.trace_span is not None and self._tracer.enabled:
                ticket.wait_span = self._tracer.start_span(
                    "park",
                    phase="park",
                    parent=ticket.trace_span,
                    peer=self._trace_peer,
                    decision=decision.decision_id,
                )
            report.parked.append(self._inbox.register(decision, ticket, now))

    def _on_restart(self, old_priority: int, new_priority: int) -> None:
        """Scheduler callback: an abort moved a ticket to a fresh priority."""
        ticket = self._by_priority.pop(old_priority, None)
        if ticket is None:
            return
        if ticket.decision_id is not None:
            # The parked question died with the aborted execution; reject
            # late answers rather than resuming a rolled-back update.
            self._inbox.cancel(ticket.decision_id)
            ticket.decision_id = None
            ticket.parked_at = None
        if ticket.wait_span is not None:
            self._tracer.end_span(ticket.wait_span, aborted=True)
            ticket.wait_span = None
        ticket.priority = new_priority
        ticket.status = TicketStatus.RUNNING
        ticket.attempts += 1
        self._by_priority[new_priority] = ticket
        self.metrics.record_restart()

    # ------------------------------------------------------------------
    # The frontier inbox
    # ------------------------------------------------------------------
    def inbox(self) -> List[InboxQuestion]:
        """Every open frontier question, oldest first."""
        return self._inbox.questions()

    def answer(
        self,
        session_id: int,
        decision_id: int,
        choice: Union[FrontierOperation, int],
    ) -> InboxQuestion:
        """A client answers an open question; the parked update resumes.

        Any session may answer any question (collaboration!); the first valid
        answer wins and later ones raise :class:`~repro.core.oracle.OracleError`.
        The resumed update continues on the next :meth:`pump`.
        """
        session = self.session(session_id)
        question, operation = self._inbox.answer(decision_id, choice)
        ticket = question.ticket
        assert ticket.priority is not None
        self._scheduler.resume(ticket.priority, operation)
        now = self._clock()
        if ticket.parked_at is not None:
            wait = now - ticket.parked_at
            ticket.frontier_wait_seconds += wait
            self.metrics.record_resume(wait)
        if ticket.wait_span is not None:
            self._tracer.end_span(ticket.wait_span)
            ticket.wait_span = None
        ticket.status = TicketStatus.RUNNING
        ticket.decision_id = None
        ticket.parked_at = None
        session.frontier_answers += 1
        return question

    # ------------------------------------------------------------------
    # Snapshot reads (never block writers)
    # ------------------------------------------------------------------
    def read(self, relation: str) -> List[Tuple]:
        """The committed tuples of *relation* (in-flight work is invisible)."""
        return list(self._scheduler.committed_view().tuples(relation))

    def count(self, relation: str) -> int:
        """Number of committed tuples in *relation*."""
        return self._scheduler.committed_view().count(relation)

    def snapshot(self) -> FrozenDatabase:
        """An immutable snapshot of the committed repository state."""
        return self._scheduler.store.materialize(self._scheduler.commit_watermark())

    # ------------------------------------------------------------------
    # Checkpoint and restore (durability across restarts)
    # ------------------------------------------------------------------
    def checkpoint(self, path: str, extra: Optional[Dict] = None) -> Dict:
        """Persist everything a restarted service needs to resume this one.

        The checkpoint file (wire-codec encoded, versioned) holds:

        * the **committed store** below the scheduler's commit watermark (and
          the watermark itself) — in-flight chase work is deliberately *not*
          serialized: an uncommitted update is exactly re-executable from its
          initial operation, so
        * the **pending inbox**: every queued or admitted-but-uncommitted
          ticket's operation and federation origin, in submission order, for
          re-submission at restore;
        * the **null-factory state**, so post-restart fresh nulls can never
          collide with nulls this service already shipped elsewhere;
        * the **next decision id**, so post-restart frontier questions can
          never collide with question-routing envelopes still in flight;
        * an opaque *extra* dict for the caller (the federation peer stores
          its exchange bookkeeping there).

        Returns the decoded body (handy for tests and logging).
        """
        import os

        from ..codec.wire import WIRE_VERSION, dumps, encode_user_operation
        from ..storage.durable import encode_committed_state

        watermark = self._scheduler.commit_watermark()
        committed = self._scheduler.store.view_for(watermark)
        pending = []
        for ticket in self.tickets():
            if ticket.is_done:
                continue
            entry: Dict = {
                "ticket": ticket.ticket_id,
                "op": encode_user_operation(ticket.operation),
            }
            if ticket.origin is not None:
                entry["origin"] = {
                    "peer": ticket.origin.peer,
                    "ticket": ticket.origin.ticket_id,
                }
            pending.append(entry)
        # The committed-state body is the same dialect snapshot files use
        # (one shared encoder), wrapped with the service-side extras.
        body: Dict = dict(encode_committed_state(committed, watermark))
        body.update({
            "v": WIRE_VERSION,
            "t": "service-checkpoint",
            "null_factory": list(self._null_factory.state()),
            "next_decision_id": self._oracle.next_decision_id,
            "pending": pending,
            "extra": extra or {},
        })
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        with open(path, "wb") as handle:
            handle.write(dumps(body) + b"\n")
        return body

    @classmethod
    def restore(
        cls,
        path: str,
        mappings: Sequence[Tgd],
        **service_arguments,
    ) -> "RestoredService":
        """Rebuild a service from a :meth:`checkpoint` file.

        The committed snapshot becomes the new service's initial database;
        the checkpointed null-factory state and decision-id high-water mark
        carry over (unless the caller overrides ``null_factory`` /
        ``first_decision_id`` explicitly); every pending operation is
        re-submitted — with its federation origin — through a fresh
        ``"restore"`` session, in the original submission order.  Returns a
        :class:`RestoredService` with the old-ticket-id → new-ticket mapping
        so callers (the federation peer) can re-link their bookkeeping.
        """
        import json as _json

        from ..codec.wire import CodecError, WIRE_VERSION, decode_user_operation
        from ..storage.durable import decode_committed_state

        with open(path, "rb") as handle:
            body = _json.loads(handle.read().decode("utf-8"))
        if body.get("v") != WIRE_VERSION:
            raise CodecError(
                "unsupported checkpoint version {!r} (this build speaks {})".format(
                    body.get("v"), WIRE_VERSION
                )
            )
        if body.get("t") != "service-checkpoint":
            raise CodecError("not a service checkpoint: {!r}".format(path))
        _, initial, _ = decode_committed_state(body)
        service_arguments.setdefault(
            "null_factory", NullFactory.from_state(body["null_factory"])
        )
        service_arguments.setdefault("first_decision_id", body["next_decision_id"])
        service = cls(initial, mappings, **service_arguments)
        session = service.open_session("restore")
        resubmitted: Dict[int, UpdateTicket] = {}
        for entry in body["pending"]:
            origin = None
            if "origin" in entry:
                origin = RemoteOrigin(
                    peer=entry["origin"]["peer"], ticket_id=entry["origin"]["ticket"]
                )
            ticket = service.submit(
                session.session_id,
                decode_user_operation(entry["op"]),
                origin=origin,
            )
            resubmitted[entry["ticket"]] = ticket
        return RestoredService(
            service=service, resubmitted=resubmitted, extra=body.get("extra", {})
        )

    @property
    def null_factory(self) -> NullFactory:
        """The factory minting this repository's fresh labeled nulls."""
        return self._null_factory

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def scheduler(self) -> OptimisticScheduler:
        """The underlying optimistic scheduler (tests and benchmarks poke it)."""
        return self._scheduler

    @property
    def tracer(self):
        """The tracer this service records into (the noop when disabled)."""
        return self._tracer

    @property
    def queue_depth(self) -> int:
        """Submissions still waiting for admission."""
        return self._queue.depth

    @property
    def statistics(self) -> RunStatistics:
        """The scheduler's run statistics, refreshed."""
        return self._scheduler.refresh_statistics()

    def tickets(self) -> List[UpdateTicket]:
        """Every ticket ever submitted, in id order."""
        return [self._tickets[ticket_id] for ticket_id in sorted(self._tickets)]

    def ticket_for_priority(self, priority: int) -> Optional[UpdateTicket]:
        """The not-yet-reconciled ticket running under *priority* (or ``None``).

        Commit listeners fire while the scheduler is still pumping, before the
        service reconciles ticket states, so the priority → ticket map is
        exactly right at that moment; afterwards committed priorities are
        dropped from it.
        """
        return self._by_priority.get(priority)

    def add_commit_listener(self, listener: Callable[[int, List], None]) -> None:
        """Register a scheduler commit listener (see the scheduler's docs)."""
        self._scheduler.add_commit_listener(listener)

    def add_batch_commit_listener(self, listener: Callable[[List], None]) -> None:
        """Register a scheduler batch commit listener (see the scheduler's docs)."""
        self._scheduler.add_batch_commit_listener(listener)

    def _sql_chase_metrics(self) -> Dict[str, int]:
        """SQL-chase evaluator counters (all zero when the path is off)."""
        evaluator = self._scheduler.sql_evaluator
        return {
            "enabled": int(evaluator is not None),
            "evaluations": evaluator.evaluations if evaluator else 0,
            "statements_rendered": (
                evaluator.statements_rendered if evaluator else 0
            ),
            "statement_cache_hits": (
                evaluator.statement_cache_hits if evaluator else 0
            ),
            "python_fallbacks": evaluator.python_fallbacks if evaluator else 0,
        }

    def metrics_snapshot(self) -> Dict[str, float]:
        """Flat service+scheduler metrics dictionary (with store gauges)."""
        return self.metrics.snapshot(
            self.statistics, self._clock(), store=self._scheduler.store
        )

    @property
    def is_quiescent(self) -> bool:
        """``True`` when nothing is queued, running, or parked."""
        return (
            self._queue.depth == 0
            and self._scheduler.is_idle
            and self._inbox.open_count == 0
        )
