"""``repro-serve``: run a closed-loop demo of the update-exchange service.

A quick way to watch the service layer work: N think-time clients submit
updates against the genealogy repository (whose cyclic mapping parks every
insert on a frontier question), answers arrive with a configurable delay, and
the service metrics are printed at the end.

Run as ``repro-serve`` (console entry point) or
``python -m repro.service.cli``.
"""

from __future__ import annotations

import argparse
from typing import Optional, Sequence

from ..core.tuples import make_tuple
from ..core.update import InsertOperation
from ..fixtures.genealogy import genealogy_repository
from ..obs.trace import Tracer
from ..workload.closed_loop import ClientSpec, ClosedLoopDriver
from .admission import AdmissionConfig
from .repository import RepositoryService


def _parse_arguments(argv: Optional[Sequence[str]] = None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        description="Serve a Youtopia repository to closed-loop clients."
    )
    parser.add_argument("--clients", type=int, default=8, help="number of client sessions")
    parser.add_argument(
        "--updates", type=int, default=3, help="updates submitted per client"
    )
    parser.add_argument(
        "--think-time", type=int, default=1, help="client think time between updates, in ticks"
    )
    parser.add_argument(
        "--answer-delay", type=int, default=2, help="ticks a frontier question waits for its answer"
    )
    parser.add_argument(
        "--max-in-flight", type=int, default=8, help="admission cap on concurrent updates"
    )
    parser.add_argument(
        "--max-ticks", type=int, default=10_000, help="safety valve on driver ticks"
    )
    parser.add_argument("--tracker", default="PRECISE", help="dependency tracker to use")
    parser.add_argument(
        "--snapshot-path",
        default=None,
        help="write a service checkpoint (committed state, watermark, pending "
        "inbox) to this path after the run",
    )
    parser.add_argument(
        "--restore",
        action="store_true",
        help="restore the service from --snapshot-path before serving "
        "(instead of starting from the fixture repository)",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        help="record causal spans for the whole run and export them as JSONL "
        "to this path (analyse with repro-trace)",
    )
    return parser.parse_args(argv)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Command-line entry point."""
    arguments = _parse_arguments(argv)
    database, mappings = genealogy_repository()
    # An explicit tracer (rather than REPRO_TRACE) so the export path is
    # authoritative: --trace-out always yields a file, even when the
    # environment leaves tracing off.
    tracer = Tracer() if arguments.trace_out else None
    if arguments.restore:
        if not arguments.snapshot_path:
            raise SystemExit("--restore requires --snapshot-path")
        restored = RepositoryService.restore(
            arguments.snapshot_path,
            mappings,
            tracker=arguments.tracker,
            admission=AdmissionConfig(max_in_flight=arguments.max_in_flight),
            tracer=tracer,
        )
        service = restored.service
        print(
            "Restored service from {} ({} pending update(s) re-submitted)".format(
                arguments.snapshot_path, len(restored.resubmitted)
            )
        )
    else:
        service = RepositoryService(
            database.snapshot(),
            mappings,
            tracker=arguments.tracker,
            admission=AdmissionConfig(max_in_flight=arguments.max_in_flight),
            tracer=tracer,
        )
    specs = [
        ClientSpec(
            name="client-{:02d}".format(index),
            operations=[
                InsertOperation(
                    make_tuple("Person", "person_{:02d}_{:02d}".format(index, serial))
                )
                for serial in range(arguments.updates)
            ],
            think_time=arguments.think_time,
        )
        for index in range(arguments.clients)
    ]
    driver = ClosedLoopDriver(
        service, specs, answer_delay=arguments.answer_delay
    )
    report = driver.run(max_ticks=arguments.max_ticks)
    print("Closed-loop run over after {} ticks".format(report.ticks))
    for session in service.sessions():
        print("  " + session.describe())
    print()
    print("Service metrics:")
    for key, value in sorted(service.metrics_snapshot().items()):
        if key.startswith("scheduler_algorithm"):
            print("  {:<32} {}".format(key, value))
        elif not key.startswith("scheduler_"):
            print("  {:<32} {:.4f}".format(key, float(value)))
    statistics = service.statistics
    print(
        "  scheduler: {} steps, {} aborts, {} parks, {} resumes".format(
            statistics.steps,
            statistics.aborts,
            statistics.frontier_parks,
            statistics.frontier_resumes,
        )
    )
    if arguments.snapshot_path:
        body = service.checkpoint(arguments.snapshot_path)
        print(
            "Checkpoint written to {} (watermark {}, {} pending)".format(
                arguments.snapshot_path, body["watermark"], len(body["pending"])
            )
        )
    if tracer is not None:
        count = tracer.export_jsonl(arguments.trace_out)
        print(
            "Trace written to {} ({} spans; inspect with repro-trace)".format(
                arguments.trace_out, count
            )
        )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the CLI
    raise SystemExit(main())
