"""The frontier inbox: asynchronous human questions, service-side.

When an update hits a nondeterministic repair under the service's
:class:`~repro.core.oracle.DeferredOracle`, the execution parks and the
decision lands here as an :class:`InboxQuestion`.  Clients list open
questions, inspect the alternatives, and answer at their own pace; the first
valid answer wins and resumes the parked update.  Questions whose update was
aborted in the meantime are cancelled — a late answer gets an
:class:`~repro.core.oracle.OracleError` instead of resuming a dead update.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple as PyTuple, Union

from ..core.frontier import FrontierOperation, FrontierRequest
from ..core.oracle import DeferredOracle, OracleError, PendingDecision
from .tickets import UpdateTicket


@dataclass
class InboxQuestion:
    """One open frontier question, routed to whichever client answers first."""

    decision_id: int
    ticket: UpdateTicket
    request: FrontierRequest
    #: Service-clock reading when the question entered the inbox.
    asked_at: float

    def alternatives(self) -> List[FrontierOperation]:
        """The legal answers, indexable by clients."""
        return self.request.alternatives()

    def describe(self) -> str:
        """One-line description for logs and the CLI."""
        return "question #{} for {} ({} alternatives)".format(
            self.decision_id, self.ticket.describe(), len(self.alternatives())
        )


class FrontierInbox:
    """Service-side registry of open frontier questions."""

    def __init__(self, oracle: DeferredOracle):
        self._oracle = oracle
        self._questions: Dict[int, InboxQuestion] = {}

    def register(
        self, decision: PendingDecision, ticket: UpdateTicket, now: float
    ) -> InboxQuestion:
        """File the question a just-parked update asked."""
        question = InboxQuestion(
            decision_id=decision.decision_id,
            ticket=ticket,
            request=decision.request,
            asked_at=now,
        )
        self._questions[decision.decision_id] = question
        return question

    def questions(self) -> List[InboxQuestion]:
        """Every open question, oldest first."""
        return [
            self._questions[decision_id] for decision_id in sorted(self._questions)
        ]

    def question(self, decision_id: int) -> InboxQuestion:
        """Look an open question up; unknown ids are an :class:`OracleError`."""
        try:
            return self._questions[decision_id]
        except KeyError:
            raise OracleError(
                "no open inbox question #{} (answered, cancelled or never asked)".format(
                    decision_id
                )
            )

    def answer(
        self, decision_id: int, choice: Union[FrontierOperation, int]
    ) -> PyTuple[InboxQuestion, FrontierOperation]:
        """Answer a question; returns it with the resolved operation.

        Duplicate answers and answers to cancelled questions raise
        :class:`OracleError` (the underlying decision enforces at-most-once).
        """
        question = self.question(decision_id)
        decision = self._oracle.post(decision_id, choice)
        del self._questions[decision_id]
        assert decision.answer is not None
        return question, decision.answer

    def cancel(self, decision_id: Optional[int]) -> None:
        """Withdraw a question whose update aborted (idempotent)."""
        if decision_id is None:
            return
        self._questions.pop(decision_id, None)
        self._oracle.cancel(decision_id)

    @property
    def open_count(self) -> int:
        """Number of questions currently awaiting an answer."""
        return len(self._questions)
