"""Client sessions of the update-exchange service.

Youtopia is collaborative: many users submit updates and answer frontier
questions concurrently.  A :class:`ClientSession` is the service's handle for
one such user — it owns the tickets the user submitted and counts the frontier
answers the user contributed (the paper's measure of human attention, here
attributed per client).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from .tickets import TicketStatus, UpdateTicket


class SessionError(RuntimeError):
    """Raised for operations on unknown or closed sessions."""


@dataclass
class ClientSession:
    """One connected client of the :class:`~repro.service.repository.RepositoryService`."""

    session_id: int
    name: str
    opened_at: float
    closed: bool = False
    #: Tickets this session submitted, in submission order.
    tickets: List[UpdateTicket] = field(default_factory=list)
    #: Frontier questions this session answered (for any ticket, not just its own).
    frontier_answers: int = 0

    @property
    def submitted(self) -> int:
        """Number of updates this session has submitted."""
        return len(self.tickets)

    @property
    def committed(self) -> int:
        """Number of this session's updates that have committed."""
        return sum(1 for ticket in self.tickets if ticket.status is TicketStatus.COMMITTED)

    @property
    def in_flight(self) -> int:
        """Number of this session's updates not yet committed or failed."""
        return sum(1 for ticket in self.tickets if not ticket.is_done)

    def describe(self) -> str:
        """One-line description for logs and the CLI."""
        return "session #{} ({}): {} submitted, {} committed, {} answers".format(
            self.session_id, self.name, self.submitted, self.committed, self.frontier_answers
        )
