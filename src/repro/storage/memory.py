"""Single-version in-memory store.

This is the storage backend used by single-chase scenarios: the examples, the
fixtures, the initial-database generator, and as the materialization target of
the final-state serializability checker.  The concurrency-control layer uses
the multiversion store in :mod:`repro.storage.versioned` instead.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set

from ..core.schema import DatabaseSchema, SchemaError
from ..core.terms import DataTerm, LabeledNull
from ..core.tuples import Tuple
from .index import PositionIndex
from .interface import DatabaseView, MutableDatabase, StorageError


class FrozenDatabase(DatabaseView):
    """An immutable snapshot of a :class:`MemoryDatabase`."""

    def __init__(self, schema: DatabaseSchema, contents: Dict[str, frozenset]):
        self._schema = schema
        self._contents = contents

    @property
    def schema(self) -> DatabaseSchema:
        return self._schema

    def relations(self) -> List[str]:
        return list(self._contents)

    def tuples(self, relation: str) -> Iterator[Tuple]:
        return iter(self._contents.get(relation, frozenset()))

    def contains(self, row: Tuple) -> bool:
        return row in self._contents.get(row.relation, frozenset())

    def count(self, relation: str) -> int:
        return len(self._contents.get(relation, frozenset()))

    def cardinality_estimate(self, relation: str) -> Optional[int]:
        return len(self._contents.get(relation, frozenset()))

    def change_token(self) -> Optional[object]:
        return 0  # immutable: every read is memoizable forever


class MemoryDatabase(MutableDatabase):
    """A mutable, indexed, single-version in-memory database."""

    def __init__(self, schema: DatabaseSchema):
        self._schema = schema
        self._relations: Dict[str, Set[Tuple]] = {
            name: set() for name in schema.relation_names()
        }
        self._index = PositionIndex()
        #: Monotone stamp bumped by every mutation (the change token).
        self._stamp = 0

    # ------------------------------------------------------------------
    # DatabaseView
    # ------------------------------------------------------------------
    @property
    def schema(self) -> DatabaseSchema:
        return self._schema

    def relations(self) -> List[str]:
        return list(self._relations)

    def tuples(self, relation: str) -> Iterator[Tuple]:
        if relation not in self._relations:
            raise SchemaError("unknown relation {!r}".format(relation))
        # Iterate over a copy so callers may mutate while scanning results.
        return iter(tuple(self._relations[relation]))

    def contains(self, row: Tuple) -> bool:
        return row in self._relations.get(row.relation, set())

    def tuples_with_value(
        self, relation: str, position: int, value: DataTerm
    ) -> Iterator[Tuple]:
        return iter(tuple(self._index.lookup(relation, position, value)))

    def tuples_containing_null(self, null: LabeledNull) -> Iterator[Tuple]:
        return iter(tuple(self._index.with_null(null)))

    def more_specific_tuples(self, row: Tuple) -> List[Tuple]:
        # The chase issues this correction query on every generated tuple, so
        # it must not scan the relation.  Any more-specific tuple agrees with
        # ``row`` on its constant positions (Definition 2.4: the witnessing
        # map is the identity on constants), so intersecting the position
        # index's buckets over those positions narrows the candidates to the
        # few tuples sharing all constants; only those are checked in full.
        candidates = None
        for position, value in enumerate(row.values):
            if isinstance(value, LabeledNull):
                continue
            bucket = self._index.lookup(row.relation, position, value)
            if candidates is None:
                candidates = set(bucket)
            else:
                candidates &= bucket
            if not candidates:
                return []
        if candidates is None:
            # All-null pattern: every tuple of the relation is a candidate.
            candidates = self._relations.get(row.relation, set())
        # Candidates already agree with ``row`` on its constant positions;
        # with pairwise-distinct nulls the witnessing map has no further
        # condition to check (see the versioned view's twin fast path).
        nulls = [value for value in row.values if isinstance(value, LabeledNull)]
        if len(nulls) == len(set(nulls)):
            if self._schema.arity_of(row.relation) != len(row.values):
                return []  # no stored tuple can match a wrong-arity pattern
            return list(candidates)
        return [
            candidate
            for candidate in candidates
            if candidate.is_more_specific_than(row)
        ]

    def count(self, relation: str) -> int:
        return len(self._relations.get(relation, set()))

    def cardinality_estimate(self, relation: str) -> Optional[int]:
        return len(self._relations.get(relation, set()))

    def change_token(self) -> Optional[object]:
        return self._stamp

    # ------------------------------------------------------------------
    # MutableDatabase
    # ------------------------------------------------------------------
    def insert(self, row: Tuple) -> bool:
        self._schema.validate_tuple(row)
        bucket = self._relations[row.relation]
        if row in bucket:
            return False
        bucket.add(row)
        self._index.add(row)
        self._stamp += 1
        return True

    def delete(self, row: Tuple) -> bool:
        bucket = self._relations.get(row.relation)
        if bucket is None:
            raise SchemaError("unknown relation {!r}".format(row.relation))
        if row not in bucket:
            return False
        bucket.remove(row)
        self._index.remove(row)
        self._stamp += 1
        return True

    def replace_null(self, null: LabeledNull, value: DataTerm) -> List[Tuple]:
        affected = list(self._index.with_null(null))
        modified: List[Tuple] = []
        for row in affected:
            replacement = row.substitute({null: value})
            self.delete(row)
            # The replacement may collide with an existing tuple; set
            # semantics make the collision a silent merge, exactly as a
            # unification should behave.
            self.insert(replacement)
            modified.append(replacement)
        return modified

    def snapshot(self) -> FrozenDatabase:
        return FrozenDatabase(
            self._schema,
            {name: frozenset(rows) for name, rows in self._relations.items()},
        )

    # ------------------------------------------------------------------
    # Bulk helpers
    # ------------------------------------------------------------------
    def insert_all(self, rows) -> int:
        """Insert every row in *rows*; return how many actually changed the DB."""
        return sum(1 for row in rows if self.insert(row))

    def clear(self) -> None:
        """Remove all tuples (the schema is kept)."""
        for bucket in self._relations.values():
            bucket.clear()
        self._index.rebuild(())
        self._stamp += 1

    def copy(self) -> "MemoryDatabase":
        """Deep copy of the store (tuples are immutable and shared)."""
        duplicate = MemoryDatabase(self._schema)
        for relation, bucket in self._relations.items():
            for row in bucket:
                duplicate.insert(row)
        return duplicate

    def load_from(self, view: DatabaseView) -> None:
        """Replace the contents of this store by the contents of *view*.

        Bulk path: rows are validated and deduplicated per relation, then
        indexed with one :meth:`PositionIndex.add_many` pass instead of a
        per-row insert — loading is the burstiest write this store sees.
        """
        # Validate-then-commit: nothing is mutated until every incoming row
        # passed, so a failing row leaves the (cleared-on-entry) store
        # consistent instead of half-loaded with unindexed rows.
        staged: Dict[str, List[Tuple]] = {}
        for relation in view.relations():
            if relation not in self._relations:
                raise SchemaError("unknown relation {!r}".format(relation))
            seen: Set[Tuple] = set()
            rows = staged.setdefault(relation, [])
            for row in view.tuples(relation):
                if row not in seen:
                    self._schema.validate_tuple(row)
                    seen.add(row)
                    rows.append(row)
        self.clear()
        fresh: List[Tuple] = []
        for relation, rows in staged.items():
            self._relations[relation].update(rows)
            fresh.extend(rows)
        self._index.add_many(fresh)
        self._stamp += 1

    def __repr__(self) -> str:
        sizes = ", ".join(
            "{}={}".format(name, len(rows)) for name, rows in self._relations.items() if rows
        )
        return "MemoryDatabase({})".format(sizes or "empty")
