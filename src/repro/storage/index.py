"""Secondary indexes used by the in-memory stores to accelerate joins.

The violation queries of Section 4.2 are conjunctive queries whose join
predicates are dictated by the mappings; the paper notes (Section 5.1.2) that
"it is possible to improve performance by appropriate indexing".  The
:class:`PositionIndex` below is the simplest useful structure: a hash index
from ``(relation, position, term)`` to the set of tuples holding that term at
that position.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Iterator, List, Set, Tuple as PyTuple

from ..core.terms import DataTerm, LabeledNull
from ..core.tuples import Tuple


class PositionIndex:
    """Hash index over every (relation, position, value) combination."""

    def __init__(self) -> None:
        self._by_value: Dict[PyTuple[str, int, DataTerm], Set[Tuple]] = defaultdict(set)
        self._by_null: Dict[LabeledNull, Set[Tuple]] = defaultdict(set)

    def add(self, row: Tuple) -> None:
        """Index *row*."""
        for position, value in enumerate(row.values):
            self._by_value[(row.relation, position, value)].add(row)
        for null in row.null_set():
            self._by_null[null].add(row)

    def remove(self, row: Tuple) -> None:
        """Remove *row* from the index (no-op if absent)."""
        for position, value in enumerate(row.values):
            bucket = self._by_value.get((row.relation, position, value))
            if bucket is not None:
                bucket.discard(row)
                if not bucket:
                    del self._by_value[(row.relation, position, value)]
        for null in row.null_set():
            bucket = self._by_null.get(null)
            if bucket is not None:
                bucket.discard(row)
                if not bucket:
                    del self._by_null[null]

    def lookup(self, relation: str, position: int, value: DataTerm) -> Set[Tuple]:
        """Tuples of *relation* holding *value* at *position*."""
        return self._by_value.get((relation, position, value), set())

    def with_null(self, null: LabeledNull) -> Set[Tuple]:
        """All indexed tuples containing *null*."""
        return self._by_null.get(null, set())

    def rebuild(self, rows: Iterable[Tuple]) -> None:
        """Clear the index and re-index *rows* from scratch."""
        self._by_value.clear()
        self._by_null.clear()
        for row in rows:
            self.add(row)

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._by_value.values())
