"""Secondary indexes used by the in-memory stores to accelerate joins.

The violation queries of Section 4.2 are conjunctive queries whose join
predicates are dictated by the mappings; the paper notes (Section 5.1.2) that
"it is possible to improve performance by appropriate indexing".  The
:class:`PositionIndex` below is the simplest useful structure: a hash index
from ``(relation, position, term)`` to the set of tuples holding that term at
that position.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Iterator, List, Set, Tuple as PyTuple

from ..core.terms import DataTerm, LabeledNull
from ..core.tuples import Tuple


class PositionIndex:
    """Hash index over every (relation, position, value) combination."""

    def __init__(self) -> None:
        self._by_value: Dict[PyTuple[str, int, DataTerm], Set[Tuple]] = defaultdict(set)
        self._by_null: Dict[LabeledNull, Set[Tuple]] = defaultdict(set)
        #: Number of rows indexed, maintained incrementally: ``len()`` used to
        #: recount every value bucket on each call (O(#buckets)), which turned
        #: the introspection gauges into accidental full scans.
        self._size = 0

    def add(self, row: Tuple) -> None:
        """Index *row* (idempotent)."""
        changed = False
        for position, value in enumerate(row.values):
            bucket = self._by_value[(row.relation, position, value)]
            if row not in bucket:
                bucket.add(row)
                changed = True
        for null in row.null_set():
            self._by_null[null].add(row)
        if changed or not row.values:
            self._size += 1

    def remove(self, row: Tuple) -> None:
        """Remove *row* from the index (no-op if absent)."""
        removed = False
        for position, value in enumerate(row.values):
            bucket = self._by_value.get((row.relation, position, value))
            if bucket is not None and row in bucket:
                bucket.discard(row)
                removed = True
                if not bucket:
                    del self._by_value[(row.relation, position, value)]
        for null in row.null_set():
            bucket = self._by_null.get(null)
            if bucket is not None:
                bucket.discard(row)
                if not bucket:
                    del self._by_null[null]
        if removed:
            self._size -= 1

    def add_many(self, rows: Iterable[Tuple]) -> None:
        """Bulk-index *rows*: the per-row bucket lookups are shared per key.

        Groups the batch by bucket key first, so each ``(relation, position,
        value)`` dict entry is touched once per batch instead of once per row
        — the write-amplification the per-row path pays on bursty loads.
        """
        grouped: Dict[PyTuple[str, int, DataTerm], List[Tuple]] = {}
        null_grouped: Dict[LabeledNull, List[Tuple]] = {}
        for row in rows:
            counted = False
            for position, value in enumerate(row.values):
                grouped.setdefault((row.relation, position, value), []).append(row)
                counted = True
            for null in row.null_set():
                null_grouped.setdefault(null, []).append(row)
            if not counted:
                self._size += 1
        for key, members in grouped.items():
            bucket = self._by_value[key]
            before = len(bucket)
            bucket.update(members)
            if key[1] == 0:
                # Position-0 membership is 1:1 with row membership, so the
                # size delta of those buckets is the row count delta.
                self._size += len(bucket) - before
        for null, members in null_grouped.items():
            self._by_null[null].update(members)

    def remove_many(self, rows: Iterable[Tuple]) -> None:
        """Bulk-remove *rows* (each a no-op if absent)."""
        for row in rows:
            self.remove(row)

    def lookup(self, relation: str, position: int, value: DataTerm) -> Set[Tuple]:
        """Tuples of *relation* holding *value* at *position*."""
        return self._by_value.get((relation, position, value), set())

    def with_null(self, null: LabeledNull) -> Set[Tuple]:
        """All indexed tuples containing *null*."""
        return self._by_null.get(null, set())

    def rebuild(self, rows: Iterable[Tuple]) -> None:
        """Clear the index and re-index *rows* from scratch."""
        self._by_value.clear()
        self._by_null.clear()
        self._size = 0
        self.add_many(rows)

    def __len__(self) -> int:
        return self._size
