"""Storage interfaces shared by the in-memory, multiversion and SQLite backends.

The chase and the query layer only ever need two things from storage:

* a read-only :class:`DatabaseView` — "what tuples are visible right now?" —
  used to evaluate conjunctive, violation and correction queries, and
* a mutable :class:`MutableDatabase` — insert / delete / null-replacement —
  used by chase steps to apply their writes.

The multiversion store used by the concurrency-control layer produces one
:class:`DatabaseView` per update priority (Section 4.1 of the paper: an update
numbered ``j`` sees the largest-numbered version created by updates with
number at most ``j``).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Iterable, Iterator, List, Optional

from ..core.schema import DatabaseSchema
from ..core.terms import Constant, DataTerm, LabeledNull
from ..core.tuples import Tuple


class StorageError(RuntimeError):
    """Raised when a storage operation cannot be carried out."""


class DatabaseView(ABC):
    """A read-only snapshot of a repository."""

    @property
    @abstractmethod
    def schema(self) -> DatabaseSchema:
        """The database schema."""

    @abstractmethod
    def relations(self) -> List[str]:
        """Names of all relations in the view."""

    @abstractmethod
    def tuples(self, relation: str) -> Iterator[Tuple]:
        """Iterate over the visible tuples of *relation*."""

    @abstractmethod
    def contains(self, row: Tuple) -> bool:
        """``True`` when *row* is visible."""

    # ------------------------------------------------------------------
    # Default implementations that concrete views may override with
    # index-accelerated versions.
    # ------------------------------------------------------------------
    def tuples_with_value(
        self, relation: str, position: int, value: DataTerm
    ) -> Iterator[Tuple]:
        """Visible tuples of *relation* whose field *position* equals *value*."""
        for row in self.tuples(relation):
            if row[position] == value:
                yield row

    def tuples_containing_null(self, null: LabeledNull) -> Iterator[Tuple]:
        """All visible tuples (any relation) containing the labeled null."""
        for relation in self.relations():
            for row in self.tuples(relation):
                if row.contains_null(null):
                    yield row

    def more_specific_tuples(self, row: Tuple) -> List[Tuple]:
        """Visible tuples of ``row.relation`` that are more specific than *row*.

        This is the correction query the forward chase issues to decide whether
        a generated tuple is a frontier tuple (Section 2.2) — and, if so, which
        unification candidates to offer the user.
        """
        return [
            candidate
            for candidate in self.tuples(row.relation)
            if candidate.is_more_specific_than(row)
        ]

    def count(self, relation: str) -> int:
        """Number of visible tuples in *relation*."""
        return sum(1 for _ in self.tuples(relation))

    def cardinality_estimate(self, relation: str) -> Optional[int]:
        """A cheap (O(1)) upper-bound estimate of ``count(relation)``.

        Used by the compiled query planner to order joins cheapest-first.
        ``None`` (the default) means "no cheap estimate available" — the
        planner then falls back to its static ordering.  Backends with an
        O(1) gauge (set sizes, tid buckets) override this; the estimate may
        over-approximate but must never require scanning the relation.
        """
        return None

    def change_token(self) -> Optional[object]:
        """A value that changes whenever this view's visible contents may have.

        Two calls returning the same (non-``None``) token guarantee the view
        answered — and will answer — every query identically in between, so
        pure read results can be memoized against it.  ``None`` (the default)
        means "no cheap token available"; immutable views return a constant.
        """
        return None

    def total_count(self) -> int:
        """Total number of visible tuples across all relations."""
        return sum(self.count(relation) for relation in self.relations())

    def to_dict(self) -> Dict[str, frozenset]:
        """Materialize the view as ``{relation: frozenset(tuples)}``.

        Used by tests and by the final-state serializability checker, which
        compares whole database states.
        """
        return {
            relation: frozenset(self.tuples(relation))
            for relation in self.relations()
        }


class MutableDatabase(DatabaseView):
    """A :class:`DatabaseView` that also supports the three Youtopia writes."""

    @abstractmethod
    def insert(self, row: Tuple) -> bool:
        """Insert *row*; return ``True`` when the database changed."""

    @abstractmethod
    def delete(self, row: Tuple) -> bool:
        """Delete *row*; return ``True`` when the database changed."""

    @abstractmethod
    def replace_null(self, null: LabeledNull, value: DataTerm) -> List[Tuple]:
        """Replace every occurrence of *null* by *value*.

        Returns the list of tuples (post-replacement) that were modified.
        Replacement is global and consistent, as required for the guarantee
        that null-replacements only cause LHS-violations (Section 2).
        """

    def apply_substitution(
        self, substitution: Dict[LabeledNull, DataTerm]
    ) -> List[Tuple]:
        """Apply several null replacements; returns all modified tuples."""
        modified: List[Tuple] = []
        for null, value in substitution.items():
            modified.extend(self.replace_null(null, value))
        return modified

    @abstractmethod
    def snapshot(self) -> "DatabaseView":
        """Return an immutable copy of the current state."""


def dump_sorted(view: DatabaseView) -> List[str]:
    """Render a view as a sorted list of tuple strings (handy in tests/examples)."""
    lines: List[str] = []
    for relation in sorted(view.relations()):
        for row in view.tuples(relation):
            lines.append(repr(row))
    return sorted(lines)
