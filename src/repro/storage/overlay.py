"""Overlay views: cheap "what if this write had not happened?" snapshots.

The PRECISE read-dependency tracker and the optimistic scheduler's conflict
check both need to know whether a single write changes the answer to a read
query (Section 5: "it finds all those updates that have performed some write
such that the answer to q would be different if the write had not yet been
performed").  Rather than copying the database, an :class:`OverlayView` wraps
an existing view and virtually adds or hides individual tuples.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Optional, Set

from ..core.schema import DatabaseSchema
from ..core.terms import DataTerm, LabeledNull
from ..core.tuples import Tuple
from ..core.writes import Write, WriteKind
from .interface import DatabaseView


class OverlayView(DatabaseView):
    """A view equal to *base* plus ``added`` tuples minus ``hidden`` tuples."""

    def __init__(
        self,
        base: DatabaseView,
        added: Optional[Set[Tuple]] = None,
        hidden: Optional[Set[Tuple]] = None,
    ):
        self._base = base
        self._added: Set[Tuple] = set(added or ())
        self._hidden: Set[Tuple] = set(hidden or ())
        # A tuple both added and hidden is treated as hidden: hiding always
        # wins, which matches the "undo this write" use case.
        self._added -= self._hidden

    @property
    def schema(self) -> DatabaseSchema:
        return self._base.schema

    def relations(self) -> List[str]:
        names = list(self._base.relations())
        for row in self._added:
            if row.relation not in names:
                names.append(row.relation)
        return names

    def tuples(self, relation: str) -> Iterator[Tuple]:
        seen: Set[Tuple] = set()
        for row in self._base.tuples(relation):
            if row in self._hidden:
                continue
            seen.add(row)
            yield row
        for row in self._added:
            if row.relation == relation and row not in seen:
                yield row

    def contains(self, row: Tuple) -> bool:
        if row in self._hidden:
            return False
        if row in self._added:
            return True
        return self._base.contains(row)

    def cardinality_estimate(self, relation: str) -> Optional[int]:
        base = self._base.cardinality_estimate(relation)
        if base is None:
            return None
        # Hidden rows stay counted (an upper bound is all the planner needs);
        # added rows are few (one write's worth), so the sum stays O(1).
        return base + sum(1 for row in self._added if row.relation == relation)

    def tuples_with_value(
        self, relation: str, position: int, value: DataTerm
    ) -> Iterator[Tuple]:
        seen: Set[Tuple] = set()
        for row in self._base.tuples_with_value(relation, position, value):
            if row in self._hidden:
                continue
            seen.add(row)
            yield row
        for row in self._added:
            if (
                row.relation == relation
                and row[position] == value
                and row not in seen
            ):
                yield row

    def tuples_containing_null(self, null: LabeledNull) -> Iterator[Tuple]:
        seen: Set[Tuple] = set()
        for row in self._base.tuples_containing_null(null):
            if row in self._hidden:
                continue
            seen.add(row)
            yield row
        for row in self._added:
            if row.contains_null(null) and row not in seen:
                yield row


def view_without_write(base: DatabaseView, write: Write) -> DatabaseView:
    """A view showing the state as if *write* had not been performed.

    * For an insertion, the inserted tuple is hidden.
    * For a deletion, the deleted tuple is restored.
    * For a modification, the new content is hidden and the old restored.
    """
    if write.kind is WriteKind.INSERT:
        return OverlayView(base, hidden={write.row})
    if write.kind is WriteKind.DELETE:
        return OverlayView(base, added={write.row})
    hidden = {write.row}
    added = {write.old_row} if write.old_row is not None else set()
    return OverlayView(base, added=added, hidden=hidden)


def view_with_write(base: DatabaseView, write: Write) -> DatabaseView:
    """A view showing the state as if *write* had (additionally) been performed."""
    if write.kind is WriteKind.INSERT:
        return OverlayView(base, added={write.row})
    if write.kind is WriteKind.DELETE:
        return OverlayView(base, hidden={write.row})
    added = {write.row}
    hidden = {write.old_row} if write.old_row is not None else set()
    return OverlayView(base, added=added, hidden=hidden)
