"""Durable storage: codec-encoded write-log segments and committed snapshots.

The multiversion store is an in-memory structure; this module gives it a disk
representation built entirely on the wire codec (:mod:`repro.codec`), so the
bytes on disk speak the same versioned, self-describing dialect as the bytes
on the federation transport:

* :class:`WriteLogSegments` — an append-only redo log of applied writes, cut
  into bounded segment files.  Every applied :class:`~repro.storage.versioned.VersionedWrite`
  is appended as one JSON line; rollbacks append a tombstone marker for the
  rolled-back priority; commit-time compaction records the watermark and
  deletes whole segment files once every priority they mention is at or below
  it.  :meth:`WriteLogSegments.replay` reconstructs exactly the writes still
  *live* above the recorded watermark (rolled-back priorities filtered out),
  which together with a committed snapshot at that watermark reproduces the
  store.
* :func:`write_snapshot` / :func:`read_snapshot` — the committed store below
  a watermark, frozen into one codec-encoded file (schema, watermark, rows).

Both are consumed by :meth:`~repro.storage.versioned.VersionedDatabase.snapshot_to`,
:meth:`~repro.storage.versioned.VersionedDatabase.restore_from` and the
service-level checkpoint (:meth:`~repro.service.repository.RepositoryService.checkpoint`).
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Sequence, Set, Tuple as PyTuple

from ..codec.wire import (
    CodecError,
    WIRE_VERSION,
    decode_schema,
    decode_tuple,
    decode_versioned_write,
    dumps,
    encode_schema,
    encode_tuple,
    encode_versioned_write,
)
from ..core.schema import DatabaseSchema
from .interface import DatabaseView
from .memory import FrozenDatabase
from .versioned import VersionedWrite

_SEGMENT_PREFIX = "segment-"
_SEGMENT_SUFFIX = ".log"
_META_NAME = "segments-meta.json"


def _check_version(record: Dict) -> None:
    version = record.get("v")
    if version != WIRE_VERSION:
        raise CodecError(
            "unsupported durable-format version {!r} (this build speaks {})".format(
                version, WIRE_VERSION
            )
        )


class WriteLogSegments:
    """An append-only, compaction-aware redo log of applied writes."""

    def __init__(self, directory: str, max_entries_per_segment: int = 512):
        if max_entries_per_segment < 1:
            raise ValueError("a segment must hold at least one entry")
        self.directory = directory
        self.max_entries_per_segment = max_entries_per_segment
        os.makedirs(directory, exist_ok=True)
        self._watermark = 0
        #: Per segment index: every priority its entries/markers mention.
        self._segment_priorities: Dict[int, Set[int]] = {}
        self._segment_entries: Dict[int, int] = {}
        self._next_segment = 1
        #: The segment currently receiving appends (``None`` until needed).
        self._current: Optional[int] = None
        self._load_existing()

    # ------------------------------------------------------------------
    # Layout
    # ------------------------------------------------------------------
    def _segment_path(self, index: int) -> str:
        return os.path.join(
            self.directory, "{}{:08d}{}".format(_SEGMENT_PREFIX, index, _SEGMENT_SUFFIX)
        )

    def _meta_path(self) -> str:
        return os.path.join(self.directory, _META_NAME)

    def segment_indexes(self) -> List[int]:
        """The live segment indexes, oldest first."""
        return sorted(self._segment_priorities)

    @property
    def watermark(self) -> int:
        """The highest compaction watermark recorded so far."""
        return self._watermark

    def _load_existing(self) -> None:
        meta_path = self._meta_path()
        if os.path.exists(meta_path):
            with open(meta_path) as handle:
                meta = json.load(handle)
            _check_version(meta)
            self._watermark = meta.get("watermark", 0)
        for name in os.listdir(self.directory):
            if not (name.startswith(_SEGMENT_PREFIX) and name.endswith(_SEGMENT_SUFFIX)):
                continue
            index = int(name[len(_SEGMENT_PREFIX):-len(_SEGMENT_SUFFIX)])
            priorities: Set[int] = set()
            entries = 0
            with open(os.path.join(self.directory, name), "rb") as handle:
                for line in handle:
                    if not line.strip():
                        continue
                    record = json.loads(line.decode("utf-8"))
                    _check_version(record)
                    entries += 1
                    if record["t"] == "write":
                        priorities.add(record["e"]["pri"])
                    elif record["t"] == "rollback":
                        priorities.add(record["p"])
            self._segment_priorities[index] = priorities
            self._segment_entries[index] = entries
            self._next_segment = max(self._next_segment, index + 1)
        if self._segment_priorities:
            newest = max(self._segment_priorities)
            if self._segment_entries[newest] < self.max_entries_per_segment:
                self._current = newest

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def _current_segment(self) -> int:
        current = self._current
        if (
            current is not None
            and self._segment_entries[current] < self.max_entries_per_segment
        ):
            return current
        index = self._next_segment
        self._next_segment += 1
        self._segment_priorities[index] = set()
        self._segment_entries[index] = 0
        self._current = index
        # Touch the file so an empty current segment survives a scan.
        open(self._segment_path(index), "ab").close()
        return index

    def _append_records(self, records) -> None:
        """Append ``(record, priority)`` pairs, one file open per segment.

        This is the store's hottest durable path (every chase step's write
        batch lands here), so the segment handle is opened once per chunk
        rather than once per record, rolling to a fresh segment only when
        the current one fills.
        """
        position = 0
        total = len(records)
        while position < total:
            index = self._current_segment()
            room = self.max_entries_per_segment - self._segment_entries[index]
            chunk = records[position:position + room]
            priorities = self._segment_priorities[index]
            with open(self._segment_path(index), "ab") as handle:
                for record, priority in chunk:
                    handle.write(dumps(record) + b"\n")
                    priorities.add(priority)
            self._segment_entries[index] += len(chunk)
            position += len(chunk)

    def append(self, entries: Sequence[VersionedWrite]) -> None:
        """Append applied writes (seq-ascending, as the store logs them)."""
        self._append_records([
            (
                {"v": WIRE_VERSION, "t": "write", "e": encode_versioned_write(entry)},
                entry.priority,
            )
            for entry in entries
        ])

    def record_rollback(self, priority: int) -> None:
        """Append a tombstone: every logged write of *priority* is void."""
        self._append_records(
            [({"v": WIRE_VERSION, "t": "rollback", "p": priority}, priority)]
        )

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    def compact_below(self, watermark: int) -> int:
        """Record *watermark* and drop fully-covered segment files.

        The caller guarantees (exactly as for the in-memory
        :meth:`~repro.storage.versioned.VersionedDatabase.compact_below`) that
        every priority at or below *watermark* is committed or fully rolled
        back; such entries are represented by any snapshot taken at or above
        the watermark, so a segment whose every mentioned priority is covered
        carries no information a replay still needs.  Returns the number of
        segment files deleted.
        """
        self._watermark = max(self._watermark, watermark)
        with open(self._meta_path(), "w") as handle:
            json.dump({"v": WIRE_VERSION, "watermark": self._watermark}, handle)
            handle.write("\n")
        dropped = 0
        for index in self.segment_indexes():
            priorities = self._segment_priorities[index]
            if priorities and max(priorities) > self._watermark:
                continue
            # Keep the newest (possibly still-appending) segment alive even
            # when empty, so appends keep a stable target.
            if not priorities and index == max(self._segment_priorities):
                continue
            os.remove(self._segment_path(index))
            del self._segment_priorities[index]
            del self._segment_entries[index]
            if self._current == index:
                self._current = None
            dropped += 1
        return dropped

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    def replay(self) -> List[VersionedWrite]:
        """The live writes above the recorded watermark, in log order.

        Rolled-back priorities are filtered (their tombstone may live in a
        later segment than their writes), and so are priorities at or below
        the watermark — those are, by the compaction contract, represented by
        the snapshot a restore pairs this replay with.
        """
        raw: List[PyTuple[int, Dict]] = []
        rolled_back: Set[int] = set()
        for index in self.segment_indexes():
            with open(self._segment_path(index), "rb") as handle:
                for line in handle:
                    if not line.strip():
                        continue
                    record = json.loads(line.decode("utf-8"))
                    _check_version(record)
                    if record["t"] == "rollback":
                        rolled_back.add(record["p"])
                    elif record["t"] == "write":
                        raw.append((index, record))
                    else:
                        raise CodecError(
                            "unknown segment record type {!r}".format(record["t"])
                        )
        live: List[VersionedWrite] = []
        for _, record in raw:
            entry = decode_versioned_write(record["e"])
            if entry.priority in rolled_back:
                continue
            if entry.priority <= self._watermark:
                continue
            live.append(entry)
        live.sort(key=lambda entry: entry.seq)
        return live


# ----------------------------------------------------------------------
# Committed snapshots
# ----------------------------------------------------------------------
def encode_committed_state(view: DatabaseView, watermark: int) -> Dict:
    """The canonical committed-state body: schema + rows + watermark.

    The single definition shared by snapshot files and service checkpoints —
    one on-disk dialect, whatever document carries it.
    """
    return {
        "watermark": watermark,
        "schema": encode_schema(view.schema),
        "relations": {
            relation: sorted(
                (encode_tuple(row) for row in view.tuples(relation)),
                key=lambda encoded: json.dumps(encoded, sort_keys=True),
            )
            for relation in view.relations()
        },
    }


def decode_committed_state(body: Dict) -> PyTuple[DatabaseSchema, FrozenDatabase, int]:
    """Decode a committed-state body; the inverse of :func:`encode_committed_state`."""
    schema = decode_schema(body["schema"])
    contents = {
        relation: frozenset(decode_tuple(row) for row in rows)
        for relation, rows in body["relations"].items()
    }
    for relation in schema.relation_names():
        contents.setdefault(relation, frozenset())
    return schema, FrozenDatabase(schema, contents), body["watermark"]


def write_snapshot(path: str, view: DatabaseView, watermark: int) -> None:
    """Freeze *view* (the committed store at *watermark*) into one file."""
    body = dict(encode_committed_state(view, watermark))
    body["v"] = WIRE_VERSION
    body["t"] = "snapshot"
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "wb") as handle:
        handle.write(dumps(body) + b"\n")


def read_snapshot(path: str) -> PyTuple[DatabaseSchema, FrozenDatabase, int]:
    """Load a snapshot file; returns ``(schema, frozen database, watermark)``."""
    with open(path, "rb") as handle:
        body = json.loads(handle.read().decode("utf-8"))
    _check_version(body)
    if body.get("t") != "snapshot":
        raise CodecError("not a snapshot file: {!r}".format(path))
    return decode_committed_state(body)
