"""The delta mirror: an incrementally synchronized SQLite shadow of a store.

The SQL chase path (:mod:`repro.query.sql_chase`) evaluates violation queries
set-based inside SQLite, which needs the store's contents as SQL tables.
Reloading them per query (or per chase step) would drown the win; this mirror
keeps the shadow synchronized *incrementally* — the HTAP replica idiom:

* **Versioned mode** (:meth:`attach_store`): the mirror holds the store's
  *committed baseline*.  :meth:`VersionedDatabase.compact_below` pushes the
  newly committed priorities' write-log entries here (seq-sorted) just before
  dropping them; :meth:`sync` replays them onto the baseline and flushes the
  net row changes in **one** SQLite transaction with ``executemany`` — never a
  full reload.  Rollbacks need no mirror work (only committed entries are ever
  pushed), and with compaction disabled the mirror simply stays at the initial
  baseline while :meth:`delta_for` picks the committed-but-uncompacted
  priorities up from the log — correctness never depends on compaction.
  A reader at priority *j* then sees *baseline + delta_for(j)*: per touched
  tuple identity the visible content is compared against the baseline content,
  with whole-view containment checks restoring set semantics across
  identities (several tids can carry equal row values; the mirror refcounts).
* **Direct mode** (:meth:`reset_from` + :meth:`apply_writes_direct`): the
  single-version :class:`~repro.core.chase.ChaseEngine` resets the shadow at
  the start of each run (its database may have been mutated externally in
  between) and applies each step's effective writes as it goes; the delta is
  always empty.

Tables are created with per-attribute indexes
(:func:`~repro.query.sql.create_index_statements` — always on here: the
violation joins constrain arbitrary attribute pairs) and the connection runs
``synchronous = OFF`` in autocommit with explicit ``BEGIN``/``COMMIT`` around
every batch, mirroring the reworked SQLite backend's discipline.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple as PyTuple

import sqlite3

from ..codec.rows import decode_row, encode_row
from ..core.schema import DatabaseSchema
from ..core.tuples import Tuple
from ..core.writes import Write, WriteKind
from ..query.sql import (
    create_index_statements,
    create_table_statement,
    quote_identifier,
)
from .interface import DatabaseView

__all__ = ["DeltaMirror"]


class DeltaMirror:
    """A SQLite shadow of a repository, synchronized incrementally."""

    def __init__(self, schema: DatabaseSchema):
        self._schema = schema
        self._connection = sqlite3.connect(":memory:")
        self._connection.isolation_level = None
        self._connection.execute("PRAGMA synchronous = OFF")
        self._connection.execute("BEGIN")
        for relation in schema.relation_names():
            self._connection.execute(create_table_statement(schema, relation))
            for statement in create_index_statements(schema, relation):
                self._connection.execute(statement)
        self._connection.execute("COMMIT")
        #: Row value -> number of justifications currently mirrored.  A row
        #: is physically present in its table iff its count is positive; the
        #: count tracks how many tuple identities (versioned mode) or bare
        #: presences (direct mode: 0/1) carry the value, so a DELETE only
        #: fires when the last justification disappears.
        self._row_counts: Dict[Tuple, int] = {}
        # ---- versioned mode ----
        self._store = None
        #: tid -> committed baseline content (``None`` = committed deletion).
        self._baseline_rows: Dict[int, Optional[Tuple]] = {}
        #: tid -> highest seq applied to the baseline.  Commit pushes arrive
        #: seq-sorted *per push*, but a tuple touched by several committing
        #: priorities can see its entries split across pushes out of seq
        #: order; max-seq-wins keeps the baseline at the newest committed
        #: version regardless of push interleaving.
        self._baseline_seqs: Dict[int, int] = {}
        self._pending: List = []
        #: delta_for memo, valid for one store mutation stamp at a time.
        self._memo_stamp: Optional[int] = None
        self._delta_memo: Dict[float, Dict] = {}
        # ---- introspection ----
        self.syncs = 0
        self.rows_inserted = 0
        self.rows_deleted = 0
        self.entries_applied = 0

    @property
    def schema(self) -> DatabaseSchema:
        """The mirrored schema."""
        return self._schema

    def execute(self, sql: str, parameters: Iterable[str] = ()):
        """Run one statement on the mirror connection (reads, mostly)."""
        return self._connection.execute(sql, tuple(parameters))

    def close(self) -> None:
        """Close the underlying SQLite connection."""
        self._connection.close()

    # ------------------------------------------------------------------
    # Shared row-presence bookkeeping
    # ------------------------------------------------------------------
    def _acquire(self, row: Tuple, inserts: Dict[str, List]) -> None:
        count = self._row_counts.get(row, 0)
        self._row_counts[row] = count + 1
        if count == 0:
            inserts.setdefault(row.relation, []).append(encode_row(row))

    def _release(self, row: Tuple, deletes: Dict[str, List]) -> None:
        count = self._row_counts.get(row, 0)
        if count <= 0:
            return
        if count == 1:
            del self._row_counts[row]
            deletes.setdefault(row.relation, []).append(encode_row(row))
        else:
            self._row_counts[row] = count - 1

    def _flush(self, deletes: Dict[str, List], inserts: Dict[str, List]) -> None:
        """Apply batched row changes in one transaction.

        Presence-diff semantics make ordering across the two maps irrelevant:
        a row never appears in both (acquire/release coalesce transients), so
        all deletes run before all inserts.
        """
        if not deletes and not inserts:
            return
        self._connection.execute("BEGIN")
        try:
            for relation, encoded_rows in deletes.items():
                attributes = self._schema.relation(relation).attributes
                predicate = " AND ".join(
                    "{} = ?".format(quote_identifier(attribute))
                    for attribute in attributes
                )
                self._connection.executemany(
                    "DELETE FROM {} WHERE {}".format(
                        quote_identifier(relation), predicate
                    ),
                    encoded_rows,
                )
                self.rows_deleted += len(encoded_rows)
            for relation, encoded_rows in inserts.items():
                attributes = self._schema.relation(relation).attributes
                placeholders = ", ".join("?" for _ in attributes)
                self._connection.executemany(
                    "INSERT INTO {} VALUES ({})".format(
                        quote_identifier(relation), placeholders
                    ),
                    encoded_rows,
                )
                self.rows_inserted += len(encoded_rows)
        except BaseException:
            self._connection.execute("ROLLBACK")
            raise
        self._connection.execute("COMMIT")

    # ------------------------------------------------------------------
    # Direct mode (single-version databases; the ChaseEngine)
    # ------------------------------------------------------------------
    def reset_from(self, view: DatabaseView) -> None:
        """Replace the mirror's contents with *view*'s (bulk, one transaction)."""
        self._row_counts.clear()
        self._connection.execute("BEGIN")
        try:
            for relation in self._schema.relation_names():
                self._connection.execute(
                    "DELETE FROM {}".format(quote_identifier(relation))
                )
                batch = []
                for row in view.tuples(relation):
                    if row in self._row_counts:
                        continue
                    self._row_counts[row] = 1
                    batch.append(encode_row(row))
                if batch:
                    placeholders = ", ".join(
                        "?" for _ in self._schema.relation(relation).attributes
                    )
                    self._connection.executemany(
                        "INSERT INTO {} VALUES ({})".format(
                            quote_identifier(relation), placeholders
                        ),
                        batch,
                    )
                    self.rows_inserted += len(batch)
        except BaseException:
            self._connection.execute("ROLLBACK")
            raise
        self._connection.execute("COMMIT")

    def apply_writes_direct(self, writes: Iterable[Write]) -> None:
        """Mirror one chase step's *effective* writes (direct mode).

        Matches :meth:`ChaseEngine._apply_writes` semantics: a MODIFY is
        "delete the old content, insert the new" (the insert may be a no-op
        when the new content already exists elsewhere).
        """
        deletes: Dict[str, List] = {}
        inserts: Dict[str, List] = {}
        for write in writes:
            if write.kind is WriteKind.DELETE:
                self._release(write.row, deletes)
            elif write.kind is WriteKind.INSERT:
                self._acquire_if_absent(write.row, inserts)
            else:
                if write.old_row is not None:
                    self._release(write.old_row, deletes)
                self._acquire_if_absent(write.row, inserts)
        self._flush(deletes, inserts)

    def _acquire_if_absent(self, row: Tuple, inserts: Dict[str, List]) -> None:
        """Direct-mode insert: presence is 0/1, re-inserts are no-ops."""
        if self._row_counts.get(row, 0) == 0:
            self._acquire(row, inserts)

    # ------------------------------------------------------------------
    # Versioned mode (the multiversion store; schedulers and the service)
    # ------------------------------------------------------------------
    def attach_store(self, store, watermark: float = 0) -> None:
        """Mirror *store*'s committed baseline and subscribe to its commits.

        The baseline is loaded from the committed versions at *watermark*
        (priority 0 — the initial, unlogged contents — for a store attached
        at construction, the usual case); from then on the store pushes each
        compaction's committed log entries through :meth:`enqueue_committed`.
        """
        self._store = store
        inserts: Dict[str, List] = {}
        for tid, version in store.committed_versions(watermark):
            self._baseline_seqs[tid] = version.seq
            if version.content is not None:
                self._baseline_rows[tid] = version.content
                self._acquire(version.content, inserts)
        self._flush({}, inserts)
        store.attach_chase_mirror(self)

    def enqueue_committed(self, entries) -> None:
        """Store callback: newly committed log entries (seq-sorted per push)."""
        self._pending.extend(entries)

    def sync(self) -> int:
        """Replay pending committed entries onto the baseline; returns count.

        The net row changes (presence-diff across the whole batch: a row
        transiently deleted and re-created inside one batch touches SQLite
        zero times) land in one ``BEGIN``/``COMMIT`` with ``executemany``.
        """
        if not self._pending:
            return 0
        entries, self._pending = self._pending, []
        deletes: Dict[str, List] = {}
        inserts: Dict[str, List] = {}
        for entry in entries:
            tid = entry.tid
            if entry.seq <= self._baseline_seqs.get(tid, 0):
                continue  # an older version of a tuple already advanced past
            self._baseline_seqs[tid] = entry.seq
            if entry.write.kind is WriteKind.DELETE:
                new_content = None
            else:
                new_content = entry.write.row
            old_content = self._baseline_rows.get(tid)
            if old_content == new_content:
                continue
            if old_content is not None:
                self._release(old_content, deletes)
            if new_content is not None:
                self._baseline_rows[tid] = new_content
                self._acquire(new_content, inserts)
            else:
                self._baseline_rows[tid] = None
            self.entries_applied += 1
        self._flush(deletes, inserts)
        self.syncs += 1
        return len(entries)

    def delta_for(self, priority: float) -> Dict[str, PyTuple[List, List]]:
        """The reader-visible delta vs the baseline: relation -> (removed, added).

        A reader at *priority* over the store sees exactly
        ``(mirror - removed) + added``.  Candidates are the tuple identities
        touched by any logged priority ≤ *priority* (in-flight writes, plus
        committed-but-uncompacted ones); per candidate the visible content is
        compared with the baseline content, and whole-view containment checks
        settle set semantics across identities.  Memoized per (store mutation
        stamp, priority) — one chase step asks for many mappings' queries.
        """
        store = self._store
        self.sync()
        stamp = store.mutation_stamp()
        if self._memo_stamp != stamp:
            self._delta_memo.clear()
            self._memo_stamp = stamp
        cached = self._delta_memo.get(priority)
        if cached is not None:
            return cached
        view = store.view_for(priority)
        tids: Set[int] = set()
        for logged_priority in store.priorities_in_log():
            if logged_priority <= priority:
                for entry in store.writes_by(logged_priority):
                    tids.add(entry.tid)
        removed_candidates: Set[Tuple] = set()
        added_candidates: Set[Tuple] = set()
        for tid in tids:
            baseline = self._baseline_rows.get(tid)
            visible = store.visible_content_of(tid, priority)
            if baseline == visible:
                continue
            if baseline is not None:
                removed_candidates.add(baseline)
            if visible is not None:
                added_candidates.add(visible)
        delta: Dict[str, PyTuple[List, List]] = {}
        for row in removed_candidates:
            # Removed for this reader iff no identity keeps it visible *and*
            # the mirror actually has it (another tid may share the value).
            if self._row_counts.get(row, 0) > 0 and not view.contains(row):
                delta.setdefault(row.relation, ([], []))[0].append(row)
        for row in added_candidates:
            # Visible through some identity; an addition only if the mirrored
            # table does not already carry the value.
            if self._row_counts.get(row, 0) == 0:
                delta.setdefault(row.relation, ([], []))[1].append(row)
        for removed, added in delta.values():
            removed.sort(key=encode_row)
            added.sort(key=encode_row)
        self._delta_memo[priority] = delta
        return delta

    # ------------------------------------------------------------------
    # The evaluator's entry point
    # ------------------------------------------------------------------
    def delta_for_view(self, view) -> Dict[str, PyTuple[List, List]]:
        """The delta the SQL evaluator must apply for *view*.

        Versioned mode reads the view's visibility priority; direct mode is
        kept exactly synchronized by the engine, so the delta is empty.
        """
        if self._store is not None:
            return self.delta_for(view.priority)
        return {}

    # ------------------------------------------------------------------
    # Introspection (tests and benches)
    # ------------------------------------------------------------------
    def mirrored_rows(self, relation: str) -> FrozenSet[Tuple]:
        """The rows currently stored in *relation*'s shadow table."""
        cursor = self._connection.execute(
            "SELECT * FROM {}".format(quote_identifier(relation))
        )
        return frozenset(decode_row(relation, fields) for fields in cursor.fetchall())

    def pending_entries(self) -> int:
        """Committed entries pushed but not yet applied by :meth:`sync`."""
        return len(self._pending)
