"""SQLite-backed storage and query evaluation.

The paper presents a chase step's reads as SQL queries against an RDBMS
(Example 4.1).  This backend mirrors a repository into an SQLite database —
one table per relation, one TEXT column per attribute, terms encoded through
the canonical row codec (:mod:`repro.codec.rows`, shared with the SQL
generator) — and evaluates conjunctive and violation queries by generating
SQL.

It serves two purposes:

* it demonstrates that the update-exchange machinery runs unchanged on top of
  a real SQL engine (the backend implements the same
  :class:`~repro.storage.interface.MutableDatabase` interface as the in-memory
  store, so the chase engine can use it directly), and
* it is used by tests to cross-check the in-memory query evaluator against
  SQLite on the same data.

Transaction discipline: the connection runs in autocommit mode
(``isolation_level=None``) so single-row writes are one statement with no
per-row ``commit()`` round-trip, and every bulk operation — :meth:`load_from`,
:meth:`replace_null` — wraps its statements in one explicit ``BEGIN``/
``COMMIT`` pair with ``executemany`` batching.  The historical per-row-commit
path made bulk loading O(transactions); the speedup is asserted by
``benchmarks/test_sql_chase.py``.
"""

from __future__ import annotations

import sqlite3
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence

from ..codec.rows import decode_row, decode_term, encode_row, encode_term
from ..core.atoms import Atom
from ..core.schema import DatabaseSchema, SchemaError
from ..core.terms import DataTerm, LabeledNull, Variable
from ..core.tgd import Tgd
from ..core.tuples import Tuple
from ..query.sql import (
    conjunctive_query_sql,
    create_index_statements,
    create_table_statement,
    quote_identifier,
    violation_query_sql,
)
from .interface import DatabaseView, MutableDatabase


class SQLiteDatabase(MutableDatabase):
    """A repository stored in an SQLite database (in-memory by default).

    ``create_indexes=True`` additionally creates one index per attribute
    (the :func:`~repro.query.sql.create_index_statements` companion DDL);
    the flag is off by default so the table DDL and query plans of existing
    callers are untouched.
    """

    def __init__(
        self,
        schema: DatabaseSchema,
        path: str = ":memory:",
        create_indexes: bool = False,
    ):
        self._schema = schema
        self._connection = sqlite3.connect(path)
        # Autocommit mode: the explicit BEGIN/COMMIT discipline below is the
        # only transaction control, so single statements never pay an extra
        # commit round-trip.
        self._connection.isolation_level = None
        self._connection.execute("PRAGMA synchronous = OFF")
        with self._transaction():
            for relation in schema.relation_names():
                self._connection.execute(create_table_statement(schema, relation))
                if create_indexes:
                    for statement in create_index_statements(schema, relation):
                        self._connection.execute(statement)

    @contextmanager
    def _transaction(self):
        """Run several statements as one explicit transaction."""
        self._connection.execute("BEGIN")
        try:
            yield
        except BaseException:
            self._connection.execute("ROLLBACK")
            raise
        self._connection.execute("COMMIT")

    # ------------------------------------------------------------------
    # DatabaseView
    # ------------------------------------------------------------------
    @property
    def schema(self) -> DatabaseSchema:
        return self._schema

    def relations(self) -> List[str]:
        return self._schema.relation_names()

    def tuples(self, relation: str) -> Iterator[Tuple]:
        if relation not in self._schema:
            raise SchemaError("unknown relation {!r}".format(relation))
        cursor = self._connection.execute(
            "SELECT DISTINCT * FROM {}".format(quote_identifier(relation))
        )
        for fields in cursor.fetchall():
            yield decode_row(relation, fields)

    def contains(self, row: Tuple) -> bool:
        where, parameters = self._row_predicate(row)
        cursor = self._connection.execute(
            "SELECT 1 FROM {} WHERE {} LIMIT 1".format(
                quote_identifier(row.relation), where
            ),
            parameters,
        )
        return cursor.fetchone() is not None

    def tuples_with_value(
        self, relation: str, position: int, value: DataTerm
    ) -> Iterator[Tuple]:
        attribute = self._schema.relation(relation).attributes[position]
        cursor = self._connection.execute(
            "SELECT DISTINCT * FROM {} WHERE {} = ?".format(
                quote_identifier(relation), quote_identifier(attribute)
            ),
            (encode_term(value),),
        )
        for fields in cursor.fetchall():
            yield decode_row(relation, fields)

    def count(self, relation: str) -> int:
        cursor = self._connection.execute(
            "SELECT COUNT(*) FROM (SELECT DISTINCT * FROM {})".format(
                quote_identifier(relation)
            )
        )
        return int(cursor.fetchone()[0])

    # ------------------------------------------------------------------
    # MutableDatabase
    # ------------------------------------------------------------------
    def insert(self, row: Tuple) -> bool:
        self._schema.validate_tuple(row)
        if self.contains(row):
            return False
        placeholders = ", ".join("?" for _ in row.values)
        self._connection.execute(
            "INSERT INTO {} VALUES ({})".format(
                quote_identifier(row.relation), placeholders
            ),
            encode_row(row),
        )
        return True

    def delete(self, row: Tuple) -> bool:
        if not self.contains(row):
            return False
        where, parameters = self._row_predicate(row)
        self._connection.execute(
            "DELETE FROM {} WHERE {}".format(quote_identifier(row.relation), where),
            parameters,
        )
        return True

    def replace_null(self, null: LabeledNull, value: DataTerm) -> List[Tuple]:
        modified: List[Tuple] = []
        encoded_null = encode_term(null)
        encoded_value = encode_term(value)
        substitution = {null: value}
        with self._transaction():
            for relation in self._schema.relation_names():
                attributes = self._schema.relation(relation).attributes
                # Collect the affected rows *before* the UPDATE — one SELECT
                # per relation filtered on the encoded null — instead of
                # rescanning every relation afterwards to guess which rows
                # now carry the replacement value.
                predicate = " OR ".join(
                    "{} = ?".format(quote_identifier(attribute))
                    for attribute in attributes
                )
                cursor = self._connection.execute(
                    "SELECT DISTINCT * FROM {} WHERE {}".format(
                        quote_identifier(relation), predicate
                    ),
                    [encoded_null] * len(attributes),
                )
                affected = cursor.fetchall()
                if not affected:
                    continue
                for attribute in attributes:
                    self._connection.execute(
                        "UPDATE {} SET {} = ? WHERE {} = ?".format(
                            quote_identifier(relation),
                            quote_identifier(attribute),
                            quote_identifier(attribute),
                        ),
                        (encoded_value, encoded_null),
                    )
                for fields in affected:
                    modified.append(
                        decode_row(relation, fields).substitute(substitution)
                    )
        return modified

    def snapshot(self) -> DatabaseView:
        from .memory import FrozenDatabase

        return FrozenDatabase(
            self._schema,
            {name: frozenset(self.tuples(name)) for name in self._schema.relation_names()},
        )

    # ------------------------------------------------------------------
    # Bulk loading and SQL-level query evaluation
    # ------------------------------------------------------------------
    def load_from(self, view: DatabaseView) -> None:
        """Copy every tuple of *view* into the SQLite mirror.

        One transaction, one ``executemany`` per relation.  The per-row
        ``WHERE NOT EXISTS`` guard preserves set semantics against whatever
        the table already holds (and against earlier rows of the same batch),
        so the result is identical to the historical insert-per-row loop.
        """
        with self._transaction():
            for relation in view.relations():
                relation_schema = self._schema.relation(relation)
                placeholders = ", ".join("?" for _ in relation_schema.attributes)
                guard = " AND ".join(
                    "{} = ?".format(quote_identifier(attribute))
                    for attribute in relation_schema.attributes
                )
                statement = (
                    "INSERT INTO {table} SELECT {placeholders} "
                    "WHERE NOT EXISTS (SELECT 1 FROM {table} WHERE {guard})"
                ).format(
                    table=quote_identifier(relation),
                    placeholders=placeholders,
                    guard=guard,
                )
                batch = []
                for row in view.tuples(relation):
                    self._schema.validate_tuple(row)
                    encoded = encode_row(row)
                    batch.append(encoded + encoded)
                if batch:
                    self._connection.executemany(statement, batch)

    def evaluate_conjunctive_sql(
        self,
        atoms: Sequence[Atom],
        answer_variables: Sequence[Variable],
        seed: Optional[Dict[Variable, DataTerm]] = None,
    ) -> frozenset:
        """Evaluate a conjunctive query through generated SQL."""
        sql, parameters = conjunctive_query_sql(
            atoms, answer_variables, self._schema, seed=seed
        )
        cursor = self._connection.execute(sql, parameters)
        answers = set()
        for fields in cursor.fetchall():
            answers.add(tuple(decode_term(field) for field in fields))
        return frozenset(answers)

    def evaluate_violation_sql(
        self, tgd: Tgd, seed: Optional[Dict[Variable, DataTerm]] = None
    ) -> frozenset:
        """Evaluate the violation query of *tgd* through generated SQL.

        Returns the set of LHS-variable assignments (as frozensets of
        ``(variable, value)`` pairs) for which the mapping is violated —
        comparable to the bindings of
        :class:`~repro.query.violation_query.ViolationRow`.
        """
        sql, parameters, answer_variables = violation_query_sql(
            tgd, self._schema, seed=seed
        )
        cursor = self._connection.execute(sql, parameters)
        results = set()
        for fields in cursor.fetchall():
            assignment = frozenset(
                (variable, decode_term(field))
                for variable, field in zip(answer_variables, fields)
            )
            results.add(assignment)
        return frozenset(results)

    def close(self) -> None:
        """Close the underlying SQLite connection."""
        self._connection.close()

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _row_predicate(self, row: Tuple):
        relation_schema = self._schema.relation(row.relation)
        clauses = []
        parameters = []
        for attribute, value in zip(relation_schema.attributes, row.values):
            clauses.append("{} = ?".format(quote_identifier(attribute)))
            parameters.append(encode_term(value))
        return " AND ".join(clauses), parameters
