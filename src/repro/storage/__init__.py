"""Storage package: in-memory, multiversion and SQLite backends."""

from .index import PositionIndex
from .interface import DatabaseView, MutableDatabase, StorageError, dump_sorted
from .memory import FrozenDatabase, MemoryDatabase
from .overlay import OverlayView, view_with_write, view_without_write
from .sqlite_backend import SQLiteDatabase
from .versioned import (
    LATEST,
    Version,
    VersionedDatabase,
    VersionedTuple,
    VersionedView,
    VersionedWrite,
)
from .durable import WriteLogSegments, read_snapshot, write_snapshot

__all__ = [
    "DatabaseView",
    "FrozenDatabase",
    "LATEST",
    "MemoryDatabase",
    "MutableDatabase",
    "OverlayView",
    "PositionIndex",
    "SQLiteDatabase",
    "StorageError",
    "Version",
    "VersionedDatabase",
    "VersionedTuple",
    "VersionedView",
    "VersionedWrite",
    "WriteLogSegments",
    "dump_sorted",
    "read_snapshot",
    "view_with_write",
    "view_without_write",
    "write_snapshot",
]
