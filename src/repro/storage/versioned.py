"""Multiversion store with per-update visibility (Section 4.1).

The optimistic concurrency-control algorithm needs two guarantees from
storage:

* an update's writes must not pollute the reads of *lower*-numbered updates —
  achieved with tuple versions: for an update numbered ``j`` the visible
  version of a tuple is the one with the largest version number among those
  created by updates numbered at most ``j``;
* aborting an update must undo its writes — achieved by removing every
  version the update created (the update's restart then re-executes from its
  initial operation).

Versions are numbered by a single global sequence, which realizes the paper's
"largest number" rule while keeping per-update rollback cheap.

The write log is *indexed*: besides the global, seq-ordered log the store
partitions logged writes by writing priority, by (priority, relation) and by
(priority, labeled null touched).  The dependency trackers (Section 5.1) are
the hot consumers — instead of filtering the full log per read query they ask
for "writes by update *j* touching relations R / null x", which is what turns
tracker cost from O(run length) per read into O(relevant writes).

Long-running callers additionally *compact* the store below the scheduler's
commit watermark (:meth:`VersionedDatabase.compact_below`): committed version
chains collapse to their newest committed version, committed log entries are
dropped, and the content indexes are pruned, so a service session's storage
footprint tracks the in-flight set rather than everything ever served.
"""

from __future__ import annotations

import itertools
from bisect import bisect_right
from collections import defaultdict
from collections.abc import Sequence as SequenceABC
from dataclasses import dataclass, field
from heapq import merge as heap_merge
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple as PyTuple,
)

from ..core.schema import DatabaseSchema, SchemaError
from ..core.terms import DataTerm, LabeledNull
from ..core.tuples import Tuple
from ..core.writes import Write, WriteKind
from .interface import DatabaseView, StorageError
from .memory import FrozenDatabase


@dataclass(frozen=True)
class Version:
    """One version of one stored tuple."""

    #: Global creation sequence number (the paper's per-tuple version number,
    #: realized globally so comparisons never tie).
    seq: int
    #: Priority number of the update that created this version.
    priority: int
    #: Tuple content after the write; ``None`` marks a deletion version.
    content: Optional[Tuple]


@dataclass
class VersionedTuple:
    """A tuple identity together with all its versions (newest last)."""

    tid: int
    relation: str
    versions: List[Version] = field(default_factory=list)

    def visible_version(self, priority: int) -> Optional[Version]:
        """The version visible to an update numbered *priority* (or ``None``).

        Versions are kept seq-sorted (appends use a monotone global sequence
        and compaction preserves order), so the newest-first scan returns at
        the *first* version the priority may see instead of scanning the
        whole chain.
        """
        for version in reversed(self.versions):
            if version.priority <= priority:
                return version
        return None

    def visible_content(self, priority: int) -> Optional[Tuple]:
        """The visible tuple content, or ``None`` when invisible/deleted."""
        version = self.visible_version(priority)
        if version is None:
            return None
        return version.content


@dataclass(frozen=True)
class VersionedWrite:
    """A write as recorded in the store's log: the write plus its provenance."""

    seq: int
    priority: int
    tid: int
    write: Write


class WriteLogView(SequenceABC):
    """A read-only, copy-free window onto a list of logged writes.

    :meth:`VersionedDatabase.write_log` and :meth:`VersionedDatabase.writes_by`
    used to copy their backing lists on every call — an O(n) allocation per
    *read query* once the trackers got involved.  This view exposes the same
    sequence protocol (iteration, indexing, ``len``) without the copy; it also
    compares equal to plain sequences so existing call sites keep working.
    """

    __slots__ = ("_entries",)

    def __init__(self, entries: Sequence[VersionedWrite]):
        self._entries = entries

    def __len__(self) -> int:
        return len(self._entries)

    def __getitem__(self, index):
        return self._entries[index]

    def __iter__(self) -> Iterator[VersionedWrite]:
        return iter(self._entries)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, WriteLogView):
            return list(self._entries) == list(other._entries)
        if isinstance(other, (list, tuple)):
            return list(self._entries) == list(other)
        return NotImplemented

    def __repr__(self) -> str:
        return "WriteLogView({!r})".format(list(self._entries))


_EMPTY_LOG: PyTuple[VersionedWrite, ...] = ()


#: Priority value that sees every committed and uncommitted version.
LATEST = float("inf")


class VersionedDatabase:
    """The multiversion repository shared by all concurrently running updates."""

    def __init__(self, schema: DatabaseSchema):
        self._schema = schema
        self._tuples: Dict[int, VersionedTuple] = {}
        self._by_relation: Dict[str, Set[int]] = {
            name: set() for name in schema.relation_names()
        }
        self._tid_counter = itertools.count(1)
        self._seq_counter = itertools.count(1)
        self._write_log: List[VersionedWrite] = []
        # Indexed write log: by priority, by (priority, relation) and by
        # (priority, touched null), each in seq order.  ``_log_seqs`` mirrors
        # ``_log_by_priority`` with the bare seq numbers so trackers can
        # bisect for "position of this write within update j's log".
        self._log_by_priority: Dict[int, List[VersionedWrite]] = {}
        self._log_seqs: Dict[int, List[int]] = {}
        self._log_by_relation: Dict[int, Dict[str, List[VersionedWrite]]] = {}
        self._log_by_null: Dict[int, Dict[LabeledNull, List[VersionedWrite]]] = {}
        # Indexes over *every version's* content, keyed to tuple identities.
        # They over-approximate (a tid stays indexed under contents of old
        # versions and may outlive a rollback), so views re-check the visible
        # content — but they turn the chase-hot correction queries from
        # relation scans into bucket intersections, mirroring PositionIndex
        # on the single-version store.
        self._value_index: Dict[PyTuple[str, int, DataTerm], Set[int]] = defaultdict(set)
        self._null_index: Dict[LabeledNull, Set[int]] = defaultdict(set)
        #: Monotone stamp bumped by every mutation (write, rollback,
        #: compaction).  Memoizing consumers — the PRECISE tracker's delta
        #: verdict cache — key their entries to it.
        self._mutation_stamp = 0
        #: Per-relation mutation stamps (same counter domain): the stamp of a
        #: relation changes exactly when some version of some tuple of that
        #: relation is created, removed or collapsed.  Consumers whose cached
        #: answers only read a known relation set — the PRECISE delta-verdict
        #: memo keys on a query's read relations — invalidate per relation
        #: instead of on every store mutation.
        self._relation_stamps: Dict[str, int] = {}
        #: Number of compaction passes performed (introspection).
        self.compactions = 0
        #: Optional durable redo log (:class:`~repro.storage.durable.WriteLogSegments`):
        #: when attached, every applied write, rollback and compaction is
        #: mirrored to codec-encoded segment files (see :meth:`attach_segments`).
        self._segments = None
        #: Attached SQL-chase mirrors (:class:`~repro.storage.mirror.DeltaMirror`):
        #: :meth:`compact_below` pushes each newly committed priority's log
        #: entries to them (seq-sorted) just before dropping those entries,
        #: so the mirrors' committed baseline can advance incrementally
        #: without ever re-reading the store.
        self._chase_mirrors: List = []

    # ------------------------------------------------------------------
    # Loading and basic accessors
    # ------------------------------------------------------------------
    @property
    def schema(self) -> DatabaseSchema:
        """The database schema."""
        return self._schema

    def load_initial(self, view: DatabaseView, priority: int = 0) -> None:
        """Load an initial, mapping-satisfying database as priority-0 versions.

        Priority 0 is lower than every real update number, so the initial
        contents are visible to everyone; loading does not go through the
        write log (the initial database is not attributable to any update).
        """
        for relation in view.relations():
            for row in view.tuples(relation):
                self._new_tuple(row, priority, log_write=None)

    def attach_segments(self, segments) -> None:
        """Enable durable mode: mirror the write log to *segments*.

        *segments* is a :class:`~repro.storage.durable.WriteLogSegments`.
        From this call on, every applied write is appended to the segment
        files through the wire codec, rollbacks append tombstones, and
        :meth:`compact_below` both records the watermark and drops fully
        covered segment files — so ``snapshot_to(path, watermark)`` plus the
        surviving segments always reproduce the store (see
        :mod:`repro.storage.durable`).
        """
        self._segments = segments

    @property
    def segments(self):
        """The attached durable segment log (``None`` in memory-only mode)."""
        return self._segments

    def attach_chase_mirror(self, sink) -> None:
        """Subscribe *sink* to committed write-log entries.

        *sink* needs one method, ``enqueue_committed(entries)``; it is called
        from :meth:`compact_below` with the committing priorities' log entries
        in seq order, before those entries leave the log.  Rollbacks are
        never forwarded — a rolled-back priority has no log entries left by
        the time it could commit, so sinks only ever see durable history.
        """
        self._chase_mirrors.append(sink)

    def committed_versions(
        self, watermark: float
    ) -> Iterator[PyTuple[int, Version]]:
        """``(tid, version)`` for every tuple's visible version at *watermark*.

        Deletion versions are included (``version.content is None``) so a
        consumer seeding per-tid baseline state sees committed deletions too.
        """
        for tid, record in self._tuples.items():
            version = record.visible_version(watermark)
            if version is not None:
                yield tid, version

    def visible_content_of(self, tid: int, priority: float) -> Optional[Tuple]:
        """The content of tuple identity *tid* visible at *priority* (or None)."""
        record = self._tuples.get(tid)
        if record is None:
            return None
        return record.visible_content(priority)

    def snapshot_to(self, path: str, watermark: float) -> None:
        """Persist the committed store at *watermark* as one codec snapshot."""
        from .durable import write_snapshot

        write_snapshot(path, self.view_for(watermark), int(watermark))

    @classmethod
    def restore_from(cls, path: str) -> "PyTuple[VersionedDatabase, int]":
        """Rebuild a store from a :meth:`snapshot_to` file.

        Returns ``(store, watermark)``: the snapshot's rows are loaded as
        priority-0 initial contents (visible to every future update), exactly
        like :meth:`load_initial` — a restored store starts a fresh priority
        sequence, which is what the service layer's checkpoint/restore wants.
        """
        from .durable import read_snapshot

        _, frozen, watermark = read_snapshot(path)
        store = cls(frozen.schema)
        store.load_initial(frozen)
        return store, watermark

    def write_log(self) -> WriteLogView:
        """The full write log, oldest first (a read-only, copy-free view)."""
        return WriteLogView(self._write_log)

    def writes_by(self, priority: int) -> WriteLogView:
        """All logged writes by the update numbered *priority* (O(1) lookup)."""
        return WriteLogView(self._log_by_priority.get(priority, _EMPTY_LOG))

    def write_count_by(self, priority: int) -> int:
        """Number of logged writes by the update numbered *priority*."""
        return len(self._log_by_priority.get(priority, _EMPTY_LOG))

    def writes_by_touching_relation(
        self, priority: int, relation: str
    ) -> Sequence[VersionedWrite]:
        """Writes by *priority* into *relation*, in seq order (O(1) lookup)."""
        buckets = self._log_by_relation.get(priority)
        if not buckets:
            return _EMPTY_LOG
        bucket = buckets.get(relation)
        if bucket is None:
            return _EMPTY_LOG
        return WriteLogView(bucket)

    def writes_by_touching_relations(
        self, priority: int, relations: Iterable[str]
    ) -> Sequence[VersionedWrite]:
        """Writes by *priority* into any of *relations*, merged in seq order."""
        buckets = self._log_by_relation.get(priority)
        if not buckets:
            return _EMPTY_LOG
        selected = [buckets[name] for name in relations if name in buckets]
        if not selected:
            return _EMPTY_LOG
        if len(selected) == 1:
            return WriteLogView(selected[0])
        return list(heap_merge(*selected, key=lambda entry: entry.seq))

    def writes_by_touching_null(
        self, priority: int, null: LabeledNull
    ) -> Sequence[VersionedWrite]:
        """Writes by *priority* whose touched rows contain *null*, in seq order."""
        buckets = self._log_by_null.get(priority)
        if not buckets:
            return _EMPTY_LOG
        bucket = buckets.get(null)
        if bucket is None:
            return _EMPTY_LOG
        return WriteLogView(bucket)

    def log_position(self, priority: int, seq: int) -> int:
        """1-based rank of the write numbered *seq* within *priority*'s log.

        The PRECISE tracker uses this to reconstruct, in O(log n), how many of
        an update's writes a full scan would have examined before reaching
        *seq* — which is what keeps its ``cost_units`` accounting identical to
        the historical scan while the actual work is index-driven.
        """
        return bisect_right(self._log_seqs.get(priority, []), seq)

    def mutation_stamp(self) -> int:
        """Monotone counter bumped by every write, rollback and compaction."""
        return self._mutation_stamp

    def relation_stamp(self, relation: str) -> int:
        """Monotone counter bumped by every mutation touching *relation*.

        ``relation_stamp(R)`` is unchanged between two moments iff no version
        of any tuple of ``R`` was created, removed or collapsed in between, so
        any cached answer that only reads ``R`` (for a fixed visibility
        priority) is still valid.
        """
        return self._relation_stamps.get(relation, 0)

    def _bump_relations(self, relations: Iterable[str]) -> None:
        """Advance the global stamp and the stamps of *relations* together."""
        self._mutation_stamp += 1
        stamp = self._mutation_stamp
        for relation in relations:
            self._relation_stamps[relation] = stamp

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def view_for(self, priority: float) -> "VersionedView":
        """The snapshot visible to an update numbered *priority*."""
        return VersionedView(self, priority)

    def latest_view(self) -> "VersionedView":
        """The snapshot that sees every version (for inspection and tests)."""
        return VersionedView(self, LATEST)

    def materialize(self, priority: float = LATEST) -> FrozenDatabase:
        """Freeze the view at *priority* into an immutable database."""
        view = self.view_for(priority)
        return FrozenDatabase(
            self._schema,
            {name: frozenset(view.tuples(name)) for name in self._schema.relation_names()},
        )

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def apply_write(self, write: Write, priority: int) -> Optional[VersionedWrite]:
        """Apply *write* on behalf of the update numbered *priority*.

        Returns the logged write, or ``None`` when the write had no effect
        (inserting an already-visible tuple, deleting an invisible one).
        """
        if write.kind is WriteKind.INSERT:
            return self._insert(write, priority)
        if write.kind is WriteKind.DELETE:
            return self._delete(write, priority)
        return self._modify(write, priority)

    def apply_writes(self, writes, priority: int) -> List[VersionedWrite]:
        """Apply several writes; returns the logged writes that had effect.

        This is the bulk write path (one chase step's write set arrives here
        in one call): version-chain and content-index maintenance happen per
        write as before, but the write-log indexes are extended with **one**
        :meth:`extend_log` pass and the relation stamps are bumped once for
        the batch's touched-relation union.  No read can interleave within
        the call, so deferring the log/stamp maintenance to the end of the
        batch is unobservable — every external consumer sees the same log and
        the same stamp transitions as under the per-row path.
        """
        applied: List[VersionedWrite] = []
        touched: Set[str] = set()
        try:
            for write in writes:
                if write.kind is WriteKind.INSERT:
                    logged = self._insert(write, priority, defer=True)
                elif write.kind is WriteKind.DELETE:
                    logged = self._delete(write, priority, defer=True)
                else:
                    logged = self._modify(write, priority, defer=True)
                if logged is not None:
                    applied.append(logged)
                    touched.add(write.row.relation)
                    if write.old_row is not None:
                        touched.add(write.old_row.relation)
        except BaseException:
            # A failing write (bad arity, malformed modification) must not
            # leave earlier applied versions unlogged: rollback() undoes an
            # update through its log entries, so the log is completed for
            # whatever was applied before re-raising.
            if applied:
                self.extend_log(applied)
                self._bump_relations(touched)
            raise
        if applied:
            self.extend_log(applied)
            self._bump_relations(touched)
        return applied

    def _next_seq(self) -> int:
        return next(self._seq_counter)

    def _index_content(self, tid: int, row: Tuple) -> None:
        for position, value in enumerate(row.values):
            self._value_index[(row.relation, position, value)].add(tid)
        for null in row.null_set():
            self._null_index[null].add(tid)

    def _append_log(self, entry: VersionedWrite) -> None:
        self._write_log.append(entry)
        if self._segments is not None:
            self._segments.append((entry,))
        priority = entry.priority
        self._log_by_priority.setdefault(priority, []).append(entry)
        self._log_seqs.setdefault(priority, []).append(entry.seq)
        relation_buckets = self._log_by_relation.setdefault(priority, {})
        relation_buckets.setdefault(entry.write.relation, []).append(entry)
        touched_nulls: Set[LabeledNull] = set()
        for row in entry.write.rows_touched():
            touched_nulls.update(row.null_set())
        if touched_nulls:
            null_buckets = self._log_by_null.setdefault(priority, {})
            for null in touched_nulls:
                null_buckets.setdefault(null, []).append(entry)

    def extend_log(self, entries: Sequence[VersionedWrite]) -> None:
        """Bulk-append *entries* (seq-ascending) to the log and its indexes.

        The batch is grouped by writing priority first, so each per-priority
        bucket dictionary is resolved once per batch instead of once per
        entry — the dict-churn that made the per-row :meth:`_append_log` the
        hot allocation site on bursty chase steps.  Callers must pass entries
        in seq order with seqs above everything already logged (which is what
        :meth:`apply_writes` produces); bucket seq-ordering relies on it.
        """
        if not entries:
            return
        self._write_log.extend(entries)
        if self._segments is not None:
            self._segments.append(entries)
        by_priority: Dict[int, List[VersionedWrite]] = {}
        for entry in entries:
            by_priority.setdefault(entry.priority, []).append(entry)
        for priority, members in by_priority.items():
            log = self._log_by_priority.setdefault(priority, [])
            seqs = self._log_seqs.setdefault(priority, [])
            relation_buckets = self._log_by_relation.setdefault(priority, {})
            null_buckets: Optional[Dict[LabeledNull, List[VersionedWrite]]] = None
            for entry in members:
                log.append(entry)
                seqs.append(entry.seq)
                relation_buckets.setdefault(entry.write.relation, []).append(entry)
                touched_nulls: Set[LabeledNull] = set()
                for row in entry.write.rows_touched():
                    touched_nulls.update(row.null_set())
                if touched_nulls:
                    if null_buckets is None:
                        null_buckets = self._log_by_null.setdefault(priority, {})
                    for null in touched_nulls:
                        null_buckets.setdefault(null, []).append(entry)

    def _new_tuple(
        self,
        row: Tuple,
        priority: int,
        log_write: Optional[Write],
        defer: bool = False,
    ) -> VersionedWrite:
        self._schema.validate_tuple(row)
        tid = next(self._tid_counter)
        record = VersionedTuple(tid=tid, relation=row.relation)
        seq = self._next_seq()
        record.versions.append(Version(seq=seq, priority=priority, content=row))
        self._tuples[tid] = record
        self._by_relation[row.relation].add(tid)
        self._index_content(tid, row)
        if not defer:
            self._bump_relations((row.relation,))
        logged = VersionedWrite(
            seq=seq, priority=priority, tid=tid, write=log_write or Write(WriteKind.INSERT, row)
        )
        if log_write is not None and not defer:
            self._append_log(logged)
        return logged

    def _find_visible_tid(self, row: Tuple, priority: int) -> Optional[int]:
        # Any identity whose visible content equals *row* must be indexed
        # under the first value of some version equal to *row* — so the first
        # position's bucket is a complete (over-approximate) candidate set,
        # far smaller than the whole relation.  Pure read: no store mutation
        # can happen mid-scan, so the bucket is iterated without a copy.
        if row.values:
            candidates: Iterable[int] = self._value_index.get(
                (row.relation, 0, row.values[0]), ()
            )
        else:  # pragma: no cover - zero-arity relations do not occur
            candidates = self._by_relation.get(row.relation, ())
        tuples = self._tuples
        for tid in candidates:
            record = tuples.get(tid)
            if record is not None and record.visible_content(priority) == row:
                return tid
        return None

    def _insert(
        self, write: Write, priority: int, defer: bool = False
    ) -> Optional[VersionedWrite]:
        if self._find_visible_tid(write.row, priority) is not None:
            return None
        return self._new_tuple(write.row, priority, log_write=write, defer=defer)

    def _delete(
        self, write: Write, priority: int, defer: bool = False
    ) -> Optional[VersionedWrite]:
        tid = self._find_visible_tid(write.row, priority)
        if tid is None:
            return None
        seq = self._next_seq()
        self._tuples[tid].versions.append(
            Version(seq=seq, priority=priority, content=None)
        )
        logged = VersionedWrite(seq=seq, priority=priority, tid=tid, write=write)
        if not defer:
            self._bump_relations((write.row.relation,))
            self._append_log(logged)
        return logged

    def _modify(
        self, write: Write, priority: int, defer: bool = False
    ) -> Optional[VersionedWrite]:
        if write.old_row is None:
            raise StorageError("modification write lacks its old content: {!r}".format(write))
        tid = self._find_visible_tid(write.old_row, priority)
        if tid is None:
            return None
        seq = self._next_seq()
        self._tuples[tid].versions.append(
            Version(seq=seq, priority=priority, content=write.row)
        )
        self._index_content(tid, write.row)
        logged = VersionedWrite(seq=seq, priority=priority, tid=tid, write=write)
        if not defer:
            self._bump_relations({write.row.relation, write.old_row.relation})
            self._append_log(logged)
        return logged

    # ------------------------------------------------------------------
    # Rollback
    # ------------------------------------------------------------------
    def rollback(self, priority: int) -> List[VersionedWrite]:
        """Undo every write performed by the update numbered *priority*.

        Returns the removed log entries (newest first).  Tuple identities
        created by the update disappear entirely.  The indexed log tells us
        exactly which tuples the update touched, so version and index
        maintenance is proportional to the update's own writes (not to the
        whole store); dropping the entries from the global log is one filter
        pass over it, which commit-time compaction keeps bounded by the
        in-flight writes rather than run length.
        """
        removed = self._log_by_priority.get(priority)
        if not removed:
            return []
        if self._segments is not None:
            self._segments.record_rollback(priority)
        self._bump_relations({entry.write.relation for entry in removed})
        self._drop_priority_log(priority)
        for tid in {entry.tid for entry in removed}:
            record = self._tuples.get(tid)
            if record is None:
                continue
            rolled_back = [
                version for version in record.versions if version.priority == priority
            ]
            if not rolled_back:
                continue
            record.versions = [
                version for version in record.versions if version.priority != priority
            ]
            if not record.versions:
                # The identity disappears entirely: purge its index entries so
                # an abort-heavy service does not grow dead tids in the
                # chase-hot buckets.
                del self._tuples[tid]
                self._by_relation[record.relation].discard(tid)
            # Prune index entries for the removed contents either way — values
            # no remaining version carries must not keep the tid in a bucket,
            # or the over-approximate indexes grow without bound in service
            # mode (every abort would leave a permanent residue).
            self._prune_index_entries(tid, rolled_back, record.versions)
        return list(reversed(removed))

    def _drop_priority_log(self, priority: int) -> None:
        """Remove every log entry of *priority* from the global and bucket logs."""
        self._drop_priorities_log((priority,))

    def _drop_priorities_log(self, priorities: Iterable[int]) -> None:
        """Drop several priorities' log entries in one pass over the log."""
        dropped = set(priorities)
        # In-place so outstanding WriteLogViews stay live windows onto the
        # log rather than going stale against a rebound list; one filter pass
        # regardless of how many priorities commit together.
        self._write_log[:] = [
            entry for entry in self._write_log if entry.priority not in dropped
        ]
        for priority in dropped:
            self._log_by_priority.pop(priority, None)
            self._log_seqs.pop(priority, None)
            self._log_by_relation.pop(priority, None)
            self._log_by_null.pop(priority, None)

    def _prune_index_entries(
        self,
        tid: int,
        removed: Iterable[Version],
        remaining: Iterable[Version],
    ) -> None:
        """Drop *tid* from index buckets no remaining version justifies."""
        keep_values: Set[PyTuple[str, int, DataTerm]] = set()
        keep_nulls: Set[LabeledNull] = set()
        for version in remaining:
            row = version.content
            if row is None:
                continue
            for position, value in enumerate(row.values):
                keep_values.add((row.relation, position, value))
            keep_nulls.update(row.null_set())
        for version in removed:
            row = version.content
            if row is None:
                continue
            for position, value in enumerate(row.values):
                key = (row.relation, position, value)
                if key in keep_values:
                    continue
                bucket = self._value_index.get(key)
                if bucket is not None:
                    bucket.discard(tid)
                    if not bucket:
                        del self._value_index[key]
            for null in row.null_set():
                if null in keep_nulls:
                    continue
                bucket = self._null_index.get(null)
                if bucket is not None:
                    bucket.discard(tid)
                    if not bucket:
                        del self._null_index[null]

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    def compact_below(
        self, watermark: int, priorities: Optional[Iterable[int]] = None
    ) -> int:
        """Compact version chains and the write log below *watermark*.

        The caller guarantees that every priority at or below *watermark* is
        committed (or fully rolled back) and will never read or be rolled back
        again — the optimistic scheduler's commit watermark provides exactly
        this.  Compaction then:

        * collapses, per touched tuple, all versions with priority ≤
          *watermark* into the newest one (visibility for any priority ≥
          *watermark* is unchanged — the newest committed version is the only
          one such a reader could ever see);
        * removes tuples whose committed state is a deletion and that carry no
          uncommitted versions, pruning their content-index entries;
        * drops the committed priorities' write-log entries and log indexes.

        *priorities* limits the pass to the given (newly committed) updates,
        so the incremental commit-time call touches only their tuples and
        index entries (plus one shared filter pass over the — compaction-
        bounded — global log); when omitted, every logged priority ≤
        *watermark* is compacted.  Returns the number of versions removed.
        """
        if priorities is None:
            targets = [
                priority
                for priority in self._log_by_priority
                if priority <= watermark
            ]
        else:
            targets = [
                priority
                for priority in priorities
                if priority <= watermark and priority in self._log_by_priority
            ]
        if not targets:
            return 0
        touched_tids: Set[int] = set()
        touched_relations: Set[str] = set()
        for priority in targets:
            for entry in self._log_by_priority[priority]:
                touched_tids.add(entry.tid)
                touched_relations.add(entry.write.relation)
        removed_versions = 0
        for tid in touched_tids:
            record = self._tuples.get(tid)
            if record is None:
                continue
            below = [v for v in record.versions if v.priority <= watermark]
            if not below:
                continue
            newest_below = max(below, key=lambda version: version.seq)
            above = [v for v in record.versions if v.priority > watermark]
            if newest_below.content is None and not above:
                # Committed deletion with no uncommitted resurrection: the
                # identity is dead for every possible future reader.
                removed_versions += len(record.versions)
                del self._tuples[tid]
                self._by_relation[record.relation].discard(tid)
                self._prune_index_entries(tid, record.versions, ())
                continue
            if len(below) == 1:
                continue
            dropped = [v for v in below if v is not newest_below]
            keep_seqs = {newest_below.seq}
            keep_seqs.update(version.seq for version in above)
            # Filtering the original list keeps the chain seq-sorted, which
            # the newest-first visibility scan relies on.
            record.versions = [
                version for version in record.versions if version.seq in keep_seqs
            ]
            removed_versions += len(dropped)
            self._prune_index_entries(tid, dropped, record.versions)
        if self._chase_mirrors:
            # Push the committing entries before they leave the log: sorted
            # by seq so a mirror replaying them per tid lands on the newest
            # committed version (cross-push interleavings are handled by the
            # mirror's max-seq-wins guard).
            committed_entries = sorted(
                (
                    entry
                    for priority in targets
                    for entry in self._log_by_priority[priority]
                ),
                key=lambda entry: entry.seq,
            )
            for sink in self._chase_mirrors:
                sink.enqueue_committed(committed_entries)
        self._drop_priorities_log(targets)
        # Compaction preserves visibility for every remaining reader, but it
        # does move physical versions; bump the touched relations so stamped
        # consumers stay conservatively correct.
        self._bump_relations(touched_relations)
        self.compactions += 1
        if self._segments is not None:
            # Mirror the watermark to disk: fully covered segment files can
            # go, so the durable footprint tracks the in-flight set exactly
            # like the in-memory log does.
            self._segments.compact_below(watermark)
        return removed_versions

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def version_count(self) -> int:
        """Total number of versions stored."""
        return sum(len(record.versions) for record in self._tuples.values())

    def tuple_count(self) -> int:
        """Number of tuple identities stored (visible or not)."""
        return len(self._tuples)

    def log_size(self) -> int:
        """Number of entries currently in the write log."""
        return len(self._write_log)

    def priorities_in_log(self) -> Set[int]:
        """Every update priority that has at least one logged write."""
        return set(self._log_by_priority)

    def index_entry_count(self) -> int:
        """Total (tid, bucket) memberships across the content indexes."""
        return sum(len(bucket) for bucket in self._value_index.values()) + sum(
            len(bucket) for bucket in self._null_index.values()
        )


class VersionedView(DatabaseView):
    """The read-only snapshot a given update priority observes."""

    def __init__(self, store: VersionedDatabase, priority: float):
        self._store = store
        self._priority = priority

    @property
    def priority(self) -> float:
        """The priority whose visibility rule this view applies."""
        return self._priority

    @property
    def schema(self) -> DatabaseSchema:
        return self._store.schema

    def relations(self) -> List[str]:
        return self._store.schema.relation_names()

    def tuples(self, relation: str) -> Iterator[Tuple]:
        if relation not in self._store._by_relation:
            raise SchemaError("unknown relation {!r}".format(relation))
        seen: Set[Tuple] = set()
        for tid in tuple(self._store._by_relation[relation]):
            content = self._store._tuples[tid].visible_content(self._priority)
            if content is not None and content not in seen:
                seen.add(content)
                yield content

    def contains(self, row: Tuple) -> bool:
        # Exact containment through the value index: candidates are the
        # identities indexed under the row's first value; each is re-checked
        # against its visible content (the index over-approximates).
        return self._store._find_visible_tid(row, self._priority) is not None

    def cardinality_estimate(self, relation: str) -> Optional[int]:
        # Tuple-identity count: an O(1) upper bound on the visible cardinality
        # (identities with invisible/deleted versions are included).  Exactly
        # what the cardinality-aware join planner wants — cheap and monotone
        # with the relation's real size.
        bucket = self._store._by_relation.get(relation)
        if bucket is None:
            return None
        return len(bucket)

    def change_token(self) -> Optional[object]:
        # The store's global mutation stamp plus this view's visibility rule:
        # equal tokens mean no version was created, removed or collapsed in
        # between, so every query answer is unchanged.
        return (self._store._mutation_stamp, self._priority)

    # ------------------------------------------------------------------
    # Index-accelerated correction queries (the chase hot path).
    # The store's indexes over-approximate (old versions, rolled-back
    # tids), so every hit is re-checked against the visible content.
    # ------------------------------------------------------------------
    def _visible_candidates(self, tids: Iterable[int]) -> Iterator[Tuple]:
        # Live store sets are copied so callers may write mid-iteration;
        # owned containers (fresh intersection results) pass through bare.
        if isinstance(tids, (set, frozenset)):
            tids = tuple(tids)
        return self._visible_owned(tids)

    def _visible_owned(self, tids: Iterable[int]) -> Iterator[Tuple]:
        """Visible contents of *tids*, which the caller promises not to mutate."""
        seen: Set[Tuple] = set()
        tuples = self._store._tuples
        priority = self._priority
        for tid in tids:
            record = tuples.get(tid)
            if record is None:
                continue  # rolled back entirely; stale index entry
            content = record.visible_content(priority)
            if content is not None and content not in seen:
                seen.add(content)
                yield content

    def tuples_with_value(
        self, relation: str, position: int, value: DataTerm
    ) -> Iterator[Tuple]:
        bucket = self._store._value_index.get((relation, position, value), ())
        for content in self._visible_candidates(bucket):
            if content.relation == relation and content[position] == value:
                yield content

    def tuples_containing_null(self, null: LabeledNull) -> Iterator[Tuple]:
        bucket = self._store._null_index.get(null, ())
        for content in self._visible_candidates(bucket):
            if content.contains_null(null):
                yield content

    def more_specific_tuples(self, row: Tuple) -> List[Tuple]:
        # Intersect the constant positions' buckets smallest-first: the
        # narrowest bucket bounds every intermediate set, and an empty bucket
        # short-circuits before any set is built.  This is the chase's
        # hottest correction query, so the candidate set is owned (fresh)
        # end-to-end — no defensive copies.
        buckets = []
        for position, value in enumerate(row.values):
            if isinstance(value, LabeledNull):
                continue
            bucket = self._store._value_index.get((row.relation, position, value))
            if not bucket:
                return []
            buckets.append(bucket)
        if not buckets:
            # All-null pattern: fall back to every identity of the relation
            # (copied — the store's own set must not feed a bare iteration).
            candidates: Iterable[int] = tuple(
                self._store._by_relation.get(row.relation, ())
            )
        else:
            buckets.sort(key=len)
            smallest = set(buckets[0])
            for bucket in buckets[1:]:
                smallest &= bucket
                if not smallest:
                    return []
            candidates = smallest
        # When the row's nulls are pairwise distinct the witnessing map
        # imposes no constraint beyond identity on the constant positions, so
        # the full per-candidate specificity check reduces to comparing those
        # positions.  The comparison is still required: the value index
        # over-approximates (a tid stays bucketed under *old* versions'
        # contents), so a candidate's visible content may no longer carry the
        # constants its bucket membership came from.
        nulls = [value for value in row.values if isinstance(value, LabeledNull)]
        if len(nulls) == len(set(nulls)):
            if self._store.schema.arity_of(row.relation) != len(row.values):
                return []  # no stored tuple can match a wrong-arity pattern
            constant_positions = [
                (position, value)
                for position, value in enumerate(row.values)
                if not isinstance(value, LabeledNull)
            ]
            return [
                content
                for content in self._visible_owned(candidates)
                if all(
                    content[position] == value
                    for position, value in constant_positions
                )
            ]
        return [
            content
            for content in self._visible_owned(candidates)
            if content.is_more_specific_than(row)
        ]
