"""Multiversion store with per-update visibility (Section 4.1).

The optimistic concurrency-control algorithm needs two guarantees from
storage:

* an update's writes must not pollute the reads of *lower*-numbered updates —
  achieved with tuple versions: for an update numbered ``j`` the visible
  version of a tuple is the one with the largest version number among those
  created by updates numbered at most ``j``;
* aborting an update must undo its writes — achieved by removing every
  version the update created (the update's restart then re-executes from its
  initial operation).

Versions are numbered by a single global sequence, which realizes the paper's
"largest number" rule while keeping per-update rollback cheap.
"""

from __future__ import annotations

import itertools
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple as PyTuple

from ..core.schema import DatabaseSchema, SchemaError
from ..core.terms import DataTerm, LabeledNull
from ..core.tuples import Tuple
from ..core.writes import Write, WriteKind
from .interface import DatabaseView, StorageError
from .memory import FrozenDatabase


@dataclass(frozen=True)
class Version:
    """One version of one stored tuple."""

    #: Global creation sequence number (the paper's per-tuple version number,
    #: realized globally so comparisons never tie).
    seq: int
    #: Priority number of the update that created this version.
    priority: int
    #: Tuple content after the write; ``None`` marks a deletion version.
    content: Optional[Tuple]


@dataclass
class VersionedTuple:
    """A tuple identity together with all its versions (newest last)."""

    tid: int
    relation: str
    versions: List[Version] = field(default_factory=list)

    def visible_version(self, priority: int) -> Optional[Version]:
        """The version visible to an update numbered *priority* (or ``None``)."""
        visible: Optional[Version] = None
        for version in self.versions:
            if version.priority <= priority:
                if visible is None or version.seq > visible.seq:
                    visible = version
        return visible

    def visible_content(self, priority: int) -> Optional[Tuple]:
        """The visible tuple content, or ``None`` when invisible/deleted."""
        version = self.visible_version(priority)
        if version is None:
            return None
        return version.content


@dataclass(frozen=True)
class VersionedWrite:
    """A write as recorded in the store's log: the write plus its provenance."""

    seq: int
    priority: int
    tid: int
    write: Write


#: Priority value that sees every committed and uncommitted version.
LATEST = float("inf")


class VersionedDatabase:
    """The multiversion repository shared by all concurrently running updates."""

    def __init__(self, schema: DatabaseSchema):
        self._schema = schema
        self._tuples: Dict[int, VersionedTuple] = {}
        self._by_relation: Dict[str, Set[int]] = {
            name: set() for name in schema.relation_names()
        }
        self._tid_counter = itertools.count(1)
        self._seq_counter = itertools.count(1)
        self._write_log: List[VersionedWrite] = []
        # Indexes over *every version's* content, keyed to tuple identities.
        # They over-approximate (a tid stays indexed under contents of old
        # versions and may outlive a rollback), so views re-check the visible
        # content — but they turn the chase-hot correction queries from
        # relation scans into bucket intersections, mirroring PositionIndex
        # on the single-version store.
        self._value_index: Dict[PyTuple[str, int, DataTerm], Set[int]] = defaultdict(set)
        self._null_index: Dict[LabeledNull, Set[int]] = defaultdict(set)

    # ------------------------------------------------------------------
    # Loading and basic accessors
    # ------------------------------------------------------------------
    @property
    def schema(self) -> DatabaseSchema:
        """The database schema."""
        return self._schema

    def load_initial(self, view: DatabaseView, priority: int = 0) -> None:
        """Load an initial, mapping-satisfying database as priority-0 versions.

        Priority 0 is lower than every real update number, so the initial
        contents are visible to everyone; loading does not go through the
        write log (the initial database is not attributable to any update).
        """
        for relation in view.relations():
            for row in view.tuples(relation):
                self._new_tuple(row, priority, log_write=None)

    def write_log(self) -> List[VersionedWrite]:
        """The full write log, oldest first."""
        return list(self._write_log)

    def writes_by(self, priority: int) -> List[VersionedWrite]:
        """All logged writes performed by the update numbered *priority*."""
        return [entry for entry in self._write_log if entry.priority == priority]

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def view_for(self, priority: float) -> "VersionedView":
        """The snapshot visible to an update numbered *priority*."""
        return VersionedView(self, priority)

    def latest_view(self) -> "VersionedView":
        """The snapshot that sees every version (for inspection and tests)."""
        return VersionedView(self, LATEST)

    def materialize(self, priority: float = LATEST) -> FrozenDatabase:
        """Freeze the view at *priority* into an immutable database."""
        view = self.view_for(priority)
        return FrozenDatabase(
            self._schema,
            {name: frozenset(view.tuples(name)) for name in self._schema.relation_names()},
        )

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def apply_write(self, write: Write, priority: int) -> Optional[VersionedWrite]:
        """Apply *write* on behalf of the update numbered *priority*.

        Returns the logged write, or ``None`` when the write had no effect
        (inserting an already-visible tuple, deleting an invisible one).
        """
        if write.kind is WriteKind.INSERT:
            return self._insert(write, priority)
        if write.kind is WriteKind.DELETE:
            return self._delete(write, priority)
        return self._modify(write, priority)

    def apply_writes(self, writes, priority: int) -> List[VersionedWrite]:
        """Apply several writes; returns the logged writes that had effect."""
        applied = []
        for write in writes:
            logged = self.apply_write(write, priority)
            if logged is not None:
                applied.append(logged)
        return applied

    def _next_seq(self) -> int:
        return next(self._seq_counter)

    def _index_content(self, tid: int, row: Tuple) -> None:
        for position, value in enumerate(row.values):
            self._value_index[(row.relation, position, value)].add(tid)
        for null in row.null_set():
            self._null_index[null].add(tid)

    def _new_tuple(
        self, row: Tuple, priority: int, log_write: Optional[Write]
    ) -> VersionedWrite:
        self._schema.validate_tuple(row)
        tid = next(self._tid_counter)
        record = VersionedTuple(tid=tid, relation=row.relation)
        seq = self._next_seq()
        record.versions.append(Version(seq=seq, priority=priority, content=row))
        self._tuples[tid] = record
        self._by_relation[row.relation].add(tid)
        self._index_content(tid, row)
        logged = VersionedWrite(
            seq=seq, priority=priority, tid=tid, write=log_write or Write(WriteKind.INSERT, row)
        )
        if log_write is not None:
            self._write_log.append(logged)
        return logged

    def _find_visible_tid(self, row: Tuple, priority: int) -> Optional[int]:
        for tid in self._by_relation.get(row.relation, ()):  # pragma: no branch
            if self._tuples[tid].visible_content(priority) == row:
                return tid
        return None

    def _insert(self, write: Write, priority: int) -> Optional[VersionedWrite]:
        if self._find_visible_tid(write.row, priority) is not None:
            return None
        return self._new_tuple(write.row, priority, log_write=write)

    def _delete(self, write: Write, priority: int) -> Optional[VersionedWrite]:
        tid = self._find_visible_tid(write.row, priority)
        if tid is None:
            return None
        seq = self._next_seq()
        self._tuples[tid].versions.append(
            Version(seq=seq, priority=priority, content=None)
        )
        logged = VersionedWrite(seq=seq, priority=priority, tid=tid, write=write)
        self._write_log.append(logged)
        return logged

    def _modify(self, write: Write, priority: int) -> Optional[VersionedWrite]:
        if write.old_row is None:
            raise StorageError("modification write lacks its old content: {!r}".format(write))
        tid = self._find_visible_tid(write.old_row, priority)
        if tid is None:
            return None
        seq = self._next_seq()
        self._tuples[tid].versions.append(
            Version(seq=seq, priority=priority, content=write.row)
        )
        self._index_content(tid, write.row)
        logged = VersionedWrite(seq=seq, priority=priority, tid=tid, write=write)
        self._write_log.append(logged)
        return logged

    # ------------------------------------------------------------------
    # Rollback
    # ------------------------------------------------------------------
    def rollback(self, priority: int) -> List[VersionedWrite]:
        """Undo every write performed by the update numbered *priority*.

        Returns the removed log entries (newest first).  Tuple identities
        created by the update disappear entirely.
        """
        removed = [entry for entry in self._write_log if entry.priority == priority]
        self._write_log = [
            entry for entry in self._write_log if entry.priority != priority
        ]
        for tid, record in list(self._tuples.items()):
            rolled_back = [
                version for version in record.versions if version.priority == priority
            ]
            if not rolled_back:
                continue
            record.versions = [
                version for version in record.versions if version.priority != priority
            ]
            if not record.versions:
                # The identity disappears entirely: purge its index entries so
                # an abort-heavy service does not grow dead tids in the
                # chase-hot buckets.  (Partially rolled-back tids keep their
                # over-approximate entries; views re-check visibility anyway.)
                del self._tuples[tid]
                self._by_relation[record.relation].discard(tid)
                self._unindex_tid(tid, rolled_back)
        return list(reversed(removed))

    def _unindex_tid(self, tid: int, versions: Iterable[Version]) -> None:
        for version in versions:
            row = version.content
            if row is None:
                continue
            for position, value in enumerate(row.values):
                key = (row.relation, position, value)
                bucket = self._value_index.get(key)
                if bucket is not None:
                    bucket.discard(tid)
                    if not bucket:
                        del self._value_index[key]
            for null in row.null_set():
                bucket = self._null_index.get(null)
                if bucket is not None:
                    bucket.discard(tid)
                    if not bucket:
                        del self._null_index[null]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def version_count(self) -> int:
        """Total number of versions stored."""
        return sum(len(record.versions) for record in self._tuples.values())

    def tuple_count(self) -> int:
        """Number of tuple identities stored (visible or not)."""
        return len(self._tuples)

    def priorities_in_log(self) -> Set[int]:
        """Every update priority that has at least one logged write."""
        return {entry.priority for entry in self._write_log}


class VersionedView(DatabaseView):
    """The read-only snapshot a given update priority observes."""

    def __init__(self, store: VersionedDatabase, priority: float):
        self._store = store
        self._priority = priority

    @property
    def priority(self) -> float:
        """The priority whose visibility rule this view applies."""
        return self._priority

    @property
    def schema(self) -> DatabaseSchema:
        return self._store.schema

    def relations(self) -> List[str]:
        return self._store.schema.relation_names()

    def tuples(self, relation: str) -> Iterator[Tuple]:
        if relation not in self._store._by_relation:
            raise SchemaError("unknown relation {!r}".format(relation))
        seen: Set[Tuple] = set()
        for tid in tuple(self._store._by_relation[relation]):
            content = self._store._tuples[tid].visible_content(self._priority)
            if content is not None and content not in seen:
                seen.add(content)
                yield content

    def contains(self, row: Tuple) -> bool:
        for content in self.tuples(row.relation):
            if content == row:
                return True
        return False

    # ------------------------------------------------------------------
    # Index-accelerated correction queries (the chase hot path).
    # The store's indexes over-approximate (old versions, rolled-back
    # tids), so every hit is re-checked against the visible content.
    # ------------------------------------------------------------------
    def _visible_candidates(self, tids: Iterable[int]) -> Iterator[Tuple]:
        seen: Set[Tuple] = set()
        for tid in tuple(tids):
            record = self._store._tuples.get(tid)
            if record is None:
                continue  # rolled back entirely; stale index entry
            content = record.visible_content(self._priority)
            if content is not None and content not in seen:
                seen.add(content)
                yield content

    def tuples_with_value(
        self, relation: str, position: int, value: DataTerm
    ) -> Iterator[Tuple]:
        bucket = self._store._value_index.get((relation, position, value), ())
        for content in self._visible_candidates(bucket):
            if content.relation == relation and content[position] == value:
                yield content

    def tuples_containing_null(self, null: LabeledNull) -> Iterator[Tuple]:
        bucket = self._store._null_index.get(null, ())
        for content in self._visible_candidates(bucket):
            if content.contains_null(null):
                yield content

    def more_specific_tuples(self, row: Tuple) -> List[Tuple]:
        candidates: Optional[Set[int]] = None
        for position, value in enumerate(row.values):
            if isinstance(value, LabeledNull):
                continue
            bucket = self._store._value_index.get((row.relation, position, value))
            if not bucket:
                return []
            candidates = set(bucket) if candidates is None else candidates & bucket
            if not candidates:
                return []
        if candidates is None:
            # All-null pattern: fall back to every identity of the relation.
            candidates = self._store._by_relation.get(row.relation, set())
        return [
            content
            for content in self._visible_candidates(candidates)
            if content.relation == row.relation and content.is_more_specific_than(row)
        ]
