"""Frontier tuples, frontier operations, and repair planning.

The Youtopia forward chase stops along a path when it generates a tuple ``t``
for which the target relation already contains a *more specific* tuple: the
system cannot know whether ``t`` is genuinely new or a duplicate of an
existing fact, so it sets ``t`` aside as a **positive frontier tuple** and
asks a human.  The human answers with a **frontier operation**:

* ``expand`` — ``t`` really is a new fact; insert it;
* ``unify`` — ``t`` refers to the same fact as a chosen more-specific tuple
  ``t'``; collapse them by substituting ``t``'s labeled nulls.

The backward chase has a symmetric notion: when several witness tuples could
be deleted to repair an RHS-violation, they become **negative frontier
tuples** and the human selects the subset to delete.

This module also contains :func:`plan_repair`: given a violation and the
current view, decide whether the repair is deterministic (no human needed) or
requires a frontier request, and report the correction queries read along the
way so that concurrency control can log them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple as PyTuple, Union

from ..query.base import ReadQuery
from ..query.correction_query import MoreSpecificQuery, NullOccurrenceQuery
from ..query.homomorphism import exists_match
from ..storage.interface import DatabaseView
from .terms import DataTerm, LabeledNull, NullFactory, Variable
from .tuples import Tuple, unification_assignment
from .violations import ReadRecorder, Violation
from .writes import Write, delete, insert, modify


class FrontierError(RuntimeError):
    """Raised when a frontier operation is malformed or no longer applicable."""


@dataclass(frozen=True)
class FrontierTuple:
    """A positive frontier tuple: generated but not inserted (Section 2.2)."""

    #: The generated tuple that was withheld from insertion.
    row: Tuple
    #: The violation whose repair generated it.
    violation: Violation
    #: Visible tuples more specific than ``row`` — the unification candidates.
    candidates: PyTuple[Tuple, ...]
    #: Labeled nulls freshly created for this firing (they occur nowhere else,
    #: so unification never needs occurrence queries for them).
    fresh_nulls: FrozenSet[LabeledNull] = frozenset()

    def inherited_nulls(self) -> FrozenSet[LabeledNull]:
        """Nulls of the tuple that were *not* freshly generated for this firing."""
        return self.row.null_set() - self.fresh_nulls

    def __repr__(self) -> str:
        return "FrontierTuple({!r}, {} candidate(s))".format(
            self.row, len(self.candidates)
        )


# ----------------------------------------------------------------------
# Frontier operations (what a user / oracle answers with)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ExpandOperation:
    """Positive frontier operation: insert the frontier tuple as a new fact."""

    frontier_tuple: FrontierTuple

    def describe(self) -> str:
        return "expand {!r}".format(self.frontier_tuple.row)


@dataclass(frozen=True)
class UnifyOperation:
    """Positive frontier operation: collapse the frontier tuple into *target*."""

    frontier_tuple: FrontierTuple
    target: Tuple

    def describe(self) -> str:
        return "unify {!r} with {!r}".format(self.frontier_tuple.row, self.target)


@dataclass(frozen=True)
class DeleteSubsetOperation:
    """Negative frontier operation: delete the chosen witness tuples."""

    rows: PyTuple[Tuple, ...]

    def describe(self) -> str:
        return "delete {}".format(", ".join(repr(row) for row in self.rows))


FrontierOperation = Union[ExpandOperation, UnifyOperation, DeleteSubsetOperation]


# ----------------------------------------------------------------------
# Repair plans
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DeterministicRepair:
    """The violation can be repaired without human input: just perform writes."""

    violation: Violation
    writes: PyTuple[Write, ...]


@dataclass(frozen=True)
class PositiveFrontierRequest:
    """A forward-chase repair needs a human decision on these frontier tuples."""

    violation: Violation
    frontier_tuples: PyTuple[FrontierTuple, ...]

    def alternatives(self) -> List[FrontierOperation]:
        """Every frontier operation a user could legally answer with.

        Used by the random oracle, which (as in the paper's experiments)
        picks uniformly among all available alternatives.
        """
        options: List[FrontierOperation] = []
        for frontier_tuple in self.frontier_tuples:
            options.append(ExpandOperation(frontier_tuple))
            for candidate in frontier_tuple.candidates:
                options.append(UnifyOperation(frontier_tuple, candidate))
        return options


@dataclass(frozen=True)
class NegativeFrontierRequest:
    """A backward-chase repair needs a human choice of witness tuples to delete."""

    violation: Violation
    candidates: PyTuple[Tuple, ...]

    def alternatives(self) -> List[FrontierOperation]:
        """One deletion alternative per single witness tuple.

        Any non-empty subset would be legal; offering the singletons keeps the
        uniform-random simulation of Section 6 simple and unbiased.  Oracles
        are free to construct larger :class:`DeleteSubsetOperation` values.
        """
        return [DeleteSubsetOperation((row,)) for row in self.candidates]


FrontierRequest = Union[PositiveFrontierRequest, NegativeFrontierRequest]
RepairPlan = Union[DeterministicRepair, PositiveFrontierRequest, NegativeFrontierRequest]


# ----------------------------------------------------------------------
# Planning
# ----------------------------------------------------------------------
def _generate_rhs_tuples(
    violation: Violation, null_factory: NullFactory
) -> PyTuple[List[Tuple], FrozenSet[LabeledNull]]:
    """Instantiate the RHS atoms of the violated mapping.

    Frontier variables take their values from the violation's assignment;
    existential variables are given fresh labeled nulls, shared across the RHS
    atoms of this firing (a tgd with several RHS atoms produces tuples that
    share those nulls and must be treated consistently — Section 2.2).
    """
    assignment: Dict[Variable, DataTerm] = violation.exported_assignment()
    fresh: Dict[Variable, LabeledNull] = {}
    for variable in sorted(violation.tgd.existential_variables(), key=lambda v: v.name):
        fresh[variable] = null_factory.fresh()
    full_assignment = dict(assignment)
    full_assignment.update(fresh)
    generated = [atom.instantiate(full_assignment) for atom in violation.tgd.rhs]
    return generated, frozenset(fresh.values())


def plan_forward_repair(
    violation: Violation,
    view: DatabaseView,
    null_factory: NullFactory,
    recorder: Optional[ReadRecorder] = None,
) -> Union[DeterministicRepair, PositiveFrontierRequest, None]:
    """Plan the forward-chase repair of an LHS-violation.

    Returns ``None`` when the violation no longer holds on *view* (another
    repair satisfied it in the meantime), a :class:`DeterministicRepair` when
    every generated tuple can be inserted outright, and a
    :class:`PositiveFrontierRequest` when nondeterminism was detected.
    """
    if not violation.still_holds(view):
        return None
    generated, fresh_nulls = _generate_rhs_tuples(violation, null_factory)
    missing = [row for row in generated if not view.contains(row)]
    frontier_tuples: List[FrontierTuple] = []
    nondeterministic = False
    for row in missing:
        query = MoreSpecificQuery(row)
        candidates = tuple(
            candidate for candidate in query.evaluate(view) if candidate != row
        )
        if recorder is not None:
            recorder(query, frozenset(candidates))
        frontier_tuple = FrontierTuple(
            row=row,
            violation=violation,
            candidates=tuple(sorted(candidates, key=repr)),
            fresh_nulls=fresh_nulls & row.null_set(),
        )
        frontier_tuples.append(frontier_tuple)
        if candidates:
            nondeterministic = True
            # The unification would rewrite every occurrence of the tuple's
            # inherited nulls: issue (and log) the occurrence queries now, as
            # the paper's chase step does.
            for null in sorted(frontier_tuple.inherited_nulls(), key=lambda n: n.name):
                occurrence = NullOccurrenceQuery(null)
                answer = occurrence.evaluate(view)
                if recorder is not None:
                    recorder(occurrence, answer)
    if not nondeterministic:
        writes = tuple(insert(row) for row in missing)
        return DeterministicRepair(violation=violation, writes=writes)
    return PositiveFrontierRequest(
        violation=violation, frontier_tuples=tuple(frontier_tuples)
    )


def plan_backward_repair(
    violation: Violation,
    view: DatabaseView,
    recorder: Optional[ReadRecorder] = None,
) -> Union[DeterministicRepair, NegativeFrontierRequest, None]:
    """Plan the backward-chase repair of an RHS-violation.

    The witness tuples are the deletion candidates.  With a single candidate
    the repair is deterministic; with several the choice is deferred to a
    human (negative frontier).  No further reads are needed (Section 4.2:
    "In the case of RHS-violations, no further reads are performed").
    """
    if not violation.still_holds(view):
        return None
    candidates = tuple(row for row in violation.witness if view.contains(row))
    if not candidates:
        return None
    if len(candidates) == 1:
        return DeterministicRepair(
            violation=violation, writes=(delete(candidates[0]),)
        )
    return NegativeFrontierRequest(violation=violation, candidates=candidates)


def plan_repair(
    violation: Violation,
    view: DatabaseView,
    null_factory: NullFactory,
    recorder: Optional[ReadRecorder] = None,
) -> Optional[RepairPlan]:
    """Plan the repair of *violation*, dispatching on its kind."""
    if violation.is_lhs():
        return plan_forward_repair(violation, view, null_factory, recorder)
    return plan_backward_repair(violation, view, recorder)


# ----------------------------------------------------------------------
# Turning frontier operations into writes
# ----------------------------------------------------------------------
def writes_for_operation(
    operation: FrontierOperation,
    view: DatabaseView,
    recorder: Optional[ReadRecorder] = None,
) -> List[Write]:
    """Translate a frontier operation into the tuple-level writes it implies.

    * ``expand`` inserts the frontier tuple.
    * ``unify`` computes the null substitution against the chosen target and
      rewrites every visible tuple containing one of the substituted nulls
      (this is where the occurrence correction queries pay off).
    * ``delete`` deletes the chosen witness tuples.
    """
    if isinstance(operation, ExpandOperation):
        return [insert(operation.frontier_tuple.row)]
    if isinstance(operation, DeleteSubsetOperation):
        if not operation.rows:
            raise FrontierError("a negative frontier operation must delete something")
        return [delete(row) for row in operation.rows]
    if isinstance(operation, UnifyOperation):
        general = operation.frontier_tuple.row
        substitution = unification_assignment(general, operation.target)
        writes: List[Write] = []
        rewritten = set()
        for null, value in substitution.items():
            occurrence = NullOccurrenceQuery(null)
            affected = occurrence.evaluate(view)
            if recorder is not None:
                recorder(occurrence, affected)
            for row in affected:
                if row in rewritten:
                    continue
                rewritten.add(row)
                new_row = row.substitute(substitution)
                if new_row != row:
                    writes.append(modify(row, new_row, null, value))
        return writes
    raise FrontierError("unknown frontier operation {!r}".format(operation))
