"""Tuples and the *more-specific-than* relation (Definition 2.4).

A :class:`Tuple` is an immutable row belonging to a named relation.  Its
fields are data terms: constants or labeled nulls.  The specificity relation
between tuples drives the forward chase's nondeterminism detection: when the
chase generates a tuple ``t`` and the target relation already contains a tuple
``t'`` that is *more specific* than ``t``, the chase stops and produces a
frontier tuple instead of inserting ``t`` (Section 2.2).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Optional, Sequence, Tuple as PyTuple

from .terms import Constant, DataTerm, LabeledNull, as_data_term, is_null


class Tuple:
    """An immutable tuple ``R(a1, ..., ak)`` of data terms.

    Tuples are value objects: two tuples are equal when they belong to the same
    relation and hold equal terms in every position.  The multiversion store
    additionally assigns tuple identifiers; those live in the storage layer,
    not here.
    """

    __slots__ = ("_relation", "_values", "_hash", "_null_set")

    def __init__(self, relation: str, values: Iterable[object]):
        self._relation = relation
        self._values: PyTuple[DataTerm, ...] = tuple(as_data_term(v) for v in values)
        self._hash = hash((self._relation, self._values))
        #: Lazily computed by :meth:`null_set` — tuples are immutable and the
        #: set is consulted on every log append, content indexing and
        #: conflict pre-filter, so recomputing it per call was pure churn.
        self._null_set: Optional[frozenset] = None

    @property
    def relation(self) -> str:
        """Name of the relation this tuple belongs to."""
        return self._relation

    @property
    def values(self) -> PyTuple[DataTerm, ...]:
        """The tuple's terms, in schema order."""
        return self._values

    @property
    def arity(self) -> int:
        """Number of attributes."""
        return len(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self) -> Iterator[DataTerm]:
        return iter(self._values)

    def __getitem__(self, index: int) -> DataTerm:
        return self._values[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Tuple):
            return NotImplemented
        return self._relation == other._relation and self._values == other._values

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        rendered = ", ".join(str(value) for value in self._values)
        return "{}({})".format(self._relation, rendered)

    # ------------------------------------------------------------------
    # Labeled-null helpers
    # ------------------------------------------------------------------
    def nulls(self) -> PyTuple[LabeledNull, ...]:
        """All labeled nulls occurring in this tuple, in positional order."""
        return tuple(value for value in self._values if is_null(value))

    def null_set(self) -> frozenset:
        """The set of distinct labeled nulls occurring in this tuple (cached)."""
        cached = self._null_set
        if cached is None:
            cached = frozenset(value for value in self._values if is_null(value))
            self._null_set = cached
        return cached

    def has_nulls(self) -> bool:
        """``True`` when at least one field is a labeled null."""
        return bool(self.null_set())

    def is_ground(self) -> bool:
        """``True`` when every field is a constant."""
        return not self.has_nulls()

    def contains_null(self, null: LabeledNull) -> bool:
        """``True`` when *null* occurs in some field of this tuple."""
        return null in self._values

    # ------------------------------------------------------------------
    # Substitution
    # ------------------------------------------------------------------
    def substitute(self, mapping: Dict[LabeledNull, DataTerm]) -> "Tuple":
        """Return a copy with every labeled null replaced per *mapping*.

        Nulls absent from *mapping* are kept unchanged.  This implements the
        effect of a null-replacement or of a frontier unification on a single
        tuple; the storage layer applies it to every tuple containing the null.
        """
        new_values = [
            mapping.get(value, value) if is_null(value) else value
            for value in self._values
        ]
        return Tuple(self._relation, new_values)

    # ------------------------------------------------------------------
    # Specificity (Definition 2.4)
    # ------------------------------------------------------------------
    def specificity_map(self, other: "Tuple") -> Optional[Dict[DataTerm, DataTerm]]:
        """Return the witnessing map when ``self`` is more specific than *other*.

        Following Definition 2.4, ``t`` (self) is *more specific than* ``t'``
        (other) if the positional map ``f(a'_i) = a_i`` is a function and the
        identity on constants.  The returned dictionary maps each term of
        *other* to the term of ``self`` it is sent to; ``None`` is returned
        when no such map exists.

        Note that the relation is reflexive (every tuple is more specific than
        itself) and that it is only defined between tuples of the same relation
        and arity.
        """
        if self._relation != other._relation or len(self) != len(other):
            return None
        assignment: Dict[DataTerm, DataTerm] = {}
        for mine, theirs in zip(self._values, other._values):
            if isinstance(theirs, Constant):
                if mine != theirs:
                    return None
                assignment[theirs] = mine
                continue
            # ``theirs`` is a labeled null: it may map to any term, but
            # consistently across positions.
            bound = assignment.get(theirs)
            if bound is None:
                assignment[theirs] = mine
            elif bound != mine:
                return None
        return assignment

    def is_more_specific_than(self, other: "Tuple") -> bool:
        """``True`` when ``self`` is more specific than *other* (Def. 2.4)."""
        return self.specificity_map(other) is not None

    def strictly_more_specific_than(self, other: "Tuple") -> bool:
        """``True`` when ``self`` is more specific than *other* and not equal."""
        return self != other and self.is_more_specific_than(other)


def make_tuple(relation: str, *values: object) -> Tuple:
    """Convenience constructor: ``make_tuple('C', 'Ithaca')``."""
    return Tuple(relation, values)


def unification_assignment(
    general: Tuple, specific: Tuple
) -> Dict[LabeledNull, DataTerm]:
    """Compute the null substitution induced by unifying *general* with *specific*.

    This is the data-level content of the *unify* frontier operation
    (Section 2.2): a user states that the frontier tuple *general* refers to
    the same fact as the already stored, more specific tuple *specific*.  The
    resulting substitution maps each labeled null of *general* to the
    corresponding term of *specific* and must then be applied globally.

    Raises :class:`ValueError` when *specific* is not in fact more specific
    than *general*, or when the substitution would be inconsistent.
    """
    if not specific.is_more_specific_than(general):
        raise ValueError(
            "{!r} is not more specific than {!r}; cannot unify".format(
                specific, general
            )
        )
    assignment: Dict[LabeledNull, DataTerm] = {}
    for general_term, specific_term in zip(general.values, specific.values):
        if not is_null(general_term):
            continue
        bound = assignment.get(general_term)
        if bound is None:
            assignment[general_term] = specific_term
        elif bound != specific_term:
            raise ValueError(
                "inconsistent unification of {} against {!r}".format(
                    general_term, specific
                )
            )
    # Drop identity bindings: unifying a null with itself is a no-op.
    return {
        null: term for null, term in assignment.items() if null != term
    }


def most_specific(tuples: Sequence[Tuple]) -> Sequence[Tuple]:
    """Filter *tuples* down to those not strictly less specific than another.

    Useful for presenting unification candidates: if both ``C(NYC)`` and
    ``C(x4)`` could be unified with a frontier tuple, only the former is a
    maximally informative choice.  Ties (equal tuples) are kept once.
    """
    kept = []
    for candidate in tuples:
        dominated = False
        for other in tuples:
            if other is candidate:
                continue
            if (
                other.strictly_more_specific_than(candidate)
                and not candidate.strictly_more_specific_than(other)
            ):
                dominated = True
                break
        if not dominated and candidate not in kept:
            kept.append(candidate)
    return kept
