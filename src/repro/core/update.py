"""User operations and the Youtopia *update* abstraction (Definition 2.6).

Three user operations can start a chase: tuple insertion, tuple deletion and
null-replacement.  An **update** is the complete sequence of database
modifications induced by one initial operation, including the frontier
operations users perform along the way; it is *positive* when the initial
operation was an insertion or null-replacement and *negative* when it was a
deletion.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..storage.interface import DatabaseView
from .frontier import FrontierOperation
from .terms import Constant, DataTerm, LabeledNull
from .tuples import Tuple
from .violations import Violation
from .writes import NullReplacement, Write, delete, insert


class OperationError(ValueError):
    """Raised when a user operation cannot be applied (e.g. deleting a missing tuple)."""


class UserOperation(ABC):
    """An initial user operation that may set off a chase."""

    @property
    @abstractmethod
    def is_positive(self) -> bool:
        """``True`` for insertions and null-replacements, ``False`` for deletions."""

    @abstractmethod
    def initial_writes(self, view: DatabaseView) -> List[Write]:
        """The tuple-level writes the operation performs, given the current view."""

    @abstractmethod
    def describe(self) -> str:
        """One-line human-readable description."""

    def target_relations(self) -> Optional[frozenset]:
        """The relations this operation's *initial* writes touch, if knowable.

        Used by compatible-group admission to batch operations whose seeds
        are pairwise disjoint (the chase may of course cascade further).
        ``None`` (the default) means "unknown" — such operations are admitted
        in a group of their own.
        """
        return None

    def __repr__(self) -> str:
        return "{}({})".format(type(self).__name__, self.describe())


class InsertOperation(UserOperation):
    """Insert a tuple supplied by a user."""

    def __init__(self, row: Tuple):
        self.row = row

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, InsertOperation):
            return NotImplemented
        return self.row == other.row

    def __hash__(self) -> int:
        return hash(("insert", self.row))

    @property
    def is_positive(self) -> bool:
        return True

    def initial_writes(self, view: DatabaseView) -> List[Write]:
        if view.contains(self.row):
            # Inserting an existing tuple is a no-op; the chase starts with an
            # empty write set and immediately terminates.
            return []
        return [insert(self.row)]

    def target_relations(self) -> Optional[frozenset]:
        return frozenset((self.row.relation,))

    def describe(self) -> str:
        return "insert {!r}".format(self.row)


class DeleteOperation(UserOperation):
    """Delete a tuple chosen by a user."""

    def __init__(self, row: Tuple):
        self.row = row

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DeleteOperation):
            return NotImplemented
        return self.row == other.row

    def __hash__(self) -> int:
        return hash(("delete", self.row))

    @property
    def is_positive(self) -> bool:
        return False

    def initial_writes(self, view: DatabaseView) -> List[Write]:
        if not view.contains(self.row):
            return []
        return [delete(self.row)]

    def target_relations(self) -> Optional[frozenset]:
        return frozenset((self.row.relation,))

    def describe(self) -> str:
        return "delete {!r}".format(self.row)


class NullReplacementOperation(UserOperation):
    """Replace every occurrence of a labeled null by a constant value."""

    def __init__(self, null: LabeledNull, value: object):
        self.null = null
        self.value: DataTerm = value if isinstance(value, (Constant, LabeledNull)) else Constant(value)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, NullReplacementOperation):
            return NotImplemented
        return self.null == other.null and self.value == other.value

    def __hash__(self) -> int:
        return hash(("replace", self.null, self.value))

    @property
    def is_positive(self) -> bool:
        return True

    def initial_writes(self, view: DatabaseView) -> List[Write]:
        affected = list(view.tuples_containing_null(self.null))
        return NullReplacement(self.null, self.value).expand(affected)

    def describe(self) -> str:
        return "replace {} by {}".format(self.null, self.value)


class UpdateStatus(enum.Enum):
    """Lifecycle of an update in a (possibly concurrent) execution."""

    PENDING = "pending"
    RUNNING = "running"
    WAITING_FRONTIER = "waiting-frontier"
    TERMINATED = "terminated"
    ABORTED = "aborted"
    #: The chase was stopped by a step or frontier budget, not by completing
    #: its work — updates may legitimately be non-terminating in Youtopia.
    BUDGET_EXHAUSTED = "budget-exhausted"


@dataclass
class UpdateRecord:
    """The complete record of one Youtopia update (Definition 2.6).

    ``writes`` lists every database modification the update performed, in
    order; ``frontier_operations`` the human (or oracle) decisions consumed;
    ``violations_processed`` how many violations were examined.  ``terminated``
    is ``False`` when the chase was stopped by a step budget — updates may
    legitimately be non-terminating in Youtopia, so engines expose a budget
    instead of looping forever.
    """

    operation: UserOperation
    writes: List[Write] = field(default_factory=list)
    frontier_operations: List[FrontierOperation] = field(default_factory=list)
    violations_processed: int = 0
    steps: int = 0
    terminated: bool = False
    status: UpdateStatus = UpdateStatus.PENDING

    @property
    def is_positive(self) -> bool:
        """Positive updates start with an insertion or null-replacement."""
        return self.operation.is_positive

    @property
    def write_count(self) -> int:
        """Number of tuple-level writes performed."""
        return len(self.writes)

    @property
    def frontier_operation_count(self) -> int:
        """Number of frontier operations consumed."""
        return len(self.frontier_operations)

    def summary(self) -> str:
        """One-line summary for logs and examples."""
        return (
            "{}: {} writes, {} frontier ops, {} violations, "
            "{} steps, {}".format(
                self.operation.describe(),
                self.write_count,
                self.frontier_operation_count,
                self.violations_processed,
                self.steps,
                "terminated" if self.terminated else "stopped by budget",
            )
        )
