"""Terms: the values that appear inside Youtopia tuples and mappings.

A Youtopia database contains *constants* and *labeled nulls* (also called
variables in the paper).  A labeled null such as ``x3`` stands for a value
that is known to exist but whose identity is not yet known; the same labeled
null may occur in several tuples, and replacing it (a *null-replacement*,
Section 2 of the paper) changes every occurrence consistently.

Mappings additionally use *mapping variables* on their left- and right-hand
sides; those are represented by :class:`Variable` and never appear inside a
stored tuple.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Iterable, Union


@dataclass(frozen=True, order=True)
class Constant:
    """A concrete, known value such as ``'Ithaca'`` or ``42``.

    Constants compare equal when their payloads compare equal.  The payload is
    stored as-is; any hashable Python value is accepted, although the workload
    generators only produce strings and integers.
    """

    value: object

    def __str__(self) -> str:
        return str(self.value)

    def __repr__(self) -> str:
        return "Constant({!r})".format(self.value)

    @property
    def is_null(self) -> bool:
        """Constants are never labeled nulls."""
        return False


@dataclass(frozen=True, order=True)
class LabeledNull:
    """A labeled null (existential placeholder) such as ``x3``.

    Labeled nulls are identified by their name: two :class:`LabeledNull`
    objects with the same name denote the same unknown value, wherever they
    occur in the database.
    """

    name: str

    def __str__(self) -> str:
        return "#{}".format(self.name)

    def __repr__(self) -> str:
        return "LabeledNull({!r})".format(self.name)

    @property
    def is_null(self) -> bool:
        """Labeled nulls are, by definition, nulls."""
        return True


@dataclass(frozen=True, order=True)
class Variable:
    """A variable appearing in a mapping or query, never inside stored data."""

    name: str

    def __str__(self) -> str:
        return "?{}".format(self.name)

    def __repr__(self) -> str:
        return "Variable({!r})".format(self.name)

    @property
    def is_null(self) -> bool:
        """Mapping variables are not labeled nulls."""
        return False


#: A term that can appear inside a stored tuple.
DataTerm = Union[Constant, LabeledNull]

#: A term that can appear inside a mapping atom or query atom.
QueryTerm = Union[Constant, Variable]

#: Any term.
Term = Union[Constant, LabeledNull, Variable]


def is_constant(term: Term) -> bool:
    """Return ``True`` when *term* is a :class:`Constant`."""
    return isinstance(term, Constant)


def is_null(term: Term) -> bool:
    """Return ``True`` when *term* is a :class:`LabeledNull`."""
    return isinstance(term, LabeledNull)


def is_variable(term: Term) -> bool:
    """Return ``True`` when *term* is a mapping/query :class:`Variable`."""
    return isinstance(term, Variable)


def as_data_term(value: object) -> DataTerm:
    """Coerce a raw Python value into a data term.

    Existing :class:`Constant` and :class:`LabeledNull` objects pass through
    unchanged; anything else is wrapped in a :class:`Constant`.  Passing a
    :class:`Variable` is an error because variables may not be stored.
    """
    if isinstance(value, (Constant, LabeledNull)):
        return value
    if isinstance(value, Variable):
        raise TypeError(
            "mapping variables cannot be stored in the database: {!r}".format(value)
        )
    return Constant(value)


class NullFactory:
    """Generates fresh labeled nulls with globally unique names.

    The chase needs fresh nulls when it fires a tgd whose right-hand side has
    existentially quantified variables (Example 1.1 in the paper: the review
    ``x3``).  A factory instance hands out names ``x1, x2, ...`` with an
    optional prefix so that nulls created by different chases are easy to tell
    apart when debugging.

    Freshness matters: a "fresh" null colliding with a null already present in
    the database would silently identify two unrelated unknowns.  Use
    :meth:`avoiding` to start numbering past whatever the database already
    contains.

    The factory is thread-safe: the optimistic scheduler may drive several
    chases whose steps interleave.
    """

    def __init__(self, prefix: str = "x", start: int = 1):
        self._prefix = prefix
        self._next = start
        self._lock = threading.Lock()

    @classmethod
    def avoiding(cls, existing_names: "Iterable[str]", prefix: str = "x") -> "NullFactory":
        """A factory whose names cannot collide with *existing_names*.

        Names of the form ``<prefix><integer>`` among *existing_names* push the
        starting index past their maximum; other names cannot collide with the
        generated pattern and are ignored.
        """
        highest = 0
        for name in existing_names:
            if name.startswith(prefix) and name[len(prefix):].isdigit():
                highest = max(highest, int(name[len(prefix):]))
        return cls(prefix=prefix, start=highest + 1)

    @classmethod
    def avoiding_view(cls, view: "object", prefix: str = "x") -> "NullFactory":
        """A factory avoiding every labeled null visible in *view*.

        *view* is any :class:`~repro.storage.interface.DatabaseView`; the
        import is kept out of this module to avoid a dependency cycle, so the
        parameter is duck-typed.
        """
        names = []
        for relation in view.relations():
            for row in view.tuples(relation):
                for null in row.null_set():
                    names.append(null.name)
        return cls.avoiding(names, prefix=prefix)

    def fresh(self) -> LabeledNull:
        """Return a labeled null that has never been returned before."""
        with self._lock:
            index = self._next
            self._next += 1
        return LabeledNull("{}{}".format(self._prefix, index))

    def fresh_many(self, count: int) -> list:
        """Return *count* distinct fresh labeled nulls."""
        return [self.fresh() for _ in range(count)]

    @property
    def prefix(self) -> str:
        """The prefix used for generated null names."""
        return self._prefix

    def state(self) -> "tuple":
        """The ``(prefix, next_index)`` pair a checkpoint persists.

        Restoring through :meth:`from_state` resumes the exact numbering, so
        nulls minted after a restart cannot collide with nulls this factory
        shipped elsewhere (in envelopes, or in another peer's store) before
        the checkpoint — which merely re-scanning the local store could not
        guarantee.
        """
        with self._lock:
            return (self._prefix, self._next)

    @classmethod
    def from_state(cls, state: "Iterable") -> "NullFactory":
        """Rebuild a factory from a persisted :meth:`state` pair."""
        prefix, next_index = state
        return cls(prefix=prefix, start=int(next_index))


#: Module-level default factory, convenient for examples and small tests.
DEFAULT_NULL_FACTORY = NullFactory()


def fresh_null() -> LabeledNull:
    """Return a fresh labeled null from the module-level default factory."""
    return DEFAULT_NULL_FACTORY.fresh()
