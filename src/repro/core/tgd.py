"""Tuple-generating dependencies (tgds), the mappings of a Youtopia repository.

A tgd has the form ``Φ(x, y) → ∃z Ψ(x, z)`` where Φ (the left-hand side, LHS)
and Ψ (the right-hand side, RHS) are conjunctions of relational atoms.  Free
variables are universally quantified; variables that appear only on the RHS
are existentially quantified and give rise to fresh labeled nulls when the
forward chase fires the mapping (Example 1.1 in the paper).

This module provides:

* the :class:`Tgd` value object with validation,
* a small concrete syntax parser (:func:`parse_tgd`), so that examples and
  fixtures can write mappings as readable strings,
* the mapping dependency graph, cycle detection and the classical weak
  acyclicity test — Youtopia explicitly *permits* cycles, and the tests use
  these utilities to demonstrate that the fixtures and generated mappings do
  contain cycles that other systems would reject.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple as PyTuple

from .atoms import Atom, atoms_relations, atoms_variables
from .schema import DatabaseSchema, SchemaError
from .terms import Constant, Variable


class TgdError(ValueError):
    """Raised for malformed tgds or unparseable tgd strings."""


class Tgd:
    """A tuple-generating dependency ``LHS → ∃ existentials . RHS``."""

    __slots__ = ("_name", "_lhs", "_rhs", "_hash")

    def __init__(
        self,
        lhs: Sequence[Atom],
        rhs: Sequence[Atom],
        name: Optional[str] = None,
    ):
        lhs_atoms = tuple(lhs)
        rhs_atoms = tuple(rhs)
        if not lhs_atoms:
            raise TgdError("a tgd needs at least one atom on the left-hand side")
        if not rhs_atoms:
            raise TgdError("a tgd needs at least one atom on the right-hand side")
        self._lhs = lhs_atoms
        self._rhs = rhs_atoms
        self._name = name or "tgd"
        self._hash = hash((self._lhs, self._rhs))

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Human-readable mapping name (``sigma3`` in the examples)."""
        return self._name

    @property
    def lhs(self) -> PyTuple[Atom, ...]:
        """Left-hand-side atoms Φ."""
        return self._lhs

    @property
    def rhs(self) -> PyTuple[Atom, ...]:
        """Right-hand-side atoms Ψ."""
        return self._rhs

    def lhs_variables(self) -> FrozenSet[Variable]:
        """Variables occurring on the LHS (the universally quantified x ∪ y)."""
        return atoms_variables(self._lhs)

    def rhs_variables(self) -> FrozenSet[Variable]:
        """Variables occurring on the RHS (x ∪ z)."""
        return atoms_variables(self._rhs)

    def frontier_variables(self) -> FrozenSet[Variable]:
        """Variables shared between LHS and RHS (the exported x)."""
        return self.lhs_variables() & self.rhs_variables()

    def existential_variables(self) -> FrozenSet[Variable]:
        """Variables appearing only on the RHS (the existential z)."""
        return self.rhs_variables() - self.lhs_variables()

    def lhs_relations(self) -> FrozenSet[str]:
        """Relations mentioned on the LHS."""
        return atoms_relations(self._lhs)

    def rhs_relations(self) -> FrozenSet[str]:
        """Relations mentioned on the RHS."""
        return atoms_relations(self._rhs)

    def relations(self) -> FrozenSet[str]:
        """All relations mentioned by the tgd."""
        return self.lhs_relations() | self.rhs_relations()

    def has_self_join(self) -> bool:
        """``True`` when some relation occurs twice on the same side."""
        lhs_names = [atom.relation for atom in self._lhs]
        rhs_names = [atom.relation for atom in self._rhs]
        return len(lhs_names) != len(set(lhs_names)) or len(rhs_names) != len(
            set(rhs_names)
        )

    def is_full(self) -> bool:
        """``True`` when the tgd has no existential variables (a *full* tgd)."""
        return not self.existential_variables()

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self, schema: DatabaseSchema) -> None:
        """Check every atom against *schema* (relation exists, arity matches)."""
        for atom in self._lhs + self._rhs:
            if atom.relation not in schema:
                raise SchemaError(
                    "mapping {} mentions unknown relation {!r}".format(
                        self._name, atom.relation
                    )
                )
            expected = schema.arity_of(atom.relation)
            if atom.arity != expected:
                raise SchemaError(
                    "mapping {} uses {} with arity {} but the schema says {}".format(
                        self._name, atom.relation, atom.arity, expected
                    )
                )

    # ------------------------------------------------------------------
    # Value semantics and rendering
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Tgd):
            return NotImplemented
        return self._lhs == other._lhs and self._rhs == other._rhs

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return "Tgd({}: {})".format(self._name, self.to_string())

    def to_string(self) -> str:
        """Render the tgd in the concrete syntax accepted by :func:`parse_tgd`."""
        lhs = ", ".join(_render_atom(atom) for atom in self._lhs)
        rhs = ", ".join(_render_atom(atom) for atom in self._rhs)
        existentials = sorted(variable.name for variable in self.existential_variables())
        if existentials:
            return "{} -> exists {} . {}".format(lhs, ", ".join(existentials), rhs)
        return "{} -> {}".format(lhs, rhs)


def _render_atom(atom: Atom) -> str:
    parts = []
    for term in atom.terms:
        if isinstance(term, Variable):
            parts.append(term.name)
        else:
            parts.append("'{}'".format(term.value))
    return "{}({})".format(atom.relation, ", ".join(parts))


# ----------------------------------------------------------------------
# Parsing
# ----------------------------------------------------------------------
_ATOM_PATTERN = re.compile(r"\s*([A-Za-z_][A-Za-z0-9_]*)\s*\(([^)]*)\)\s*")


def _parse_term(token: str) -> object:
    token = token.strip()
    if not token:
        raise TgdError("empty term in atom")
    if token.startswith("'") and token.endswith("'") and len(token) >= 2:
        return Constant(token[1:-1])
    if token.startswith('"') and token.endswith('"') and len(token) >= 2:
        return Constant(token[1:-1])
    if re.fullmatch(r"-?\d+", token):
        return Constant(int(token))
    if re.fullmatch(r"[A-Za-z_][A-Za-z0-9_']*", token):
        return Variable(token)
    raise TgdError("cannot parse term {!r}".format(token))


def _parse_atom_list(text: str) -> List[Atom]:
    atoms: List[Atom] = []
    position = 0
    text = text.strip()
    while position < len(text):
        match = _ATOM_PATTERN.match(text, position)
        if match is None:
            raise TgdError("cannot parse atoms from {!r}".format(text[position:]))
        relation, body = match.group(1), match.group(2)
        terms = [_parse_term(token) for token in body.split(",")] if body.strip() else []
        if not terms:
            raise TgdError("atom {!r} has no terms".format(relation))
        atoms.append(Atom(relation, terms))
        position = match.end()
        if position < len(text):
            if text[position] == ",":
                position += 1
            elif text[position] == "&":
                position += 1
            else:
                raise TgdError(
                    "unexpected character {!r} in atom list {!r}".format(
                        text[position], text
                    )
                )
    if not atoms:
        raise TgdError("no atoms found in {!r}".format(text))
    return atoms


def parse_tgd(text: str, name: Optional[str] = None) -> Tgd:
    """Parse a tgd from its concrete syntax.

    Examples of accepted syntax (``->`` separates the sides; an optional
    ``exists z1, z2 .`` prefix on the right-hand side declares existential
    variables explicitly, otherwise RHS-only variables are implicitly
    existential; constants are quoted)::

        C(c) -> exists a, l . S(a, l, c)
        A(l, n), T(n, c, cs) -> exists r . R(c, n, r)
        V(cs, x), T(n, c, cs) -> E(x, n)
        Person(x) -> exists y . Father(x, y), Person(y)
    """
    if "->" not in text:
        raise TgdError("a tgd needs a '->' separator: {!r}".format(text))
    lhs_text, rhs_text = text.split("->", 1)
    rhs_text = rhs_text.strip()
    declared_existentials: Set[str] = set()
    if rhs_text.lower().startswith("exists"):
        remainder = rhs_text[len("exists"):]
        if "." not in remainder:
            raise TgdError(
                "an 'exists' prefix must be terminated by '.': {!r}".format(text)
            )
        variable_list, rhs_text = remainder.split(".", 1)
        declared_existentials = {
            token.strip() for token in variable_list.split(",") if token.strip()
        }
    lhs_atoms = _parse_atom_list(lhs_text)
    rhs_atoms = _parse_atom_list(rhs_text)
    tgd = Tgd(lhs_atoms, rhs_atoms, name=name)
    if declared_existentials:
        actual = {variable.name for variable in tgd.existential_variables()}
        missing = declared_existentials - actual
        if missing:
            raise TgdError(
                "variables declared existential but appearing on the LHS "
                "(or not at all on the RHS): {}".format(sorted(missing))
            )
    return tgd


def parse_tgds(specs: Iterable[str]) -> List[Tgd]:
    """Parse several tgds, naming them ``sigma1, sigma2, ...`` in order."""
    return [
        parse_tgd(spec, name="sigma{}".format(index + 1))
        for index, spec in enumerate(specs)
    ]


# ----------------------------------------------------------------------
# Mapping graphs, cycles and weak acyclicity
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MappingGraph:
    """The directed graph with relations as nodes and tgds as edge bundles.

    There is an edge ``R → S`` whenever some mapping has ``R`` on its LHS and
    ``S`` on its RHS.  Cycles in this graph are precisely what classical
    update-exchange systems forbid and what Youtopia allows.
    """

    edges: FrozenSet[PyTuple[str, str]]

    @classmethod
    def from_tgds(cls, tgds: Sequence[Tgd]) -> "MappingGraph":
        edges: Set[PyTuple[str, str]] = set()
        for tgd in tgds:
            for source in tgd.lhs_relations():
                for target in tgd.rhs_relations():
                    edges.add((source, target))
        return cls(frozenset(edges))

    def nodes(self) -> FrozenSet[str]:
        """All relations appearing as an endpoint of some edge."""
        found: Set[str] = set()
        for source, target in self.edges:
            found.add(source)
            found.add(target)
        return frozenset(found)

    def successors(self, node: str) -> FrozenSet[str]:
        """Relations directly reachable from *node*."""
        return frozenset(target for source, target in self.edges if source == node)

    def has_cycle(self) -> bool:
        """``True`` when the relation-level mapping graph has a directed cycle."""
        return bool(self.cycles())

    def cycles(self) -> List[List[str]]:
        """Return one representative node list per strongly connected cycle.

        Self-loops (``R → R``) count as cycles.  The implementation is an
        iterative Tarjan strongly-connected-components pass; any component of
        size greater than one, or single node with a self-loop, is cyclic.
        """
        adjacency: Dict[str, List[str]] = {}
        for source, target in self.edges:
            adjacency.setdefault(source, []).append(target)
            adjacency.setdefault(target, [])
        index_counter = 0
        indices: Dict[str, int] = {}
        lowlinks: Dict[str, int] = {}
        on_stack: Set[str] = set()
        stack: List[str] = []
        result: List[List[str]] = []

        for start in adjacency:
            if start in indices:
                continue
            work: List[PyTuple[str, Iterator[str]]] = [(start, iter(adjacency[start]))]
            indices[start] = lowlinks[start] = index_counter
            index_counter += 1
            stack.append(start)
            on_stack.add(start)
            while work:
                node, successors = work[-1]
                advanced = False
                for successor in successors:
                    if successor not in indices:
                        indices[successor] = lowlinks[successor] = index_counter
                        index_counter += 1
                        stack.append(successor)
                        on_stack.add(successor)
                        work.append((successor, iter(adjacency[successor])))
                        advanced = True
                        break
                    if successor in on_stack:
                        lowlinks[node] = min(lowlinks[node], indices[successor])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlinks[parent] = min(lowlinks[parent], lowlinks[node])
                if lowlinks[node] == indices[node]:
                    component: List[str] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    if len(component) > 1 or (component[0], component[0]) in self.edges:
                        result.append(sorted(component))
        return result


def is_weakly_acyclic(tgds: Sequence[Tgd]) -> bool:
    """Classical weak-acyclicity test on the position dependency graph.

    Nodes are relation positions ``(R, i)``.  For every tgd and every frontier
    variable occurrence at LHS position ``(R, i)``: add a *regular* edge to
    every RHS position where that variable occurs, and a *special* edge to
    every RHS position holding an existential variable in an atom that exports
    the variable's tuple.  The mapping set is weakly acyclic iff no cycle goes
    through a special edge.  Youtopia does not require weak acyclicity — this
    is used in tests to demonstrate that cyclic fixtures really are outside
    the classical terminating fragment.
    """
    regular: Set[PyTuple[PyTuple[str, int], PyTuple[str, int]]] = set()
    special: Set[PyTuple[PyTuple[str, int], PyTuple[str, int]]] = set()
    for tgd in tgds:
        existentials = tgd.existential_variables()
        for lhs_atom in tgd.lhs:
            for lhs_position, term in enumerate(lhs_atom.terms):
                if not isinstance(term, Variable):
                    continue
                if term not in tgd.frontier_variables():
                    continue
                source = (lhs_atom.relation, lhs_position)
                for rhs_atom in tgd.rhs:
                    for rhs_position, rhs_term in enumerate(rhs_atom.terms):
                        target = (rhs_atom.relation, rhs_position)
                        if rhs_term == term:
                            regular.add((source, target))
                        elif isinstance(rhs_term, Variable) and rhs_term in existentials:
                            special.add((source, target))
    nodes: Set[PyTuple[str, int]] = set()
    for source, target in regular | special:
        nodes.add(source)
        nodes.add(target)
    adjacency: Dict[PyTuple[str, int], List[PyTuple[PyTuple[str, int], bool]]] = {
        node: [] for node in nodes
    }
    for source, target in regular:
        adjacency[source].append((target, False))
    for source, target in special:
        adjacency[source].append((target, True))

    # A mapping set fails weak acyclicity iff some cycle contains a special
    # edge: i.e. there is a special edge (u, v) such that u is reachable from v.
    def reachable(start: PyTuple[str, int], goal: PyTuple[str, int]) -> bool:
        seen = {start}
        frontier = [start]
        while frontier:
            node = frontier.pop()
            if node == goal:
                return True
            for successor, _ in adjacency.get(node, []):
                if successor not in seen:
                    seen.add(successor)
                    frontier.append(successor)
        return False

    for source, target in special:
        if reachable(target, source) or source == target:
            return False
    return True


class MappingSet:
    """An ordered collection of named tgds with schema validation and lookups."""

    def __init__(self, tgds: Iterable[Tgd] = ()):  # noqa: D107 - simple container
        self._tgds: List[Tgd] = list(tgds)

    def add(self, tgd: Tgd) -> None:
        """Append *tgd* to the set."""
        self._tgds.append(tgd)

    def __iter__(self) -> Iterator[Tgd]:
        return iter(self._tgds)

    def __len__(self) -> int:
        return len(self._tgds)

    def __getitem__(self, index: int) -> Tgd:
        return self._tgds[index]

    def by_name(self, name: str) -> Tgd:
        """Look a mapping up by its name."""
        for tgd in self._tgds:
            if tgd.name == name:
                return tgd
        raise KeyError("no mapping named {!r}".format(name))

    def validate(self, schema: DatabaseSchema) -> None:
        """Validate every mapping against *schema*."""
        for tgd in self._tgds:
            tgd.validate(schema)

    def mappings_reading(self, relation: str) -> List[Tgd]:
        """Mappings with *relation* on their LHS (affected by inserts into it)."""
        return [tgd for tgd in self._tgds if relation in tgd.lhs_relations()]

    def mappings_writing(self, relation: str) -> List[Tgd]:
        """Mappings with *relation* on their RHS (affected by deletes from it)."""
        return [tgd for tgd in self._tgds if relation in tgd.rhs_relations()]

    def graph(self) -> MappingGraph:
        """The relation-level mapping graph."""
        return MappingGraph.from_tgds(self._tgds)

    def has_cycle(self) -> bool:
        """``True`` when the mapping graph contains a cycle."""
        return self.graph().has_cycle()

    def is_weakly_acyclic(self) -> bool:
        """``True`` when the set passes the classical weak-acyclicity test."""
        return is_weakly_acyclic(self._tgds)
