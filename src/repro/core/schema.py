"""Relation and database schemas.

A Youtopia repository is, at the logical level, a set of named relations.  The
schema layer records relation names, attribute names and arities, and performs
the validation that the storage and chase layers rely on (arity checks,
unknown-relation checks).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple as PyTuple

from .tuples import Tuple


class SchemaError(ValueError):
    """Raised when a schema constraint is violated (bad arity, unknown relation)."""


@dataclass(frozen=True)
class RelationSchema:
    """Schema of a single relation: its name and attribute names.

    Attribute names are primarily documentation (the chase operates
    positionally) but they make mappings, examples and error messages far more
    readable, and the SQLite backend uses them as column names.
    """

    name: str
    attributes: PyTuple[str, ...]

    def __init__(self, name: str, attributes: Sequence[str]):
        if not name:
            raise SchemaError("relation name must be non-empty")
        attrs = tuple(attributes)
        if not attrs:
            raise SchemaError("relation {!r} must have at least one attribute".format(name))
        if len(set(attrs)) != len(attrs):
            raise SchemaError(
                "relation {!r} has duplicate attribute names: {}".format(name, attrs)
            )
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "attributes", attrs)

    @property
    def arity(self) -> int:
        """Number of attributes."""
        return len(self.attributes)

    def position_of(self, attribute: str) -> int:
        """Return the zero-based position of *attribute*.

        Raises :class:`SchemaError` when the attribute does not exist.
        """
        try:
            return self.attributes.index(attribute)
        except ValueError:
            raise SchemaError(
                "relation {!r} has no attribute {!r}".format(self.name, attribute)
            ) from None

    def validate_tuple(self, row: Tuple) -> None:
        """Check that *row* belongs to this relation and has the right arity."""
        if row.relation != self.name:
            raise SchemaError(
                "tuple {!r} does not belong to relation {!r}".format(row, self.name)
            )
        if row.arity != self.arity:
            raise SchemaError(
                "tuple {!r} has arity {} but relation {!r} expects {}".format(
                    row, row.arity, self.name, self.arity
                )
            )

    def __str__(self) -> str:
        return "{}({})".format(self.name, ", ".join(self.attributes))


@dataclass
class DatabaseSchema:
    """The set of relation schemas making up a repository."""

    relations: Dict[str, RelationSchema] = field(default_factory=dict)

    @classmethod
    def from_relations(cls, relations: Iterable[RelationSchema]) -> "DatabaseSchema":
        """Build a schema from an iterable of relation schemas."""
        schema = cls()
        for relation in relations:
            schema.add_relation(relation)
        return schema

    @classmethod
    def from_dict(cls, spec: Dict[str, Sequence[str]]) -> "DatabaseSchema":
        """Build a schema from ``{'R': ['a', 'b'], ...}`` style specs."""
        return cls.from_relations(
            RelationSchema(name, attributes) for name, attributes in spec.items()
        )

    def add_relation(self, relation: RelationSchema) -> None:
        """Register *relation*; duplicate names are rejected."""
        if relation.name in self.relations:
            raise SchemaError("relation {!r} already declared".format(relation.name))
        self.relations[relation.name] = relation

    def relation(self, name: str) -> RelationSchema:
        """Return the schema of relation *name* or raise :class:`SchemaError`."""
        try:
            return self.relations[name]
        except KeyError:
            raise SchemaError("unknown relation {!r}".format(name)) from None

    def __contains__(self, name: str) -> bool:
        return name in self.relations

    def __iter__(self) -> Iterator[RelationSchema]:
        return iter(self.relations.values())

    def __len__(self) -> int:
        return len(self.relations)

    def relation_names(self) -> List[str]:
        """All relation names, in declaration order."""
        return list(self.relations)

    def arity_of(self, name: str) -> int:
        """Arity of relation *name*."""
        return self.relation(name).arity

    def validate_tuple(self, row: Tuple) -> None:
        """Check *row* against the schema of its relation."""
        self.relation(row.relation).validate_tuple(row)

    def copy(self) -> "DatabaseSchema":
        """Return a shallow copy (relation schemas are immutable)."""
        return DatabaseSchema(dict(self.relations))

    def restrict(self, names: Iterable[str]) -> "DatabaseSchema":
        """Return a schema containing only the relations in *names*."""
        return DatabaseSchema(
            {name: self.relation(name) for name in names}
        )

    def describe(self) -> str:
        """Human-readable multi-line description of the schema."""
        return "\n".join(str(relation) for relation in self)


def generic_attributes(arity: int, prefix: str = "a") -> List[str]:
    """Produce attribute names ``a1 .. aN`` for generated schemas."""
    if arity < 1:
        raise SchemaError("arity must be at least 1, got {}".format(arity))
    return ["{}{}".format(prefix, index + 1) for index in range(arity)]
