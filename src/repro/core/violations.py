"""Violations and witnesses (Definitions 2.1 and 2.2) and their detection.

A violation of a mapping σ is an assignment of values to σ's free variables
such that the LHS is satisfied but the RHS is not; its *witness* is the set of
LHS tuples realizing the assignment.  Youtopia classifies violations by what
caused them:

* **LHS-violations** arise from insertions and null-replacements (the new or
  changed tuple is part of the witness) and are repaired by the forward chase;
* **RHS-violations** arise from deletions (the deleted tuple used to complete
  some RHS match) and are repaired by the backward chase.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple as PyTuple

from ..query.base import ReadQuery
from ..query.compiled import CompiledMappings, compile_mappings, get_plan
from ..query.homomorphism import exists_match, find_matches
from ..query.violation_query import (
    ViolationQuery,
    ViolationRow,
    violation_queries_for_write_row,
)
from ..storage.interface import DatabaseView
from .tgd import Tgd
from .terms import DataTerm, Variable
from .tuples import Tuple
from .writes import Write, WriteKind

#: Callback used to log read queries (and their answers) for concurrency control.
ReadRecorder = Callable[[ReadQuery, object], None]


class ViolationKind(enum.Enum):
    """How a violation arose, which determines the repairing chase variant."""

    LHS = "lhs"
    RHS = "rhs"


@dataclass(frozen=True)
class Violation:
    """A concrete violation of one mapping, with its witness."""

    tgd: Tgd
    bindings: FrozenSet[PyTuple[Variable, DataTerm]]
    witness: PyTuple[Tuple, ...]
    kind: ViolationKind

    @classmethod
    def from_row(cls, tgd: Tgd, row: ViolationRow, kind: ViolationKind) -> "Violation":
        """Build a violation from a violation-query answer row."""
        return cls(tgd=tgd, bindings=row.bindings, witness=row.witness, kind=kind)

    def assignment(self) -> Dict[Variable, DataTerm]:
        """The variable assignment as a dictionary."""
        return dict(self.bindings)

    def exported_assignment(self) -> Dict[Variable, DataTerm]:
        """The assignment restricted to the mapping's frontier variables."""
        frontier = get_plan(self.tgd).frontier_variables
        return {
            variable: value
            for variable, value in self.bindings
            if variable in frontier
        }

    def is_lhs(self) -> bool:
        """``True`` for LHS-violations (forward-chase repairs)."""
        return self.kind is ViolationKind.LHS

    def is_rhs(self) -> bool:
        """``True`` for RHS-violations (backward-chase repairs)."""
        return self.kind is ViolationKind.RHS

    def still_holds(self, view: DatabaseView) -> bool:
        """Re-check the violation against *view*.

        A violation disappears when some witness tuple is gone (the LHS match
        broke) or when the RHS has become satisfiable for its assignment —
        both can happen because of other repairs performed in the meantime,
        which is why the chase re-checks before repairing (Algorithm 2 removes
        queue entries "which will be repaired by W′").
        """
        for row in self.witness:
            if not view.contains(row):
                return False
        plan = get_plan(self.tgd)
        return not plan.rhs.exists_match(view, self.exported_assignment())

    def describe(self) -> str:
        """One-line description for logs and interactive oracles."""
        witness_text = ", ".join(repr(row) for row in self.witness)
        return "{} violation of {} witnessed by [{}]".format(
            self.kind.value.upper(), self.tgd.name, witness_text
        )

    def __repr__(self) -> str:
        return "Violation({})".format(self.describe())


# ----------------------------------------------------------------------
# Detection
# ----------------------------------------------------------------------
def find_all_violations(
    mappings: Iterable[Tgd], view: DatabaseView
) -> List[Violation]:
    """Exhaustively find every violation of every mapping in *view*.

    Used to verify that an initial database satisfies its mappings (the
    serializability definitions assume this) and by tests; the chase itself
    uses the incremental, write-seeded detection below.
    """
    violations: List[Violation] = []
    for tgd in mappings:
        query = ViolationQuery(tgd)
        for row in query.evaluate(view):
            violations.append(Violation.from_row(tgd, row, ViolationKind.LHS))
    return violations


def satisfies_all(mappings: Iterable[Tgd], view: DatabaseView) -> bool:
    """``True`` when *view* satisfies every mapping."""
    return not find_all_violations(mappings, view)


def violation_queries_for_write(
    write: Write, mappings: Sequence[Tgd]
) -> List[PyTuple[ViolationQuery, ViolationKind]]:
    """The violation queries a chase step must ask after performing *write*.

    * An insertion (or the new content of a modification) can only create
      LHS-violations of mappings whose LHS mentions the written relation.
    * A deletion can only create RHS-violations of mappings whose RHS mentions
      the written relation.
    * A modification that is part of a null-replacement cannot create
      RHS-violations (all occurrences of the null change consistently), so
      only its new content is considered, against LHS atoms.

    *mappings* may be a plain tgd sequence or a pre-built
    :class:`~repro.query.compiled.CompiledMappings`; either way the
    relation-keyed plan lookups replace the historical scan over every
    mapping (which re-derived each mapping's relation sets per write).
    """
    compiled = compile_mappings(mappings)
    queries: List[PyTuple[ViolationQuery, ViolationKind]] = []
    added = write.added_row()
    if added is not None:
        for plan in compiled.reading(added.relation):
            for query in violation_queries_for_write_row(plan.tgd, added, removed=False):
                queries.append((query, ViolationKind.LHS))
    if write.kind is WriteKind.DELETE:
        removed = write.removed_row()
        if removed is not None:
            for plan in compiled.writing(removed.relation):
                for query in violation_queries_for_write_row(plan.tgd, removed, removed=True):
                    queries.append((query, ViolationKind.RHS))
    return queries


def violations_for_write(
    write: Write,
    mappings: Sequence[Tgd],
    view: DatabaseView,
    recorder: Optional[ReadRecorder] = None,
    evaluator=None,
) -> List[Violation]:
    """Detect the new violations caused by *write* on *view*.

    Every violation query asked along the way is reported through *recorder*
    (together with its answer) so that the concurrency-control layer can log
    the step's reads.  *evaluator* optionally substitutes a set-based engine
    (:class:`~repro.query.sql_chase.SqlViolationEvaluator`) for the Python
    query evaluation; the recorder still sees the same ``(query, answer)``
    pairs, so read logs and cost panels are unchanged.
    """
    violations: List[Violation] = []
    seen = set()
    for query, kind in violation_queries_for_write(write, mappings):
        if evaluator is not None:
            answer = evaluator.evaluate(query, view)
        else:
            answer = query.evaluate(view)
        if recorder is not None:
            recorder(query, answer)
        for row in answer:
            violation = Violation.from_row(query.tgd, row, kind)
            key = (violation.tgd, violation.bindings, violation.kind)
            if key in seen:
                continue
            seen.add(key)
            violations.append(violation)
    return violations


def violations_for_writes(
    writes: Sequence[Write],
    mappings: Sequence[Tgd],
    view: DatabaseView,
    recorder: Optional[ReadRecorder] = None,
    evaluator=None,
) -> List[Violation]:
    """Detect the new violations caused by a whole write set."""
    violations: List[Violation] = []
    seen = set()
    for write in writes:
        for violation in violations_for_write(write, mappings, view, recorder, evaluator):
            key = (violation.tgd, violation.bindings, violation.kind)
            if key in seen:
                continue
            seen.add(key)
            violations.append(violation)
    return violations
