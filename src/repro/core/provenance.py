"""Chase provenance: the tree of "who caused what" during a chase execution.

Section 2.2 notes that frontier operations are only feasible for users if the
interface provides "meaningful provenance information for the frontier
tuples".  The chase engine therefore records a causality tree: the initial
user operation is the root, every write performed is a node, every violation
links the writes in its witness to the corrective writes (or frontier tuples)
it produced.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from .tuples import Tuple
from .violations import Violation
from .writes import Write


@dataclass
class ProvenanceNode:
    """One event in a chase execution."""

    node_id: int
    label: str
    write: Optional[Write] = None
    violation: Optional[Violation] = None
    parents: List[int] = field(default_factory=list)
    children: List[int] = field(default_factory=list)

    def is_root(self) -> bool:
        """``True`` when this node has no cause recorded."""
        return not self.parents


class ChaseTree:
    """A DAG of chase events (a tree when every effect has a single cause)."""

    def __init__(self) -> None:
        self._nodes: Dict[int, ProvenanceNode] = {}
        self._ids = itertools.count(1)
        self._write_index: Dict[Write, int] = {}
        self._tuple_index: Dict[Tuple, List[int]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_event(
        self,
        label: str,
        write: Optional[Write] = None,
        violation: Optional[Violation] = None,
        caused_by: Iterable[int] = (),
    ) -> int:
        """Record an event and its causes; returns the new node id."""
        node_id = next(self._ids)
        node = ProvenanceNode(
            node_id=node_id, label=label, write=write, violation=violation
        )
        for parent_id in caused_by:
            if parent_id in self._nodes:
                node.parents.append(parent_id)
                self._nodes[parent_id].children.append(node_id)
        self._nodes[node_id] = node
        if write is not None:
            self._write_index[write] = node_id
            for row in write.rows_touched():
                self._tuple_index.setdefault(row, []).append(node_id)
        return node_id

    def add_write(self, write: Write, caused_by: Iterable[int] = ()) -> int:
        """Record a write event."""
        return self.add_event(write.describe(), write=write, caused_by=caused_by)

    def add_violation(self, violation: Violation, caused_by: Iterable[int] = ()) -> int:
        """Record the detection of a violation."""
        return self.add_event(
            violation.describe(), violation=violation, caused_by=caused_by
        )

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def node(self, node_id: int) -> ProvenanceNode:
        """Fetch a node by id."""
        return self._nodes[node_id]

    def node_for_write(self, write: Write) -> Optional[int]:
        """The node id that recorded *write*, if any."""
        return self._write_index.get(write)

    def nodes_touching(self, row: Tuple) -> List[ProvenanceNode]:
        """All events whose write touched the tuple value *row*."""
        return [self._nodes[node_id] for node_id in self._tuple_index.get(row, [])]

    def roots(self) -> List[ProvenanceNode]:
        """Events with no recorded cause (normally the initial user operation)."""
        return [node for node in self._nodes.values() if node.is_root()]

    def lineage(self, node_id: int) -> List[ProvenanceNode]:
        """All ancestors of a node, nearest first (why did this happen?)."""
        seen: List[int] = []
        frontier = list(self._nodes[node_id].parents)
        while frontier:
            current = frontier.pop(0)
            if current in seen:
                continue
            seen.append(current)
            frontier.extend(self._nodes[current].parents)
        return [self._nodes[identifier] for identifier in seen]

    def explain_tuple(self, row: Tuple) -> List[str]:
        """Human-readable explanation of why *row* was written.

        This is the provenance string an interface would show next to a
        frontier tuple so that a user can decide between expand and unify.
        """
        explanations: List[str] = []
        for node in self.nodes_touching(row):
            chain = [node.label] + [ancestor.label for ancestor in self.lineage(node.node_id)]
            explanations.append(" <= ".join(chain))
        return explanations

    def __len__(self) -> int:
        return len(self._nodes)

    def to_text(self) -> str:
        """Indented rendering of the tree, roots first."""
        lines: List[str] = []

        def render(node: ProvenanceNode, depth: int, seen: set) -> None:
            lines.append("{}{}".format("  " * depth, node.label))
            if node.node_id in seen:
                return
            seen.add(node.node_id)
            for child_id in node.children:
                render(self._nodes[child_id], depth + 1, seen)

        for root in self.roots():
            render(root, 0, set())
        return "\n".join(lines)
