"""Write operations: the units of change flowing through chases and schedulers.

A chase step begins by performing a set of writes (Algorithm 2).  Each write
is one of:

* a tuple **insertion**,
* a tuple **deletion**, or
* a tuple **modification** that is part of a global replacement of a labeled
  null by another value (a null-replacement or the effect of a *unify*
  frontier operation).

The concurrency-control layer checks writes against logged read queries
(Algorithm 4) and logs them for the COARSE / PRECISE read-dependency trackers,
so writes carry enough information to answer "could this write change the
result of that query?" without consulting the database for the easy cases.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Sequence

from .terms import DataTerm, LabeledNull
from .tuples import Tuple


class WriteKind(enum.Enum):
    """The three kinds of tuple-level writes."""

    INSERT = "insert"
    DELETE = "delete"
    MODIFY = "modify"


@dataclass(frozen=True)
class Write:
    """A single tuple-level write.

    ``row`` is the tuple after the write for inserts and modifications, and
    the removed tuple for deletions.  ``old_row`` is only set for
    modifications.  ``null`` / ``replacement`` record the global substitution
    a modification belongs to.
    """

    kind: WriteKind
    row: Tuple
    old_row: Optional[Tuple] = None
    null: Optional[LabeledNull] = None
    replacement: Optional[DataTerm] = None

    @property
    def relation(self) -> str:
        """Relation the write touches."""
        return self.row.relation

    def rows_touched(self) -> List[Tuple]:
        """All tuple values involved (old and new content for modifications)."""
        if self.kind is WriteKind.MODIFY and self.old_row is not None:
            return [self.old_row, self.row]
        return [self.row]

    def added_row(self) -> Optional[Tuple]:
        """The tuple value this write makes visible, if any."""
        if self.kind in (WriteKind.INSERT, WriteKind.MODIFY):
            return self.row
        return None

    def removed_row(self) -> Optional[Tuple]:
        """The tuple value this write removes from visibility, if any."""
        if self.kind is WriteKind.DELETE:
            return self.row
        if self.kind is WriteKind.MODIFY:
            return self.old_row
        return None

    def describe(self) -> str:
        """One-line human-readable description."""
        if self.kind is WriteKind.INSERT:
            return "insert {!r}".format(self.row)
        if self.kind is WriteKind.DELETE:
            return "delete {!r}".format(self.row)
        return "modify {!r} -> {!r}".format(self.old_row, self.row)

    def __repr__(self) -> str:
        return "Write({})".format(self.describe())


def insert(row: Tuple) -> Write:
    """Construct an insertion write."""
    return Write(WriteKind.INSERT, row)


def delete(row: Tuple) -> Write:
    """Construct a deletion write."""
    return Write(WriteKind.DELETE, row)


def modify(
    old_row: Tuple, new_row: Tuple, null: LabeledNull, replacement: DataTerm
) -> Write:
    """Construct a modification write that is part of a null replacement."""
    return Write(
        WriteKind.MODIFY, new_row, old_row=old_row, null=null, replacement=replacement
    )


@dataclass(frozen=True)
class NullReplacement:
    """A user-level request to replace every occurrence of a null by a value.

    The storage layer expands this into one :class:`Write` of kind ``MODIFY``
    per affected tuple; all of them share the ``null`` / ``replacement`` pair,
    which is what guarantees that only LHS-violations can result (Section 2).
    """

    null: LabeledNull
    replacement: DataTerm

    def expand(self, affected_rows: Sequence[Tuple]) -> List[Write]:
        """Materialize the per-tuple modification writes for *affected_rows*."""
        writes: List[Write] = []
        for row in affected_rows:
            new_row = row.substitute({self.null: self.replacement})
            if new_row != row:
                writes.append(modify(row, new_row, self.null, self.replacement))
        return writes

    def __repr__(self) -> str:
        return "NullReplacement({} := {})".format(self.null, self.replacement)
