"""Repair planning shared by the single-update and concurrent chase engines.

The planner owns the *firing state* of forward repairs: the RHS tuples a
violation's firing generated but that have not been inserted or unified away
yet.  Keeping this state across frontier operations is what makes tuples of
the same firing share their freshly generated nulls consistently (Section 2.2
of the paper), and it prevents the chase from re-generating new nulls every
time it revisits a violation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple as PyTuple

from ..query.correction_query import MoreSpecificQuery, NullOccurrenceQuery
from ..storage.interface import DatabaseView
from .frontier import (
    DeterministicRepair,
    FrontierRequest,
    FrontierTuple,
    PositiveFrontierRequest,
    RepairPlan,
    UnifyOperation,
    plan_backward_repair,
)
from .terms import LabeledNull, NullFactory
from .tuples import Tuple, unification_assignment
from .violations import ReadRecorder, Violation
from .writes import Write, insert


@dataclass
class FiringState:
    """Generated-but-unresolved RHS tuples of one forward firing."""

    rows: List[Tuple]
    fresh_nulls: frozenset

    def substitute(self, substitution: Dict[LabeledNull, object]) -> None:
        """Apply a null substitution to the pending rows in place."""
        self.rows = [row.substitute(substitution) for row in self.rows]


class RepairPlanner:
    """Plans violation repairs, remembering per-violation firing state."""

    def __init__(self, mappings: Sequence, null_factory: NullFactory):
        self._mappings = list(mappings)
        self._null_factory = null_factory
        self._firings: Dict[Violation, FiringState] = {}
        # ``still_holds`` memo, keyed to the view's change token.  One chase
        # step re-validates the same violations several times (queue refresh,
        # stale-firing sweep, deterministic planning, request building) with
        # no write in between; the memo collapses those to one evaluation.
        # ``still_holds`` is never recorded as a read, so memoizing it cannot
        # change read logs, tracker counters or conflict checks.
        self._holds_token: Optional[object] = None
        self._holds_memo: Dict[Violation, bool] = {}

    def _still_holds(self, violation: Violation, view: DatabaseView) -> bool:
        token = view.change_token()
        if token is None:
            return violation.still_holds(view)
        if token != self._holds_token:
            self._holds_token = token
            self._holds_memo.clear()
        verdict = self._holds_memo.get(violation)
        if verdict is None:
            verdict = violation.still_holds(view)
            self._holds_memo[violation] = verdict
        return verdict

    @property
    def mappings(self) -> List:
        """The mappings the planner repairs against."""
        return list(self._mappings)

    # ------------------------------------------------------------------
    # Queue maintenance
    # ------------------------------------------------------------------
    def refresh_queue(
        self,
        queue: List[Violation],
        new_violations: Sequence[Violation],
        view: DatabaseView,
    ) -> List[Violation]:
        """Drop satisfied violations, append new ones, keep FIFO order."""
        kept = [violation for violation in queue if self._still_holds(violation, view)]
        for stale in list(self._firings):
            if not self._still_holds(stale, view):
                del self._firings[stale]
        existing = set(kept)
        for violation in new_violations:
            if violation not in existing and self._still_holds(violation, view):
                kept.append(violation)
                existing.add(violation)
        return kept

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def plan(
        self,
        violation: Violation,
        view: DatabaseView,
        recorder: Optional[ReadRecorder] = None,
    ) -> Optional[RepairPlan]:
        """Plan the repair of *violation* on *view* (``None`` when satisfied)."""
        if violation.is_rhs():
            return plan_backward_repair(violation, view, recorder)
        return self._plan_forward(violation, view, recorder)

    def _plan_forward(
        self,
        violation: Violation,
        view: DatabaseView,
        recorder: Optional[ReadRecorder],
    ) -> Optional[RepairPlan]:
        if not self._still_holds(violation, view):
            self._firings.pop(violation, None)
            return None
        state = self._firings.get(violation)
        if state is None:
            state = self._generate_firing(violation)
            self._firings[violation] = state
        missing = [row for row in state.rows if not view.contains(row)]
        if not missing:
            return None
        frontier_tuples: List[FrontierTuple] = []
        nondeterministic = False
        for row in missing:
            query = MoreSpecificQuery(row)
            candidates = tuple(sorted(query.evaluate(view), key=repr))
            if recorder is not None:
                recorder(query, frozenset(candidates))
            if candidates:
                nondeterministic = True
                for null in sorted(row.null_set() - state.fresh_nulls, key=lambda n: n.name):
                    occurrence = NullOccurrenceQuery(null)
                    answer = occurrence.evaluate(view)
                    if recorder is not None:
                        recorder(occurrence, answer)
            frontier_tuples.append(
                FrontierTuple(
                    row=row,
                    violation=violation,
                    candidates=candidates,
                    fresh_nulls=state.fresh_nulls & row.null_set(),
                )
            )
        if not nondeterministic:
            return DeterministicRepair(
                violation=violation,
                writes=tuple(insert(row) for row in missing),
            )
        return PositiveFrontierRequest(
            violation=violation, frontier_tuples=tuple(frontier_tuples)
        )

    def _generate_firing(self, violation: Violation) -> FiringState:
        from ..query.compiled import get_plan

        plan = get_plan(violation.tgd)
        assignment = violation.exported_assignment()
        fresh: Dict = {}
        for variable in plan.sorted_existentials:
            fresh[variable] = self._null_factory.fresh()
        full_assignment = dict(assignment)
        full_assignment.update(fresh)
        rows = [atom.instantiate(full_assignment) for atom in violation.tgd.rhs]
        return FiringState(rows=rows, fresh_nulls=frozenset(fresh.values()))

    # ------------------------------------------------------------------
    # Step helpers
    # ------------------------------------------------------------------
    def next_deterministic_writes(
        self,
        queue: List[Violation],
        view: DatabaseView,
        recorder: Optional[ReadRecorder] = None,
    ) -> PyTuple[List[Write], List[Violation], int]:
        """Find the first deterministically repairable violation in *queue*.

        Returns ``(writes, remaining_queue, violations_examined)``; ``writes``
        is empty when no violation in the queue is deterministically
        repairable (Algorithm 1's "all v await frontier ops" condition).
        """
        remaining: List[Violation] = []
        examined = 0
        for index, violation in enumerate(queue):
            plan = self.plan(violation, view, recorder)
            examined += 1
            if plan is None:
                continue
            remaining.append(violation)
            if isinstance(plan, DeterministicRepair):
                remaining.extend(queue[index + 1:])
                return list(plan.writes), remaining, examined
        return [], remaining, examined

    def build_request(
        self,
        violation: Violation,
        view: DatabaseView,
        recorder: Optional[ReadRecorder] = None,
    ) -> Optional[FrontierRequest]:
        """The frontier request for *violation*, or ``None`` when not needed."""
        plan = self.plan(violation, view, recorder)
        if plan is None or isinstance(plan, DeterministicRepair):
            return None
        return plan

    def note_frontier_operation(self, operation) -> None:
        """Keep firing state consistent after a frontier operation.

        A unification substitutes labeled nulls globally; pending rows of
        *other* firings that share those nulls must be rewritten too.
        """
        if not isinstance(operation, UnifyOperation):
            return
        substitution = unification_assignment(
            operation.frontier_tuple.row, operation.target
        )
        if not substitution:
            return
        for state in self._firings.values():
            state.substitute(substitution)

    def reset(self) -> None:
        """Forget all firing state (used when an update aborts and restarts)."""
        self._firings.clear()
        self._holds_token = None
        self._holds_memo.clear()
