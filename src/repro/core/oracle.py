"""Frontier oracles: the stand-ins for the humans in the cooperative chase.

Youtopia is designed around human intervention: when a chase reaches a
frontier it blocks until a user performs a frontier operation.  The paper's
experiments simulate the user by "choosing an option uniformly at random among
all available alternatives" (Section 6); this module provides that simulation
plus deterministic variants useful for examples and tests:

* :class:`RandomOracle` — the paper's simulated user (seeded for
  reproducibility);
* :class:`AlwaysExpandOracle` / :class:`AlwaysUnifyOracle` — fixed policies;
* :class:`ScriptedOracle` — replays a prepared list of decisions;
* :class:`CallbackOracle` — delegates to an arbitrary function;
* :class:`InteractiveOracle` — prompts on stdin (used by an example, never by
  tests);
* :class:`DeferredOracle` — answers *asynchronously*: ``decide`` never returns
  an operation but registers a :class:`PendingDecision` and raises
  :class:`FrontierPending`, parking the asking update until somebody posts an
  answer (the service layer's frontier inbox is built on this).
"""

from __future__ import annotations

import itertools
import random
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Union

from ..storage.interface import DatabaseView
from .frontier import (
    DeleteSubsetOperation,
    ExpandOperation,
    FrontierOperation,
    FrontierRequest,
    NegativeFrontierRequest,
    PositiveFrontierRequest,
    UnifyOperation,
)


class OracleError(RuntimeError):
    """Raised when an oracle cannot produce a decision."""


class FrontierOracle(ABC):
    """Something that can answer frontier requests (a user, or a simulation)."""

    @abstractmethod
    def decide(
        self, request: FrontierRequest, view: DatabaseView
    ) -> FrontierOperation:
        """Return the frontier operation to perform for *request*."""

    def cancel(self, decision_id: int) -> None:
        """Withdraw an asynchronous decision whose asking update aborted.

        A no-op for synchronous oracles (they never leave decisions open);
        :class:`DeferredOracle` overrides it and wrapping oracles forward it,
        so executions can always cancel through whatever oracle they hold.
        """

    def reset(self) -> None:
        """Reset any internal state (between experiment runs)."""


class RandomOracle(FrontierOracle):
    """Uniform random choice among all available alternatives (Section 6).

    Because a unification (rather than an expansion) is chosen with non-zero
    probability on every positive frontier, all chases terminate with
    probability one even when the mappings have cycles — the property the
    paper relies on for its experiments.
    """

    def __init__(self, seed: Optional[int] = None, rng: Optional[random.Random] = None):
        if rng is not None:
            self._rng = rng
        else:
            self._rng = random.Random(seed)
        self._seed = seed

    def decide(
        self, request: FrontierRequest, view: DatabaseView
    ) -> FrontierOperation:
        alternatives = request.alternatives()
        if not alternatives:
            raise OracleError("frontier request offers no alternatives: {!r}".format(request))
        return self._rng.choice(alternatives)

    def reset(self) -> None:
        if self._seed is not None:
            self._rng = random.Random(self._seed)


class AlwaysExpandOracle(FrontierOracle):
    """Always expand positive frontier tuples; delete the first candidate otherwise.

    Useful to exhibit the controlled non-termination of cyclic mappings (the
    genealogy example keeps producing new ancestors for as long as the oracle
    keeps expanding).
    """

    def decide(
        self, request: FrontierRequest, view: DatabaseView
    ) -> FrontierOperation:
        if isinstance(request, PositiveFrontierRequest):
            return ExpandOperation(request.frontier_tuples[0])
        return DeleteSubsetOperation((request.candidates[0],))


class AlwaysUnifyOracle(FrontierOracle):
    """Prefer unification with the first candidate; expand only when forced.

    This is the most "conservative" user: it never grows the database at a
    frontier, so every forward chase terminates quickly.
    """

    def decide(
        self, request: FrontierRequest, view: DatabaseView
    ) -> FrontierOperation:
        if isinstance(request, NegativeFrontierRequest):
            return DeleteSubsetOperation((request.candidates[0],))
        for frontier_tuple in request.frontier_tuples:
            if frontier_tuple.candidates:
                return UnifyOperation(frontier_tuple, frontier_tuple.candidates[0])
        return ExpandOperation(request.frontier_tuples[0])


class ScriptedOracle(FrontierOracle):
    """Replay a fixed sequence of frontier operations.

    Each scripted entry may be a ready-made :class:`FrontierOperation` or a
    callable ``request, view -> FrontierOperation``; the latter is convenient
    when the exact frontier tuple objects are not known up front.
    """

    def __init__(
        self,
        script: Sequence[
            Union[FrontierOperation, Callable[[FrontierRequest, DatabaseView], FrontierOperation]]
        ],
    ):
        self._script = list(script)
        self._position = 0

    def decide(
        self, request: FrontierRequest, view: DatabaseView
    ) -> FrontierOperation:
        if self._position >= len(self._script):
            raise OracleError(
                "scripted oracle exhausted after {} decisions".format(len(self._script))
            )
        entry = self._script[self._position]
        self._position += 1
        if callable(entry) and not isinstance(
            entry, (ExpandOperation, UnifyOperation, DeleteSubsetOperation)
        ):
            return entry(request, view)
        return entry

    @property
    def decisions_used(self) -> int:
        """How many scripted decisions have been consumed."""
        return self._position

    def reset(self) -> None:
        self._position = 0


class CallbackOracle(FrontierOracle):
    """Delegate every decision to a user-supplied function."""

    def __init__(
        self, callback: Callable[[FrontierRequest, DatabaseView], FrontierOperation]
    ):
        self._callback = callback

    def decide(
        self, request: FrontierRequest, view: DatabaseView
    ) -> FrontierOperation:
        return self._callback(request, view)


class InteractiveOracle(FrontierOracle):
    """Prompt a human on standard input (for the interactive example only)."""

    def __init__(self, input_function: Callable[[str], str] = input, echo: Callable[[str], None] = print):
        self._input = input_function
        self._echo = echo

    def decide(
        self, request: FrontierRequest, view: DatabaseView
    ) -> FrontierOperation:
        alternatives = request.alternatives()
        self._echo("Frontier reached for {}:".format(request.violation.describe()))
        for index, alternative in enumerate(alternatives):
            self._echo("  [{}] {}".format(index, alternative.describe()))
        while True:
            answer = self._input("choose an option number: ").strip()
            if answer.isdigit() and int(answer) < len(alternatives):
                return alternatives[int(answer)]
            self._echo("please enter a number between 0 and {}".format(len(alternatives) - 1))


class CountingOracle(FrontierOracle):
    """Wrap another oracle and count how often it is consulted.

    The experiment harness uses this to report frontier-operation counts,
    a proxy for "how much human attention a workload would consume".
    """

    def __init__(self, inner: FrontierOracle):
        self._inner = inner
        self.positive_requests = 0
        self.negative_requests = 0

    def decide(
        self, request: FrontierRequest, view: DatabaseView
    ) -> FrontierOperation:
        if isinstance(request, PositiveFrontierRequest):
            self.positive_requests += 1
        else:
            self.negative_requests += 1
        return self._inner.decide(request, view)

    @property
    def total_requests(self) -> int:
        """Total number of frontier requests answered."""
        return self.positive_requests + self.negative_requests

    def cancel(self, decision_id: int) -> None:
        self._inner.cancel(decision_id)

    def reset(self) -> None:
        self.positive_requests = 0
        self.negative_requests = 0
        self._inner.reset()


@dataclass
class PendingDecision:
    """A frontier question that has been asked but not yet answered.

    The decision is *answered* when a client posts a frontier operation for it
    and *cancelled* when the asking update was aborted (its restart will ask a
    fresh question).  A decision can be answered at most once; answering a
    cancelled or already-answered decision is an :class:`OracleError`.
    """

    decision_id: int
    request: "FrontierRequest"
    answer: Optional[FrontierOperation] = None
    answered: bool = False
    cancelled: bool = False

    @property
    def is_open(self) -> bool:
        """``True`` while the decision still awaits an answer."""
        return not self.answered and not self.cancelled

    def alternatives(self) -> List[FrontierOperation]:
        """The legal answers, in the order clients may index them."""
        return self.request.alternatives()


class FrontierPending(RuntimeError):
    """Raised by :class:`DeferredOracle` when a decision has no answer yet.

    Carries the registered :class:`PendingDecision` so the execution layer can
    park the update and the service layer can route the question to a client.
    """

    def __init__(self, decision: PendingDecision):
        super().__init__(
            "frontier decision #{} is pending a human answer".format(
                decision.decision_id
            )
        )
        self.decision = decision


class DeferredOracle(FrontierOracle):
    """An oracle that never answers synchronously: the asynchronous inbox core.

    ``decide`` registers the request as a :class:`PendingDecision` and raises
    :class:`FrontierPending`; the asking update is parked in
    ``WAITING_FRONTIER`` by its :class:`~repro.concurrency.execution.UpdateExecution`.
    Later, a client answers via :meth:`post` (with a ready frontier operation
    or an index into the request's alternatives) and the update is resumed
    with that operation — ``decide`` itself is never retried.
    """

    def __init__(self, start: int = 1) -> None:
        #: Open decisions only; closed ones are dropped so a long-running
        #: service does not retain every request ever asked.
        self._decisions: Dict[int, PendingDecision] = {}
        #: Ids of cancelled decisions.  Issued ids are monotonic, so a missing
        #: id below the counter was closed — this set only disambiguates
        #: "cancelled" from "already answered" in errors, and it grows only
        #: with aborts of parked updates, not with every decision served.
        self._cancelled_ids: set = set()
        #: *start* lets a restored service resume numbering past everything a
        #: checkpointed predecessor issued, so question-routing envelopes
        #: still in flight can never collide with fresh decisions.
        self._issued = start - 1
        self._counter = itertools.count(start)

    @property
    def next_decision_id(self) -> int:
        """The id the next :meth:`decide` will issue (checkpointed by services)."""
        return self._issued + 1

    def decide(
        self, request: FrontierRequest, view: DatabaseView
    ) -> FrontierOperation:
        decision = PendingDecision(decision_id=next(self._counter), request=request)
        self._issued = decision.decision_id
        self._decisions[decision.decision_id] = decision
        raise FrontierPending(decision)

    # ------------------------------------------------------------------
    # The asynchronous half
    # ------------------------------------------------------------------
    def get(self, decision_id: int) -> PendingDecision:
        """Look an *open* decision up; closed or unknown ids are an :class:`OracleError`."""
        decision = self._decisions.get(decision_id)
        if decision is None:
            self._raise_closed_or_unknown(decision_id)
        return decision

    def _raise_closed_or_unknown(self, decision_id: int) -> None:
        if decision_id in self._cancelled_ids:
            raise OracleError(
                "frontier decision #{} was cancelled (its update aborted)".format(decision_id)
            )
        if 0 < decision_id <= self._issued:
            raise OracleError(
                "frontier decision #{} was already answered".format(decision_id)
            )
        raise OracleError("unknown frontier decision #{}".format(decision_id))

    def pending(self) -> List[PendingDecision]:
        """Every decision still awaiting an answer, oldest first."""
        return [self._decisions[decision_id] for decision_id in sorted(self._decisions)]

    def post(
        self, decision_id: int, answer: Union[FrontierOperation, int]
    ) -> PendingDecision:
        """Answer a pending decision.

        *answer* is a ready :class:`FrontierOperation` or an index into the
        request's :meth:`~PositiveFrontierRequest.alternatives`.  Posting to a
        cancelled decision, answering twice, indexing out of range, or
        supplying an operation that does not answer *this* request raises
        :class:`OracleError`; the first valid answer wins.
        """
        decision = self.get(decision_id)
        if isinstance(answer, int):
            alternatives = decision.alternatives()
            if not 0 <= answer < len(alternatives):
                raise OracleError(
                    "decision #{} has {} alternatives; got index {}".format(
                        decision_id, len(alternatives), answer
                    )
                )
            answer = alternatives[answer]
        else:
            self._validate_answer(decision, answer)
        decision.answer = answer
        decision.answered = True
        del self._decisions[decision_id]
        return decision

    @staticmethod
    def _validate_answer(
        decision: PendingDecision, answer: FrontierOperation
    ) -> None:
        """Reject operations built for a *different* question.

        Without this, one wrong ``decision_id`` in a client would resume a
        parked update with writes meant for another repair.  Negative
        requests additionally allow any non-empty subset of their candidates
        (the singleton alternatives are just the uniform-simulation menu).
        """
        request = decision.request
        if isinstance(request, NegativeFrontierRequest):
            if (
                isinstance(answer, DeleteSubsetOperation)
                and answer.rows
                and set(answer.rows) <= set(request.candidates)
            ):
                return
        elif answer in request.alternatives():
            return
        raise OracleError(
            "operation {!r} does not answer frontier decision #{}".format(
                answer, decision.decision_id
            )
        )

    def cancel(self, decision_id: int) -> None:
        """Cancel a decision (idempotent; used when the asking update aborts)."""
        decision = self._decisions.pop(decision_id, None)
        if decision is not None:
            decision.cancelled = True
            self._cancelled_ids.add(decision_id)

    def reset(self) -> None:
        self._decisions.clear()
        self._cancelled_ids.clear()
        self._issued = 0
        self._counter = itertools.count(1)
