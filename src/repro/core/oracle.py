"""Frontier oracles: the stand-ins for the humans in the cooperative chase.

Youtopia is designed around human intervention: when a chase reaches a
frontier it blocks until a user performs a frontier operation.  The paper's
experiments simulate the user by "choosing an option uniformly at random among
all available alternatives" (Section 6); this module provides that simulation
plus deterministic variants useful for examples and tests:

* :class:`RandomOracle` — the paper's simulated user (seeded for
  reproducibility);
* :class:`AlwaysExpandOracle` / :class:`AlwaysUnifyOracle` — fixed policies;
* :class:`ScriptedOracle` — replays a prepared list of decisions;
* :class:`CallbackOracle` — delegates to an arbitrary function;
* :class:`InteractiveOracle` — prompts on stdin (used by an example, never by
  tests).
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Callable, Iterable, List, Optional, Sequence, Union

from ..storage.interface import DatabaseView
from .frontier import (
    DeleteSubsetOperation,
    ExpandOperation,
    FrontierOperation,
    FrontierRequest,
    NegativeFrontierRequest,
    PositiveFrontierRequest,
    UnifyOperation,
)


class OracleError(RuntimeError):
    """Raised when an oracle cannot produce a decision."""


class FrontierOracle(ABC):
    """Something that can answer frontier requests (a user, or a simulation)."""

    @abstractmethod
    def decide(
        self, request: FrontierRequest, view: DatabaseView
    ) -> FrontierOperation:
        """Return the frontier operation to perform for *request*."""

    def reset(self) -> None:
        """Reset any internal state (between experiment runs)."""


class RandomOracle(FrontierOracle):
    """Uniform random choice among all available alternatives (Section 6).

    Because a unification (rather than an expansion) is chosen with non-zero
    probability on every positive frontier, all chases terminate with
    probability one even when the mappings have cycles — the property the
    paper relies on for its experiments.
    """

    def __init__(self, seed: Optional[int] = None, rng: Optional[random.Random] = None):
        if rng is not None:
            self._rng = rng
        else:
            self._rng = random.Random(seed)
        self._seed = seed

    def decide(
        self, request: FrontierRequest, view: DatabaseView
    ) -> FrontierOperation:
        alternatives = request.alternatives()
        if not alternatives:
            raise OracleError("frontier request offers no alternatives: {!r}".format(request))
        return self._rng.choice(alternatives)

    def reset(self) -> None:
        if self._seed is not None:
            self._rng = random.Random(self._seed)


class AlwaysExpandOracle(FrontierOracle):
    """Always expand positive frontier tuples; delete the first candidate otherwise.

    Useful to exhibit the controlled non-termination of cyclic mappings (the
    genealogy example keeps producing new ancestors for as long as the oracle
    keeps expanding).
    """

    def decide(
        self, request: FrontierRequest, view: DatabaseView
    ) -> FrontierOperation:
        if isinstance(request, PositiveFrontierRequest):
            return ExpandOperation(request.frontier_tuples[0])
        return DeleteSubsetOperation((request.candidates[0],))


class AlwaysUnifyOracle(FrontierOracle):
    """Prefer unification with the first candidate; expand only when forced.

    This is the most "conservative" user: it never grows the database at a
    frontier, so every forward chase terminates quickly.
    """

    def decide(
        self, request: FrontierRequest, view: DatabaseView
    ) -> FrontierOperation:
        if isinstance(request, NegativeFrontierRequest):
            return DeleteSubsetOperation((request.candidates[0],))
        for frontier_tuple in request.frontier_tuples:
            if frontier_tuple.candidates:
                return UnifyOperation(frontier_tuple, frontier_tuple.candidates[0])
        return ExpandOperation(request.frontier_tuples[0])


class ScriptedOracle(FrontierOracle):
    """Replay a fixed sequence of frontier operations.

    Each scripted entry may be a ready-made :class:`FrontierOperation` or a
    callable ``request, view -> FrontierOperation``; the latter is convenient
    when the exact frontier tuple objects are not known up front.
    """

    def __init__(
        self,
        script: Sequence[
            Union[FrontierOperation, Callable[[FrontierRequest, DatabaseView], FrontierOperation]]
        ],
    ):
        self._script = list(script)
        self._position = 0

    def decide(
        self, request: FrontierRequest, view: DatabaseView
    ) -> FrontierOperation:
        if self._position >= len(self._script):
            raise OracleError(
                "scripted oracle exhausted after {} decisions".format(len(self._script))
            )
        entry = self._script[self._position]
        self._position += 1
        if callable(entry) and not isinstance(
            entry, (ExpandOperation, UnifyOperation, DeleteSubsetOperation)
        ):
            return entry(request, view)
        return entry

    @property
    def decisions_used(self) -> int:
        """How many scripted decisions have been consumed."""
        return self._position

    def reset(self) -> None:
        self._position = 0


class CallbackOracle(FrontierOracle):
    """Delegate every decision to a user-supplied function."""

    def __init__(
        self, callback: Callable[[FrontierRequest, DatabaseView], FrontierOperation]
    ):
        self._callback = callback

    def decide(
        self, request: FrontierRequest, view: DatabaseView
    ) -> FrontierOperation:
        return self._callback(request, view)


class InteractiveOracle(FrontierOracle):
    """Prompt a human on standard input (for the interactive example only)."""

    def __init__(self, input_function: Callable[[str], str] = input, echo: Callable[[str], None] = print):
        self._input = input_function
        self._echo = echo

    def decide(
        self, request: FrontierRequest, view: DatabaseView
    ) -> FrontierOperation:
        alternatives = request.alternatives()
        self._echo("Frontier reached for {}:".format(request.violation.describe()))
        for index, alternative in enumerate(alternatives):
            self._echo("  [{}] {}".format(index, alternative.describe()))
        while True:
            answer = self._input("choose an option number: ").strip()
            if answer.isdigit() and int(answer) < len(alternatives):
                return alternatives[int(answer)]
            self._echo("please enter a number between 0 and {}".format(len(alternatives) - 1))


class CountingOracle(FrontierOracle):
    """Wrap another oracle and count how often it is consulted.

    The experiment harness uses this to report frontier-operation counts,
    a proxy for "how much human attention a workload would consume".
    """

    def __init__(self, inner: FrontierOracle):
        self._inner = inner
        self.positive_requests = 0
        self.negative_requests = 0

    def decide(
        self, request: FrontierRequest, view: DatabaseView
    ) -> FrontierOperation:
        if isinstance(request, PositiveFrontierRequest):
            self.positive_requests += 1
        else:
            self.negative_requests += 1
        return self._inner.decide(request, view)

    @property
    def total_requests(self) -> int:
        """Total number of frontier requests answered."""
        return self.positive_requests + self.negative_requests

    def reset(self) -> None:
        self.positive_requests = 0
        self.negative_requests = 0
        self._inner.reset()
