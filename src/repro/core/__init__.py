"""Core package: terms, tuples, mappings, violations, the chase and updates."""

from .atoms import Atom
from .chase import ChaseConfig, ChaseEngine
from .frontier import (
    DeleteSubsetOperation,
    DeterministicRepair,
    ExpandOperation,
    FrontierTuple,
    NegativeFrontierRequest,
    PositiveFrontierRequest,
    UnifyOperation,
)
from .oracle import (
    AlwaysExpandOracle,
    AlwaysUnifyOracle,
    CallbackOracle,
    CountingOracle,
    DeferredOracle,
    FrontierOracle,
    FrontierPending,
    InteractiveOracle,
    OracleError,
    PendingDecision,
    RandomOracle,
    ScriptedOracle,
)
from .schema import DatabaseSchema, RelationSchema, SchemaError
from .terms import Constant, LabeledNull, NullFactory, Variable
from .tgd import MappingGraph, MappingSet, Tgd, TgdError, parse_tgd, parse_tgds
from .tuples import Tuple, make_tuple
from .update import (
    DeleteOperation,
    InsertOperation,
    NullReplacementOperation,
    UpdateRecord,
    UpdateStatus,
    UserOperation,
)
from .violations import Violation, ViolationKind, find_all_violations, satisfies_all
from .writes import NullReplacement, Write, WriteKind, delete, insert, modify

__all__ = [
    "Atom",
    "ChaseConfig",
    "ChaseEngine",
    "Constant",
    "DatabaseSchema",
    "DeleteOperation",
    "DeleteSubsetOperation",
    "DeterministicRepair",
    "ExpandOperation",
    "FrontierOracle",
    "FrontierTuple",
    "InsertOperation",
    "LabeledNull",
    "MappingGraph",
    "MappingSet",
    "NegativeFrontierRequest",
    "NullFactory",
    "NullReplacement",
    "NullReplacementOperation",
    "PositiveFrontierRequest",
    "RandomOracle",
    "RelationSchema",
    "SchemaError",
    "ScriptedOracle",
    "Tgd",
    "TgdError",
    "Tuple",
    "UnifyOperation",
    "UpdateRecord",
    "UpdateStatus",
    "UserOperation",
    "Variable",
    "Violation",
    "ViolationKind",
    "Write",
    "WriteKind",
    "AlwaysExpandOracle",
    "AlwaysUnifyOracle",
    "CallbackOracle",
    "CountingOracle",
    "DeferredOracle",
    "FrontierPending",
    "InteractiveOracle",
    "OracleError",
    "PendingDecision",
    "delete",
    "find_all_violations",
    "insert",
    "make_tuple",
    "modify",
    "parse_tgd",
    "parse_tgds",
    "satisfies_all",
]
