"""Relational atoms, the building blocks of mappings and conjunctive queries.

An atom is a relation name applied to a list of terms, e.g. ``T(n, c, c')``.
Atom terms are either mapping :class:`~repro.core.terms.Variable` objects or
:class:`~repro.core.terms.Constant` objects.  Atoms never contain labeled
nulls: nulls live only in the data.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple as PyTuple

from .terms import Constant, DataTerm, QueryTerm, Variable, is_constant, is_variable
from .tuples import Tuple


class AtomError(ValueError):
    """Raised when an atom is malformed (e.g. contains a labeled null)."""


class Atom:
    """A relational atom ``R(t1, ..., tk)`` over variables and constants."""

    __slots__ = ("_relation", "_terms", "_hash", "_constant_positions", "_variable_positions")

    def __init__(self, relation: str, terms: Iterable[object]):
        normalized: List[QueryTerm] = []
        for term in terms:
            if isinstance(term, (Variable, Constant)):
                normalized.append(term)
            elif isinstance(term, str) and term and term[0].islower():
                # Bare lowercase strings are treated as variables for
                # convenience when building atoms programmatically.
                normalized.append(Variable(term))
            else:
                normalized.append(Constant(term))
        self._relation = relation
        self._terms: PyTuple[QueryTerm, ...] = tuple(normalized)
        self._hash = hash((self._relation, self._terms))
        # Precompiled match structure: constant positions are checked before
        # any allocation (the common failure mode of a hot join candidate),
        # variable positions drive the binding loop.
        self._constant_positions: PyTuple[PyTuple[int, QueryTerm], ...] = tuple(
            (index, term)
            for index, term in enumerate(self._terms)
            if not isinstance(term, Variable)
        )
        self._variable_positions: PyTuple[PyTuple[int, Variable], ...] = tuple(
            (index, term)
            for index, term in enumerate(self._terms)
            if isinstance(term, Variable)
        )

    @property
    def relation(self) -> str:
        """Relation name."""
        return self._relation

    @property
    def terms(self) -> PyTuple[QueryTerm, ...]:
        """Atom terms in positional order."""
        return self._terms

    @property
    def arity(self) -> int:
        """Number of terms."""
        return len(self._terms)

    def __iter__(self) -> Iterator[QueryTerm]:
        return iter(self._terms)

    def __len__(self) -> int:
        return len(self._terms)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Atom):
            return NotImplemented
        return self._relation == other._relation and self._terms == other._terms

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        rendered = ", ".join(str(term) for term in self._terms)
        return "{}({})".format(self._relation, rendered)

    def variables(self) -> PyTuple[Variable, ...]:
        """Variables of the atom, in positional order, with repeats."""
        return tuple(term for term in self._terms if is_variable(term))

    def variable_set(self) -> FrozenSet[Variable]:
        """Set of distinct variables."""
        return frozenset(term for term in self._terms if is_variable(term))

    def constants(self) -> PyTuple[Constant, ...]:
        """Constants of the atom, in positional order."""
        return tuple(term for term in self._terms if is_constant(term))

    def positions_of(self, variable: Variable) -> List[int]:
        """Positions at which *variable* occurs."""
        return [index for index, term in enumerate(self._terms) if term == variable]

    # ------------------------------------------------------------------
    # Instantiation and matching
    # ------------------------------------------------------------------
    def instantiate(self, assignment: Dict[Variable, DataTerm]) -> Tuple:
        """Build the data tuple obtained by applying *assignment* to the atom.

        Every variable of the atom must be bound in *assignment*; constants
        pass through unchanged.
        """
        values: List[DataTerm] = []
        for term in self._terms:
            if is_variable(term):
                try:
                    values.append(assignment[term])
                except KeyError:
                    raise AtomError(
                        "assignment does not bind variable {} of atom {!r}".format(
                            term, self
                        )
                    ) from None
            else:
                values.append(term)
        return Tuple(self._relation, values)

    def match(
        self, row: Tuple, assignment: Optional[Dict[Variable, DataTerm]] = None
    ) -> Optional[Dict[Variable, DataTerm]]:
        """Try to match *row* against this atom, extending *assignment*.

        Matching binds each variable of the atom to the corresponding term of
        the row.  A constant in the atom must equal the corresponding row
        term exactly (labeled nulls do not match constants: the chase treats a
        null as a distinct, unknown value).  Repeated variables must bind to
        equal terms.

        Returns the extended assignment, or ``None`` when the row does not
        match.  The input assignment is never mutated.
        """
        values = row.values
        if row.relation != self._relation or len(values) != len(self._terms):
            return None
        # Constants first, before any allocation: a candidate failing on a
        # constant position costs nothing but the comparisons.
        for index, term in self._constant_positions:
            if term != values[index]:
                return None
        result: Dict[Variable, DataTerm] = dict(assignment) if assignment else {}
        for index, term in self._variable_positions:
            value = values[index]
            bound = result.get(term)
            if bound is None:
                result[term] = value
            elif bound != value:
                return None
        return result

    def rename(self, renaming: Dict[Variable, Variable]) -> "Atom":
        """Return a copy with variables renamed per *renaming*."""
        return Atom(
            self._relation,
            [renaming.get(term, term) if is_variable(term) else term for term in self._terms],
        )


def atoms_variables(atoms: Sequence[Atom]) -> FrozenSet[Variable]:
    """Union of the variable sets of *atoms*."""
    variables: set = set()
    for atom in atoms:
        variables.update(atom.variable_set())
    return frozenset(variables)


def atoms_relations(atoms: Sequence[Atom]) -> FrozenSet[str]:
    """Set of relation names mentioned by *atoms*."""
    return frozenset(atom.relation for atom in atoms)
