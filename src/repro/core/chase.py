"""The Youtopia chase engine for a single update (Algorithm 1).

The engine runs the forward and backward chase variants interleaved, as
dictated by the kinds of the violations in its queue: LHS-violations are
repaired forward (generating tuples, possibly stopping at a positive
frontier), RHS-violations backward (deleting witness tuples, possibly stopping
at a negative frontier).  Whenever no deterministic repair is possible and
violations remain, the engine consults its :class:`~repro.core.oracle.FrontierOracle`
— the stand-in for the human user — and resumes with the writes the chosen
frontier operation implies.

This engine operates on a single-version :class:`~repro.storage.interface.MutableDatabase`
and is what the examples, fixtures and the initial-database generator use.
The concurrency-control layer drives the same repair logic step by step over
the multiversion store; see :mod:`repro.concurrency.execution`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..storage.interface import MutableDatabase
from .frontier import writes_for_operation
from .oracle import AlwaysUnifyOracle, FrontierOracle
from .planner import RepairPlanner
from .provenance import ChaseTree
from .terms import NullFactory
from .tgd import Tgd
from .update import UpdateRecord, UpdateStatus, UserOperation
from .violations import Violation, violations_for_writes
from .writes import Write, WriteKind


class ChaseBudgetExceeded(RuntimeError):
    """Raised when ``raise_on_budget=True`` and the step budget runs out."""


@dataclass
class ChaseConfig:
    """Tunable limits and switches for a chase run."""

    #: Maximum number of chase steps (write-set applications) per update.
    max_steps: int = 10_000
    #: Maximum number of frontier operations per update.
    max_frontier_operations: int = 10_000
    #: Raise instead of returning an unterminated record when a budget is hit.
    raise_on_budget: bool = False
    #: Record a provenance tree for the run.
    track_provenance: bool = True
    #: SQL chase path: ``None`` defers to ``REPRO_SQL_CHASE``; truthy values
    #: evaluate violation queries set-based in SQLite (a
    #: :class:`~repro.storage.mirror.DeltaMirror` shadows the database),
    #: ``"check"`` additionally verifies every answer against the Python
    #: evaluator.  Identical violation sets either way — the Python path
    #: stays the differential oracle.
    sql_chase: Optional[object] = None


class ChaseEngine:
    """Runs complete Youtopia updates against a single-version database."""

    def __init__(
        self,
        database: MutableDatabase,
        mappings: Sequence[Tgd],
        oracle: Optional[FrontierOracle] = None,
        null_factory: Optional[NullFactory] = None,
        config: Optional[ChaseConfig] = None,
    ):
        from ..query.compiled import compile_mappings

        self._database = database
        self._mappings: List[Tgd] = list(mappings)
        #: Shared compiled plans: one compilation per mapping per process.
        self._compiled = compile_mappings(self._mappings)
        self._oracle = oracle if oracle is not None else AlwaysUnifyOracle()
        if null_factory is None:
            # Start numbering past the nulls already stored so that "fresh"
            # really means fresh (Example 1.1 generates x3 because x1 and x2
            # are already taken in Figure 2).
            null_factory = NullFactory.avoiding_view(database)
        self._null_factory = null_factory
        self._config = config if config is not None else ChaseConfig()
        self.last_provenance: Optional[ChaseTree] = None
        from ..query.sql_chase import resolve_sql_chase

        self._sql_mirror = None
        self._sql_evaluator = None
        mode = resolve_sql_chase(self._config.sql_chase)
        if mode:
            from ..query.sql_chase import SqlViolationEvaluator
            from ..storage.mirror import DeltaMirror

            self._sql_mirror = DeltaMirror(database.schema)
            self._sql_evaluator = SqlViolationEvaluator(
                self._sql_mirror, differential=(mode == "check")
            )

    @property
    def database(self) -> MutableDatabase:
        """The database the engine chases over."""
        return self._database

    @property
    def mappings(self) -> List[Tgd]:
        """The mappings maintained by the engine."""
        return list(self._mappings)

    @property
    def oracle(self) -> FrontierOracle:
        """The frontier oracle consulted when nondeterminism is reached."""
        return self._oracle

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self, operation: UserOperation) -> UpdateRecord:
        """Execute the complete update induced by *operation* (Definition 2.6)."""
        record = UpdateRecord(operation=operation, status=UpdateStatus.RUNNING)
        planner = RepairPlanner(self._mappings, self._null_factory)
        tree = ChaseTree() if self._config.track_provenance else None
        root_id = tree.add_event(operation.describe()) if tree is not None else None
        self.last_provenance = tree

        write_set: List[Write] = operation.initial_writes(self._database)
        violation_queue: List[Violation] = []
        if self._sql_mirror is not None:
            # The engine's database may have been mutated between runs by
            # callers (fixtures do); re-shadow it wholesale once per run, then
            # track it incrementally per step.
            self._sql_mirror.reset_from(self._database)

        while True:
            # ---------------- deterministic stratum ----------------
            while write_set:
                if record.steps >= self._config.max_steps:
                    return self._budget_exhausted(record)
                record.steps += 1
                applied = self._apply_writes(write_set, record, tree, root_id)
                if self._sql_mirror is not None:
                    self._sql_mirror.apply_writes_direct(applied)
                new_violations = violations_for_writes(
                    applied,
                    self._compiled,
                    self._database,
                    evaluator=self._sql_evaluator,
                )
                if tree is not None:
                    for violation in new_violations:
                        tree.add_violation(
                            violation, caused_by=[root_id] if root_id else []
                        )
                violation_queue = planner.refresh_queue(
                    violation_queue, new_violations, self._database
                )
                write_set, violation_queue, examined = planner.next_deterministic_writes(
                    violation_queue, self._database
                )
                record.violations_processed += examined

            # ---------------- stratum ended ----------------
            violation_queue = planner.refresh_queue(violation_queue, [], self._database)
            if not violation_queue:
                record.terminated = True
                record.status = UpdateStatus.TERMINATED
                return record
            if record.frontier_operation_count >= self._config.max_frontier_operations:
                return self._budget_exhausted(record)

            record.status = UpdateStatus.WAITING_FRONTIER
            request = planner.build_request(violation_queue[0], self._database)
            if request is None:
                violation_queue = violation_queue[1:]
                continue
            chosen = self._oracle.decide(request, self._database)
            record.frontier_operations.append(chosen)
            record.status = UpdateStatus.RUNNING
            if tree is not None:
                tree.add_event(chosen.describe(), caused_by=[root_id] if root_id else [])
            write_set = writes_for_operation(chosen, self._database)
            planner.note_frontier_operation(chosen)
            if not write_set:
                # A unification whose nulls occur nowhere in the database
                # produces no writes; the planner bookkeeping above is the
                # progress, so fall through and re-plan.
                write_set, violation_queue, examined = planner.next_deterministic_writes(
                    violation_queue, self._database
                )
                record.violations_processed += examined

    def run_all(self, operations: Sequence[UserOperation]) -> List[UpdateRecord]:
        """Run several updates serially, in the order given."""
        return [self.run(operation) for operation in operations]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _budget_exhausted(self, record: UpdateRecord) -> UpdateRecord:
        record.terminated = False
        record.status = UpdateStatus.BUDGET_EXHAUSTED
        if self._config.raise_on_budget:
            raise ChaseBudgetExceeded(
                "chase exceeded its budget: {}".format(record.summary())
            )
        return record

    def _apply_writes(
        self,
        write_set: Sequence[Write],
        record: UpdateRecord,
        tree: Optional[ChaseTree],
        root_id: Optional[int],
    ) -> List[Write]:
        """Apply *write_set* to the database; return the writes that had effect."""
        applied: List[Write] = []
        for write in write_set:
            changed = False
            if write.kind is WriteKind.INSERT:
                changed = self._database.insert(write.row)
            elif write.kind is WriteKind.DELETE:
                changed = self._database.delete(write.row)
            else:
                if write.old_row is not None and self._database.contains(write.old_row):
                    self._database.delete(write.old_row)
                    self._database.insert(write.row)
                    changed = True
            if changed:
                applied.append(write)
                record.writes.append(write)
                if tree is not None:
                    tree.add_write(write, caused_by=[root_id] if root_id else [])
        return applied


def chase_insert(engine: ChaseEngine, relation: str, *values: object) -> UpdateRecord:
    """Convenience helper: run the update induced by inserting a tuple."""
    from .tuples import make_tuple
    from .update import InsertOperation

    return engine.run(InsertOperation(make_tuple(relation, *values)))


def chase_delete(engine: ChaseEngine, relation: str, *values: object) -> UpdateRecord:
    """Convenience helper: run the update induced by deleting a tuple."""
    from .tuples import make_tuple
    from .update import DeleteOperation

    return engine.run(DeleteOperation(make_tuple(relation, *values)))
