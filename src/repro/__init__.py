"""repro — a reproduction of "Cooperative Update Exchange in the Youtopia System".

The package implements the Youtopia update-exchange model of Kot & Koch
(VLDB 2009): a cooperative chase over relational data connected by
tuple-generating dependencies, frontier tuples and frontier operations,
optimistic multiversion concurrency control for concurrently running updates,
and the NAIVE / COARSE / PRECISE cascading-abort algorithms evaluated in the
paper's experiments.

Quick start::

    from repro import ChaseEngine, InsertOperation, RandomOracle, make_tuple
    from repro.fixtures import travel_repository

    database, mappings = travel_repository()
    engine = ChaseEngine(database, mappings, oracle=RandomOracle(seed=0))
    record = engine.run(InsertOperation(make_tuple("T", "Niagara Falls", "ABC Tours", "Toronto")))
    print(record.summary())
"""

from .core import (
    AlwaysExpandOracle,
    AlwaysUnifyOracle,
    Atom,
    ChaseConfig,
    ChaseEngine,
    Constant,
    DatabaseSchema,
    DeferredOracle,
    DeleteOperation,
    FrontierOracle,
    InsertOperation,
    LabeledNull,
    MappingSet,
    NullFactory,
    NullReplacementOperation,
    RandomOracle,
    RelationSchema,
    ScriptedOracle,
    Tgd,
    Tuple,
    UpdateRecord,
    Variable,
    Violation,
    ViolationKind,
    find_all_violations,
    make_tuple,
    parse_tgd,
    parse_tgds,
    satisfies_all,
)
from .storage import MemoryDatabase

__version__ = "1.1.0"

__all__ = [
    "AlwaysExpandOracle",
    "AlwaysUnifyOracle",
    "Atom",
    "ChaseConfig",
    "ChaseEngine",
    "Constant",
    "DatabaseSchema",
    "DeferredOracle",
    "DeleteOperation",
    "FrontierOracle",
    "InsertOperation",
    "LabeledNull",
    "MappingSet",
    "MemoryDatabase",
    "NullFactory",
    "NullReplacementOperation",
    "RandomOracle",
    "RelationSchema",
    "ScriptedOracle",
    "Tgd",
    "Tuple",
    "UpdateRecord",
    "Variable",
    "Violation",
    "ViolationKind",
    "find_all_violations",
    "make_tuple",
    "parse_tgd",
    "parse_tgds",
    "satisfies_all",
    "__version__",
]
