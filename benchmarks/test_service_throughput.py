"""Service panel: committed-update throughput and frontier-wait latency.

Not a figure of the paper — the paper runs pre-assembled batches — but the
serving-layer analogue of its experiments: a closed-loop population of
think-time clients drives the :class:`~repro.service.RepositoryService`, with
frontier questions answered a configurable number of ticks late.  The panel
reports committed updates per second and the p50/p95 frontier wait, the two
quantities a capacity planner for a collaborative Youtopia deployment would
watch.
"""

import os

from conftest import _emit

from repro.service import AdmissionConfig, RepositoryService
from repro.workload import ClientSpec, ClosedLoopDriver, build_environment, build_workload
from repro.workload.experiment import ExperimentConfig, INSERT_WORKLOAD


def _service_scale():
    scale = os.environ.get("REPRO_BENCH_SCALE", "small").lower()
    if scale == "paper":
        return 16, 8  # clients, updates per client
    if scale == "tiny":
        return 4, 2
    return 8, 4


def _build_driver():
    clients, updates_each = _service_scale()
    config = ExperimentConfig.tiny_scale()
    environment = build_environment(config)
    operations = build_workload(
        environment, INSERT_WORKLOAD, seed=config.seed + 7
    )
    needed = clients * updates_each
    while len(operations) < needed:
        operations.extend(
            build_workload(environment, INSERT_WORKLOAD, seed=config.seed + len(operations))
        )
    service = RepositoryService(
        environment.initial,
        environment.mappings,
        tracker="PRECISE",
        admission=AdmissionConfig(max_in_flight=clients, batch_size=clients),
        max_total_steps=2_000_000,
    )
    specs = [
        ClientSpec(
            name="client-{:02d}".format(index),
            operations=list(
                operations[index * updates_each : (index + 1) * updates_each]
            ),
            think_time=1,
        )
        for index in range(clients)
    ]
    return service, ClosedLoopDriver(service, specs, answer_delay=2)


def test_service_throughput_panel(benchmark):
    """Committed updates/sec and frontier-wait percentiles for the service."""

    def run_closed_loop():
        service, driver = _build_driver()
        report = driver.run(max_ticks=50_000)
        return service, report

    service, report = benchmark.pedantic(run_closed_loop, rounds=1, iterations=1)
    metrics = service.metrics_snapshot()

    clients, updates_each = _service_scale()
    _emit("")
    _emit(
        "Service throughput panel ({} clients x {} updates, answer delay 2 ticks)".format(
            clients, updates_each
        )
    )
    _emit("  ticks                    {:>10}".format(report.ticks))
    _emit("  committed updates        {:>10.0f}".format(metrics["committed"]))
    _emit("  committed updates/sec    {:>10.1f}".format(metrics["throughput_per_second"]))
    _emit("  abort rate               {:>10.3f}".format(metrics["abort_rate"]))
    _emit("  frontier parks           {:>10.0f}".format(metrics["parks"]))
    _emit("  p50 frontier wait (s)    {:>10.4f}".format(metrics["frontier_wait_p50_seconds"]))
    _emit("  p95 frontier wait (s)    {:>10.4f}".format(metrics["frontier_wait_p95_seconds"]))
    _emit("  p50 turnaround (s)       {:>10.4f}".format(metrics["turnaround_p50_seconds"]))

    assert report.all_done, "closed loop did not drain within the tick budget"
    assert metrics["committed"] == clients * updates_each
    assert metrics["throughput_per_second"] > 0
    # Parks are resumed or cancelled by aborts — never leaked.
    assert metrics["resumes"] <= metrics["parks"]
    if metrics["resumes"] > 0:
        assert metrics["frontier_wait_p50_seconds"] > 0
