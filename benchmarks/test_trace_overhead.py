"""Tracing overhead microbench: the disabled hot path must stay under 5%.

Every instrumentation site the observability layer added to the hot path is
behind an ``if tracer.enabled:`` guard (plus the occasional
``span is not None`` check), so with tracing off the only added work is the
guard evaluations themselves.  That is directly measurable:

* a closed-loop service run with the default (noop) tracer gives the
  baseline wall time and, re-run with a live tracer, the span count — an
  upper-bound proxy for how many guard sites actually fire per run;
* a tight-loop microbench prices one guard evaluation on the noop tracer;
* ``guard_cost x guard_evaluations / baseline_wall`` bounds the disabled
  path's overhead fraction.  A generous 4x multiplier on the span count
  covers guards that are evaluated but do not open spans (conflict-free
  steps, unparked tickets).

The measured fraction lands in the ``trace_overhead`` entry of
``BENCH_scaling.json``; the benchmarks job prints a GitHub ``::warning``
when it exceeds the 5% budget and ``REPRO_BENCH_STRICT=1`` turns the budget
into an assertion.  The enabled-path slowdown is recorded too (as a factor),
for the curious — it has no budget; tracing on is allowed to cost.
"""

from __future__ import annotations

import os
import time
import timeit

from repro.obs.trace import NOOP_TRACER, Tracer

from test_federation import _merge_entry
from test_service_throughput import _build_driver, _service_scale

#: The disabled-path budget from the observability tentpole.
DISABLED_OVERHEAD_BUDGET = 0.05

#: Timed repeats; the recorded walls are the best of them.
RUNS = 5

#: Safety multiplier from "spans recorded" to "guards evaluated".
GUARDS_PER_SPAN = 4


def _run_closed_loop(tracer=None):
    service, driver = _build_driver()
    if tracer is not None:
        # The driver was built untraced; swap the tracer in before any work
        # runs so the run records the full span set.
        service._tracer = tracer
        service.scheduler._tracer = tracer
    started = time.perf_counter()
    report = driver.run(max_ticks=50_000)
    wall = time.perf_counter() - started
    assert report.all_done
    return wall, service


def _guard_cost_seconds():
    """Price one ``if tracer.enabled:`` evaluation on the noop tracer."""
    iterations = 1_000_000
    tracer = NOOP_TRACER

    def guarded():
        if tracer.enabled:
            raise AssertionError("noop tracer must be disabled")

    def bare():
        pass

    guarded_total = min(timeit.repeat(guarded, number=iterations, repeat=3))
    bare_total = min(timeit.repeat(bare, number=iterations, repeat=3))
    return max(0.0, (guarded_total - bare_total) / iterations)


def test_disabled_tracing_overhead_budget():
    assert os.environ.get("REPRO_TRACE") != "1", (
        "the overhead bench needs the default (disabled) tracer as baseline; "
        "unset REPRO_TRACE"
    )

    # Warm plan caches before timing anything.
    _run_closed_loop()

    disabled_wall = min(_run_closed_loop()[0] for _ in range(RUNS))
    traced_best = None
    spans = 0
    for _ in range(RUNS):
        tracer = Tracer()
        wall, _ = _run_closed_loop(tracer=tracer)
        spans = max(spans, len(tracer.spans))
        if traced_best is None or wall < traced_best:
            traced_best = wall

    guard_cost = _guard_cost_seconds()
    guard_evaluations = spans * GUARDS_PER_SPAN
    disabled_overhead = guard_cost * guard_evaluations / max(disabled_wall, 1e-9)

    clients, updates_each = _service_scale()
    entry = {
        "clients": clients,
        "updates_per_client": updates_each,
        "runs": RUNS,
        "disabled_wall_seconds_best": disabled_wall,
        "traced_wall_seconds_best": traced_best,
        "enabled_overhead_factor": traced_best / max(disabled_wall, 1e-9),
        "spans_per_run": spans,
        "guard_evaluations_estimate": guard_evaluations,
        "guard_cost_nanoseconds": guard_cost * 1e9,
        "disabled_overhead_fraction": disabled_overhead,
        "disabled_overhead_budget": DISABLED_OVERHEAD_BUDGET,
    }
    _merge_entry("trace_overhead", entry)

    print(
        "\ntrace overhead bench: disabled {:.4f}s, traced {:.4f}s "
        "({:.2f}x); {} spans -> ~{} guards at {:.1f}ns each -> "
        "disabled-path overhead {:.4%} (budget {:.0%})".format(
            disabled_wall,
            traced_best,
            entry["enabled_overhead_factor"],
            spans,
            guard_evaluations,
            entry["guard_cost_nanoseconds"],
            disabled_overhead,
            DISABLED_OVERHEAD_BUDGET,
        )
    )

    if disabled_overhead > DISABLED_OVERHEAD_BUDGET:
        # Surfaces as an annotation on the (non-blocking) benchmarks job.
        print(
            "::warning ::disabled-tracing overhead {:.2%} exceeds the "
            "{:.0%} budget".format(disabled_overhead, DISABLED_OVERHEAD_BUDGET)
        )
    if os.environ.get("REPRO_BENCH_STRICT") == "1":
        assert disabled_overhead < DISABLED_OVERHEAD_BUDGET, (
            "disabled-path tracing overhead {:.2%} over budget".format(
                disabled_overhead
            )
        )
