"""Micro-benchmarks of the chase substrate itself.

Not a figure of the paper, but useful context for the experiment numbers: how
fast a single chase runs on the travel fixture, and how the in-memory
violation-query evaluator compares with the SQLite-generated SQL (the backend
ablation called out in DESIGN.md).
"""

from repro.core import ChaseEngine, InsertOperation, RandomOracle, make_tuple
from repro.fixtures import travel_mappings, travel_repository, travel_tuples, travel_schema
from repro.query.violation_query import ViolationQuery
from repro.storage.sqlite_backend import SQLiteDatabase


def test_forward_chase_on_travel_fixture(benchmark):
    """End-to-end cost of the Example 1.1 update (insert a tour, chase to completion)."""

    def run_once():
        database, mappings = travel_repository()
        engine = ChaseEngine(database, mappings, oracle=RandomOracle(seed=0))
        record = engine.run(
            InsertOperation(make_tuple("T", "Niagara Falls", "ABC Tours", "Toronto"))
        )
        assert record.terminated
        return record.write_count

    writes = benchmark(run_once)
    assert writes == 2


def test_violation_query_memory_backend(benchmark, travel_state=None):
    """In-memory evaluation of every mapping's (unseeded) violation query."""
    database, mappings = travel_repository()
    database.delete(make_tuple("R", "XYZ", "Geneva Winery", "Great!"))

    def evaluate_all():
        return sum(len(ViolationQuery(tgd).evaluate(database)) for tgd in mappings)

    violations = benchmark(evaluate_all)
    assert violations == 1


def test_violation_query_sqlite_backend(benchmark):
    """The same violation queries evaluated through generated SQL on SQLite."""
    database = SQLiteDatabase(travel_schema())
    for row in travel_tuples():
        database.insert(row)
    database.delete(make_tuple("R", "XYZ", "Geneva Winery", "Great!"))
    mappings = travel_mappings()

    def evaluate_all():
        return sum(len(database.evaluate_violation_sql(tgd)) for tgd in mappings)

    violations = benchmark(evaluate_all)
    assert violations == 1
    database.close()
