"""Micro-benchmarks of the chase substrate itself.

Not a figure of the paper, but useful context for the experiment numbers: how
fast a single chase runs on the travel fixture, and how the in-memory
violation-query evaluator compares with the SQLite-generated SQL (the backend
ablation called out in DESIGN.md).
"""

from repro.core import ChaseEngine, InsertOperation, RandomOracle, make_tuple
from repro.core.schema import DatabaseSchema, RelationSchema
from repro.core.terms import LabeledNull
from repro.core.tuples import Tuple
from repro.fixtures import travel_mappings, travel_repository, travel_tuples, travel_schema
from repro.query.violation_query import ViolationQuery
from repro.storage.interface import DatabaseView
from repro.storage.memory import MemoryDatabase
from repro.storage.sqlite_backend import SQLiteDatabase


def test_forward_chase_on_travel_fixture(benchmark):
    """End-to-end cost of the Example 1.1 update (insert a tour, chase to completion)."""

    def run_once():
        database, mappings = travel_repository()
        engine = ChaseEngine(database, mappings, oracle=RandomOracle(seed=0))
        record = engine.run(
            InsertOperation(make_tuple("T", "Niagara Falls", "ABC Tours", "Toronto"))
        )
        assert record.terminated
        return record.write_count

    writes = benchmark(run_once)
    assert writes == 2


def test_violation_query_memory_backend(benchmark, travel_state=None):
    """In-memory evaluation of every mapping's (unseeded) violation query."""
    database, mappings = travel_repository()
    database.delete(make_tuple("R", "XYZ", "Geneva Winery", "Great!"))

    def evaluate_all():
        return sum(len(ViolationQuery(tgd).evaluate(database)) for tgd in mappings)

    violations = benchmark(evaluate_all)
    assert violations == 1


def test_violation_query_sqlite_backend(benchmark):
    """The same violation queries evaluated through generated SQL on SQLite."""
    database = SQLiteDatabase(travel_schema())
    for row in travel_tuples():
        database.insert(row)
    database.delete(make_tuple("R", "XYZ", "Geneva Winery", "Great!"))
    mappings = travel_mappings()

    def evaluate_all():
        return sum(len(database.evaluate_violation_sql(tgd)) for tgd in mappings)

    violations = benchmark(evaluate_all)
    assert violations == 1
    database.close()


def _correction_query_database(rows=4000):
    """A wide relation with a sprinkling of nulls, big enough to punish scans."""
    schema = DatabaseSchema.from_relations(
        [RelationSchema("Fact", ["a", "b", "c"])]
    )
    database = MemoryDatabase(schema)
    shared = LabeledNull("shared")
    for index in range(rows):
        if index % 97 == 0:
            database.insert(Tuple("Fact", ("k{}".format(index % 13), shared, "v{}".format(index))))
        else:
            database.insert(
                make_tuple("Fact", "k{}".format(index % 13), "m{}".format(index % 29), "v{}".format(index))
            )
    return database, shared


def test_more_specific_correction_query_is_indexed(benchmark):
    """The chase-hot correction queries must use the index, not scan.

    ``more_specific_tuples`` and ``tuples_containing_null`` run once per
    generated tuple / null occurrence on the chase hot path; the
    :class:`DatabaseView` defaults scan the relation (or the whole database).
    This asserts the indexed overrides return exactly what the default scans
    return, while the benchmark records their cost on a database large enough
    that a scan would dominate the chase step.
    """
    database, shared = _correction_query_database()
    pattern = Tuple("Fact", ("k3", LabeledNull("probe1"), LabeledNull("probe2")))

    def indexed_queries():
        specific = database.more_specific_tuples(pattern)
        with_null = list(database.tuples_containing_null(shared))
        return specific, with_null

    specific, with_null = benchmark(indexed_queries)
    # Correctness: identical answers to the interface's default full scans.
    assert set(specific) == set(DatabaseView.more_specific_tuples(database, pattern))
    assert set(with_null) == set(DatabaseView.tuples_containing_null(database, shared))
    assert len(specific) > 0
    assert len(with_null) > 0
