"""Socket-federation throughput bench: real peer processes vs the GIL.

Floods a generated multi-peer scenario into a :class:`ProcessFederation`
(each peer its own OS process over Unix-domain sockets, length-prefixed
codec frames, bundled envelopes) and drains it, then runs the *same*
scenario through the in-process :class:`FederatedNetwork` on the same
machine.  The ``federation_sockets`` entry merged into
``BENCH_scaling.json`` records both measurements plus the framing
densities (frames per commit, payloads per frame) that show the
round-trip reduction from bundling — the cost PR 6's trace breakdown
identified as dominant.

Honesty notes baked into the entry:

* ``cpu_cores`` is recorded as measured; on a single-core machine the
  socket federation *cannot* beat the in-process run (it pays real IPC
  for zero parallelism), so the multi-core speedup assertion is gated on
  ``cpu_cores > 1`` and the sub-1x ratio is recorded rather than hidden.
* The speedup bar is capacity-normalized exactly like the batched bench:
  the recorded ``batched`` entry's committed/s scaled by this machine's
  same-run in-process measurement — i.e. the socket federation must beat
  the in-process federation *measured in the same run* — so a slower
  runner tests parallelism, not its own clock.
* The default (``small``) scale is deliberately compute-heavy
  (``initial_tuples=1200`` makes the chase ~6 ms/commit, well above the
  ~1 ms per-commit socket overhead): at compute-light scales coordination
  dominates and no core count can win, which would make the comparison
  meaningless rather than honest.

Scales with ``REPRO_BENCH_SCALE`` (tiny/small/paper) like the other
benches; ``REPRO_BENCH_STRICT=1`` turns the recorded policies into
assertions (the non-blocking CI benchmarks job sets it).
"""

from __future__ import annotations

import json
import os
import time

from repro.federation import (
    FederatedNetwork,
    ProcessFederation,
    Transport,
    databases_equivalent,
)
from repro.workload.federated_loop import (
    FederatedClientSpec,
    FederatedClosedLoopDriver,
    expanding_answer,
)
from repro.workload.federation_gen import (
    FederationScenarioConfig,
    generate_federation_environment,
)

SCALES = {
    "tiny": FederationScenarioConfig(
        num_peers=4, cross_mappings=6, operations_per_peer=4, initial_tuples=60, seed=0
    ),
    "small": FederationScenarioConfig(
        num_peers=4,
        cross_mappings=10,
        relations_per_peer=5,
        operations_per_peer=15,
        initial_tuples=1200,
        seed=0,
    ),
    "paper": FederationScenarioConfig(
        num_peers=5,
        cross_mappings=12,
        relations_per_peer=6,
        operations_per_peer=30,
        initial_tuples=2400,
        seed=0,
    ),
}

RESULT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_scaling.json",
)


def _merge_entry(key, entry):
    """Merge one entry into the trajectory file, preserving other keys."""
    recorded = {}
    if os.path.exists(RESULT_PATH):
        try:
            with open(RESULT_PATH) as handle:
                recorded = json.load(handle)
        except ValueError:
            recorded = {}
    recorded[key] = entry
    with open(RESULT_PATH, "w") as handle:
        json.dump(recorded, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _recorded_batched():
    """The committed ``batched`` entry the speedup fields compare against."""
    if not os.path.exists(RESULT_PATH):
        return {}
    try:
        with open(RESULT_PATH) as handle:
            return json.load(handle).get("batched", {})
    except ValueError:
        return {}


def _run_inprocess(config):
    environment = generate_federation_environment(config)
    network = FederatedNetwork(
        environment.schema,
        environment.initial,
        list(environment.mappings),
        environment.ownership,
        transport=Transport(delay=1),
    )
    specs = [
        FederatedClientSpec(peer=peer, name="client@{}".format(peer), operations=list(ops))
        for peer, ops in environment.operations.items()
    ]
    driver = FederatedClosedLoopDriver(
        network, specs, answer_delay=1, answer_strategy=expanding_answer
    )
    started = time.perf_counter()
    report = driver.run(max_rounds=50_000)
    wall = time.perf_counter() - started
    assert report.all_done and report.drained
    metrics = network.metrics()
    committed = sum(
        metrics["peer_{}_committed".format(peer)] for peer in network.peer_names()
    )
    return network.global_snapshot(), committed, wall


def test_socket_federation_throughput(tmp_path):
    scale = os.environ.get("REPRO_BENCH_SCALE", "small").lower()
    config = SCALES.get(scale, SCALES["small"])
    environment = generate_federation_environment(config)

    federation = ProcessFederation(
        environment.schema,
        environment.initial,
        list(environment.mappings),
        environment.ownership,
        transport="unix",
        workdir=str(tmp_path),
    )
    try:
        started = time.perf_counter()
        tickets = []
        for peer in sorted(environment.operations):
            for operation in environment.operations[peer]:
                tickets.append(federation.submit(peer, operation))
        rounds = federation.drain(answer_strategy=expanding_answer, timeout=600.0)
        wall = time.perf_counter() - started
        assert all(ticket.is_done for ticket in tickets)
        metrics = federation.metrics()
        snapshot = federation.global_snapshot()
    finally:
        federation.close()
        federation.assert_reaped()

    committed = sum(status["committed"] for status in metrics.values())
    frames_sent = sum(sum(status["sent"].values()) for status in metrics.values())
    payloads = sum(status["payloads_received"] for status in metrics.values())
    peer_latencies = {
        name: {
            key: status["metrics"][key]
            for key in (
                "turnaround_p50_seconds",
                "turnaround_p95_seconds",
                "queue_wait_p50_seconds",
                "queue_wait_p95_seconds",
            )
            if key in status["metrics"]
        }
        for name, status in metrics.items()
    }

    # Same scenario, same machine, one process: the parallelism baseline
    # and the differential oracle in one run.
    inprocess_snapshot, inprocess_committed, inprocess_wall = _run_inprocess(config)
    equivalent = databases_equivalent(snapshot, inprocess_snapshot)
    assert equivalent, "socket federation diverged from the in-process run"
    # Commit *totals* may differ slightly between the two runs — delivery
    # interleavings coalesce exchange firings differently — but both must
    # at least absorb every user operation; equivalence above is the bar.
    assert min(committed, inprocess_committed) >= len(tickets)

    recorded = _recorded_batched()
    committed_per_second = committed / max(wall, 1e-9)
    inprocess_per_second = inprocess_committed / max(inprocess_wall, 1e-9)
    entry = {
        "scale": scale,
        "transport": "unix",
        "peers": config.num_peers,
        "cpu_cores": os.cpu_count() or 1,
        "user_operations": len(tickets),
        "drain_rounds": rounds,
        "wall_seconds": wall,
        "committed_updates_total": committed,
        "committed_per_second": committed_per_second,
        "turnaround_p95_seconds": max(
            latency.get("turnaround_p95_seconds", 0.0)
            for latency in peer_latencies.values()
        ),
        "peer_latencies": peer_latencies,
        "frames_sent_total": frames_sent,
        "payloads_sent_total": payloads,
        "frames_per_commit": frames_sent / max(committed, 1),
        "payloads_per_frame": payloads / max(frames_sent, 1),
        "deliveries_deferred": sum(
            status["deliveries_deferred"] for status in metrics.values()
        ),
        "answers_dropped": sum(
            status["answers_dropped"] for status in metrics.values()
        ),
        "inprocess_wall_seconds": inprocess_wall,
        "inprocess_committed_per_second": inprocess_per_second,
        "speedup_vs_inprocess_same_run": committed_per_second / inprocess_per_second,
        "convergence_equivalent": equivalent,
    }
    if recorded.get("committed_per_second"):
        entry["speedup_vs_batched_recorded"] = (
            committed_per_second / recorded["committed_per_second"]
        )
    if recorded.get("wire_committed_per_second"):
        entry["speedup_vs_batched_wire_recorded"] = (
            committed_per_second / recorded["wire_committed_per_second"]
        )
    _merge_entry("federation_sockets", entry)

    print(
        "\nsocket federation bench ({} peers, {} scale, {} cores): {} user ops "
        "-> {} committed in {:.2f}s over {} drain rounds ({:.0f} commits/s)".format(
            config.num_peers,
            scale,
            entry["cpu_cores"],
            len(tickets),
            committed,
            wall,
            rounds,
            committed_per_second,
        )
    )
    print(
        "  framing: {} frames, {} payloads ({:.2f} payloads/frame, "
        "{:.2f} frames/commit); in-process same run {:.0f} commits/s "
        "-> {:.2f}x".format(
            frames_sent,
            payloads,
            entry["payloads_per_frame"],
            entry["frames_per_commit"],
            inprocess_per_second,
            entry["speedup_vs_inprocess_same_run"],
        )
    )

    if scale == "small" and os.environ.get("REPRO_BENCH_STRICT") == "1":
        # Bundling must actually collapse round-trips: flushes carry more
        # than one envelope per frame on average, on every machine.
        assert entry["payloads_per_frame"] > 1.0, (
            "bundled flushes averaged {:.2f} payloads/frame".format(
                entry["payloads_per_frame"]
            )
        )
        if entry["cpu_cores"] > 1:
            # The capacity-normalized >1x bar (see the module docstring):
            # recorded-batched committed/s x (same-run in-process / recorded
            # batched) = the same-run in-process measurement.  Real
            # parallelism across processes must beat the GIL-serialized run.
            assert committed_per_second > inprocess_per_second, (
                "socket federation ({:.0f}/s on {} cores) did not beat the "
                "in-process run ({:.0f}/s)".format(
                    committed_per_second,
                    entry["cpu_cores"],
                    inprocess_per_second,
                )
            )
